"""The persistent experiment server.

Threading model
---------------
One accept thread, one thread per client connection, and ``job_workers``
job-worker threads draining a bounded deque.  Every loop polls
``self._stop`` on a short socket/condition timeout, so :meth:`stop` tears
the whole process down deterministically (no thread ever blocks without a
timeout) -- which is what lets the test fixtures run under a per-test
deadline.

Execution model
---------------
A job is one scenario submission expanded to cells at admission time.
Workers run cells one at a time through a per-server
:class:`~repro.experiments.sweep.SweepRunner` configured exactly like the
batch CLI (same cache directory resolution, same cell execution path), so
a served job and its ``run``/``fleet`` twin read and write the *same*
cache entries and report bit-identical metrics.  Each finished cell is
published as an event; events are buffered on the job, so late watchers
replay the full history before streaming live.
"""

from __future__ import annotations

import collections
import contextlib
import os
import socket
import threading
from pathlib import Path
from typing import Any, Optional, Union

from repro.serve.protocol import TERMINAL_EVENTS, LineChannel, ProtocolError

__all__ = ["ExperimentServer", "ServeJob"]

#: Poll interval for every stoppable wait (accept, recv, condition).
_POLL_S = 0.2


class ServeJob:
    """One accepted submission: cells, state, and the buffered event log."""

    def __init__(self, job_id: str, scenario: str, cells: list):
        self.id = job_id
        self.scenario = scenario
        self.cells = cells
        self.state = "pending"
        self.error: Optional[str] = None
        self.events: list[dict[str, Any]] = []
        self.cond = threading.Condition()

    def publish(self, event: dict[str, Any]) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def snapshot(self) -> dict[str, Any]:
        with self.cond:
            done_cells = sum(1 for event in self.events
                             if event["event"] == "cell")
            return {"job": self.id, "scenario": self.scenario,
                    "state": self.state, "cells": len(self.cells),
                    "cells_done": done_cells, "error": self.error}


class ExperimentServer:
    """Accepts submissions over a unix socket or localhost TCP.

    Exactly one of ``socket_path`` / ``port`` selects the transport
    (``port=0`` binds an ephemeral port, read back from :attr:`port` after
    :meth:`start`).  ``max_pending`` bounds the *queued* (not yet running)
    jobs; submissions beyond it are rejected with a reason.  ``job_workers``
    is the number of concurrently running jobs.  Runner knobs (``parallel``,
    ``sweep_workers``, ``cache_dir``, ``fleet_config`` -- with
    ``fleet_shards`` as its deprecated shard-count alias) mirror the batch
    CLI's flags; ``cache_dir=None`` resolves ``$REPRO_SWEEP_CACHE`` exactly
    like ``run``/``fleet`` do.
    """

    def __init__(self, socket_path: Optional[Union[str, Path]] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 max_pending: int = 8, job_workers: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None,
                 no_cache: bool = False, parallel: bool = False,
                 sweep_workers: Optional[int] = None, fleet_shards: int = 1,
                 fleet_config=None):
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path / port")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.socket_path = None if socket_path is None else Path(socket_path)
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.job_workers = job_workers
        self._runner_kwargs = {
            "parallel": parallel,
            "max_workers": sweep_workers,
            "cache_dir": None if no_cache else cache_dir,
            "no_cache": no_cache,
            "fleet_shards": fleet_shards,
            "fleet_config": fleet_config,
        }
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._conn_threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._queue_cond = threading.Condition(self._lock)
        self._queue: collections.deque[str] = collections.deque()
        self._jobs: dict[str, ServeJob] = {}
        self._job_counter = 0
        self._seq = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ExperimentServer":
        if self.socket_path is not None:
            if self.socket_path.exists():
                self.socket_path.unlink()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self.socket_path))
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
        listener.listen(16)
        listener.settimeout(_POLL_S)
        self._listener = listener
        accept = threading.Thread(target=self._accept_loop,
                                  name="serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for index in range(self.job_workers):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"serve-worker-{index}", daemon=True)
            worker.start()
            self._threads.append(worker)
        return self

    def stop(self) -> None:
        """Idempotent, deterministic teardown (safe from any thread)."""
        self._stop.set()
        with self._queue_cond:
            self._queue_cond.notify_all()
        for job in list(self._jobs.values()):
            with job.cond:
                job.cond.notify_all()
        current = threading.current_thread()
        for thread in [*self._threads, *self._conn_threads]:
            if thread is not current:
                thread.join(timeout=10.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                self.socket_path.unlink()

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    def wait(self) -> None:
        """Block until the server stops (``serve`` CLI foreground mode)."""
        while not self._stop.wait(timeout=_POLL_S):
            pass

    # -- internals: sequencing --------------------------------------------

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _runner(self):
        from repro.experiments.sweep import SweepRunner, default_cache_dir

        kwargs = dict(self._runner_kwargs)
        no_cache = kwargs.pop("no_cache")
        if kwargs["cache_dir"] is None and not no_cache:
            kwargs["cache_dir"] = default_cache_dir()
        return SweepRunner(**kwargs)

    # -- internals: network ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), name="serve-conn",
                                      daemon=True)
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [entry for entry in self._conn_threads
                                  if entry.is_alive()]

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = LineChannel(conn)
        channel.settimeout(_POLL_S)
        try:
            while not self._stop.is_set():
                try:
                    message = channel.recv()
                except socket.timeout:
                    continue
                except ProtocolError as error:
                    channel.send({"ok": False, "event": "error",
                                  "reason": str(error)})
                    return
                if message is None:
                    return
                if not self._dispatch(channel, message):
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            channel.close()

    def _dispatch(self, channel: LineChannel, message: dict[str, Any]) -> bool:
        """Handle one request; False ends the connection."""
        op = message.get("op")
        if op == "ping":
            with self._lock:
                pending = len(self._queue)
            channel.send({"ok": True, "event": "pong",
                          "jobs": len(self._jobs), "pending": pending,
                          "max_pending": self.max_pending})
            return True
        if op == "submit":
            return self._handle_submit(channel, message)
        if op == "jobs":
            channel.send({"ok": True, "event": "jobs",
                          "jobs": [self._jobs[job_id].snapshot()
                                   for job_id in sorted(self._jobs)]})
            return True
        if op == "status":
            job = self._jobs.get(message.get("job"))
            if job is None:
                channel.send({"ok": False, "event": "error",
                              "reason": f"unknown job {message.get('job')!r}"})
                return True
            channel.send({"ok": True, **job.snapshot(), "event": "status"})
            return True
        if op == "watch":
            job = self._jobs.get(message.get("job"))
            if job is None:
                channel.send({"ok": False, "event": "error",
                              "reason": f"unknown job {message.get('job')!r}"})
                return True
            return self._stream(channel, job)
        if op == "shutdown":
            channel.send({"ok": True, "event": "stopping"})
            threading.Thread(target=self.stop, name="serve-stop",
                             daemon=True).start()
            return False
        channel.send({"ok": False, "event": "error",
                      "reason": f"unknown op {op!r} (expected: ping, submit, "
                                f"jobs, status, watch, shutdown)"})
        return True

    # -- internals: admission ----------------------------------------------

    def _build_spec(self, message: dict[str, Any]):
        """Resolve a submission to a ScenarioSpec, or raise ValueError."""
        from repro.config import ConfigError, scenario_for_document
        from repro.experiments.scenarios import get_scenario

        scenario_name = message.get("scenario")
        document = message.get("document")
        if (scenario_name is None) == (document is None):
            raise ValueError(
                "provide exactly one of 'scenario' (registered name) or "
                "'document' (inline scenario/fleet document)")
        if scenario_name is not None:
            try:
                return get_scenario(scenario_name)
            except KeyError as error:
                raise ValueError(error.args[0]) from None
        try:
            return scenario_for_document(document, path="document")
        except ConfigError as error:
            raise ValueError(str(error)) from None

    def _handle_submit(self, channel: LineChannel,
                       message: dict[str, Any]) -> bool:
        try:
            spec = self._build_spec(message)
            cells = spec.cells()
        except ValueError as error:
            channel.send({"ok": False, "event": "rejected",
                          "reason": str(error)})
            return True
        if message.get("quick"):
            from repro.experiments.sweep import quick_cells

            cells = quick_cells(cells)
        if not cells:
            channel.send({"ok": False, "event": "rejected",
                          "reason": f"scenario {spec.name!r} has no cells"})
            return True
        with self._queue_cond:
            if self._stop.is_set():
                channel.send({"ok": False, "event": "rejected",
                              "reason": "server is shutting down"})
                return True
            pending = len(self._queue)
            if pending >= self.max_pending:
                channel.send({
                    "ok": False, "event": "rejected",
                    "reason": f"queue full: {pending} pending jobs >= "
                              f"--max-pending {self.max_pending}; retry later"})
                return True
            self._job_counter += 1
            job = ServeJob(f"job-{self._job_counter}", spec.name, cells)
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self._queue_cond.notify()
        channel.send({"ok": True, "event": "accepted", "job": job.id,
                      "scenario": spec.name, "cells": len(cells),
                      "position": pending})
        if message.get("watch", True):
            return self._stream(channel, job)
        return True

    # -- internals: streaming ----------------------------------------------

    def _stream(self, channel: LineChannel, job: ServeJob) -> bool:
        """Replay buffered events, then follow live until terminal."""
        index = 0
        while True:
            with job.cond:
                while len(job.events) <= index and not self._stop.is_set():
                    job.cond.wait(timeout=_POLL_S)
                fresh = job.events[index:]
                index = len(job.events)
            for event in fresh:
                channel.send(event)
                if event["event"] in TERMINAL_EVENTS:
                    return True
            if self._stop.is_set():
                channel.send({"ok": False, "event": "error", "job": job.id,
                              "reason": "server stopped"})
                return False

    # -- internals: execution ----------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._queue and not self._stop.is_set():
                    self._queue_cond.wait(timeout=_POLL_S)
                if self._stop.is_set():
                    return
                job = self._jobs[self._queue.popleft()]
            self._run_job(job)

    def _run_job(self, job: ServeJob) -> None:
        runner = self._runner()
        job.state = "running"
        job.publish({"event": "started", "job": job.id,
                     "seq": self._next_seq(), "scenario": job.scenario,
                     "cells": len(job.cells)})
        results: list[dict[str, Any]] = []
        try:
            for cell_index, cell in enumerate(job.cells):
                if self._stop.is_set():
                    raise RuntimeError("server stopped")
                outcome = runner.run_cells(job.scenario, [cell]).outcomes[0]
                entry = {"labels": dict(cell.labels),
                         "cached": outcome.cached,
                         "cache_key": cell.cache_key(),
                         "metrics": outcome.metrics}
                results.append(entry)
                job.publish({"event": "cell", "job": job.id,
                             "seq": self._next_seq(), "index": cell_index,
                             "total": len(job.cells), **entry})
            job.state = "done"
            job.publish({"event": "done", "job": job.id,
                         "seq": self._next_seq(), "scenario": job.scenario,
                         "results": results})
        except Exception as error:  # worker must survive any job failure
            job.state = "failed"
            job.error = str(error)
            job.publish({"event": "failed", "job": job.id,
                         "seq": self._next_seq(),
                         "reason": f"{type(error).__name__}: {error}"})
