"""Provider-side QoS enforcement: throughput and IOPS budgets.

Every host request passes through two token buckets before it is dispatched
to the storage cluster:

* a **byte bucket** refilled at the guaranteed throughput.  Because the same
  bucket covers reads and writes alike, the volume's maximum bandwidth is
  deterministic and insensitive to the access pattern -- the paper's
  Observation 4.
* an **IOPS bucket** where each request consumes ``ceil(size /
  iops_accounting_bytes)`` tokens, mirroring how providers count large I/Os
  as multiple I/O operations.  This is why the paper notes the *IOPS*
  guarantee, unlike the throughput guarantee, remains size-dependent.

Flow limiting (Observation 2, ESSD-1): once the provider decides to throttle
a volume, an additional write-only bucket with a much lower rate is switched
in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.ebs.config import QosProfile
from repro.host.io import IOKind
from repro.sim.resources import TokenBucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@dataclass
class QosStats:
    """Admission-control counters."""

    requests_admitted: int = 0
    bytes_admitted: int = 0
    iops_tokens_charged: int = 0
    flow_limited_requests: int = 0


class QosManager:
    """Token-bucket admission control for one volume."""

    def __init__(self, sim: "Simulator", profile: QosProfile):
        self.sim = sim
        self.profile = profile
        self.stats = QosStats()
        burst = max(profile.burst_bytes, profile.iops_accounting_bytes)
        self._byte_bucket = TokenBucket(
            sim, rate=profile.max_throughput_bytes_per_us, capacity=burst)
        # IOPS are per second; convert to tokens per microsecond.
        self._iops_bucket = TokenBucket(
            sim, rate=profile.max_iops / 1e6,
            capacity=max(64.0, profile.max_iops / 1e3))
        self._write_limit_bucket: Optional[TokenBucket] = None
        # Hoisted for the per-request admission path.
        self._iops_acc = profile.iops_accounting_bytes

    # -- flow limiting -------------------------------------------------------------
    @property
    def flow_limited(self) -> bool:
        """Whether provider-side write flow limiting is currently engaged."""
        return self._write_limit_bucket is not None

    def engage_write_limit(self, bytes_per_us: float) -> None:
        """Throttle writes to ``bytes_per_us`` from now on."""
        if bytes_per_us <= 0:
            raise ValueError("flow limit rate must be positive")
        if self._write_limit_bucket is None:
            # ``initial=0``: throttling takes effect immediately.  Starting the
            # bucket full would let a whole burst through at the old rate right
            # after the provider decided to limit the volume.
            self._write_limit_bucket = TokenBucket(
                self.sim, rate=bytes_per_us,
                capacity=max(self.profile.burst_bytes, 1024 * 1024),
                initial=0.0)
        else:
            self._write_limit_bucket.set_rate(bytes_per_us)

    def release_write_limit(self) -> None:
        """Remove the write flow limit (not observed in the paper, but useful
        for what-if experiments)."""
        self._write_limit_bucket = None

    # -- admission -------------------------------------------------------------------
    def iops_tokens_for(self, size: int) -> int:
        """IOPS tokens charged for a request of ``size`` bytes."""
        return max(1, math.ceil(size / self._iops_acc))

    def admit(self, kind: IOKind, size: int):
        """Generator: block until the request fits within the budgets.

        Hot path of every ESSD request: the token formula is inlined and the
        stats counters are updated in one batch at the end.  Uncontended
        requests ride the :class:`TokenBucket` fast paths (single pooled
        grant, no waiter queue).
        """
        tokens = max(1, math.ceil(size / self._iops_acc))
        yield self._iops_bucket.consume(tokens)
        if size > 0:
            yield from self._byte_bucket.consume_sliced(size)
        stats = self.stats
        if kind is IOKind.WRITE and self._write_limit_bucket is not None:
            stats.flow_limited_requests += 1
            yield from self._write_limit_bucket.consume_sliced(size)
        stats.requests_admitted += 1
        stats.bytes_admitted += size
        stats.iops_tokens_charged += tokens
