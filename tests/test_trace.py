"""Tests for the request-path tracing layer (sim/trace.py + device hooks)."""

import pytest

from repro.devices import LoopbackDevice, create_device
from repro.host.io import MiB
from repro.sim import Simulator, Tracer
from repro.workload.fio import FioJob, run_job


def test_tracing_is_off_by_default():
    sim = Simulator()
    device = create_device(sim, "SSD", capacity_bytes=64 * MiB)
    assert device.tracer is None
    run_job(sim, device, FioJob(pattern="randwrite", io_count=5))
    # Nothing recorded anywhere, and nothing crashed.


def test_loopback_stage_breakdown_accounts_all_time():
    sim = Simulator()
    device = LoopbackDevice(sim, capacity_bytes=4 * MiB, service_time_us=20.0,
                            service_slots=1)
    tracer = Tracer(sim)
    device.set_tracer(tracer)
    result = run_job(sim, device, FioJob(pattern="randread", io_count=4,
                                         queue_depth=4, region_bytes=MiB))
    assert tracer.completed_requests == 4
    assert tracer.open_requests == 0
    breakdown = tracer.breakdown()
    assert set(breakdown) == {"submit", "queue", "service"}
    # Every request spends exactly the service time in "service".
    assert breakdown["service"]["count"] == 4
    assert breakdown["service"]["mean_us"] == pytest.approx(20.0)
    # With one slot and QD4, queueing dominates: 0+20+40+60 us of waiting.
    assert breakdown["queue"]["total_us"] == pytest.approx(120.0)
    # Stage spans partition each request's latency exactly.
    traced_total = sum(stats["total_us"] for stats in breakdown.values())
    recorded_total = float(result.latency.samples.sum())
    assert traced_total == pytest.approx(recorded_total)
    assert sum(stats["share"] for stats in breakdown.values()) == pytest.approx(1.0)


def test_ssd_trace_covers_queue_service_media():
    sim = Simulator()
    device = create_device(sim, "SSD", capacity_bytes=64 * MiB)
    tracer = Tracer(sim)
    device.set_tracer(tracer)
    run_job(sim, device, FioJob(pattern="randwrite", io_count=20, queue_depth=4))
    breakdown = tracer.breakdown()
    assert {"submit", "queue", "service", "media"} <= set(breakdown)
    assert breakdown["media"]["count"] == 20
    assert breakdown["service"]["mean_us"] > 0


def test_essd_trace_covers_service_queue_network():
    sim = Simulator()
    device = create_device(sim, "ESSD-2", capacity_bytes=64 * MiB)
    tracer = Tracer(sim)
    device.set_tracer(tracer)
    run_job(sim, device, FioJob(pattern="randwrite", io_count=15, queue_depth=2))
    breakdown = tracer.breakdown()
    assert {"submit", "service", "queue", "network"} <= set(breakdown)
    # The storage-cluster round trip dominates an ESSD write.
    assert breakdown["network"]["share"] > 0.5


def test_one_tracer_shared_by_several_devices_splits_per_device():
    sim = Simulator()
    ssd = create_device(sim, "SSD", capacity_bytes=64 * MiB)
    essd = create_device(sim, "ESSD-1", capacity_bytes=64 * MiB)
    tracer = Tracer(sim)
    ssd.set_tracer(tracer)
    essd.set_tracer(tracer)
    from repro.workload.fio import run_streams
    run_streams(sim, [
        (ssd, FioJob(name="on-ssd", pattern="randwrite", io_count=10)),
        (essd, FioJob(name="on-essd", pattern="randwrite", io_count=10)),
    ])
    assert tracer.devices() == sorted([ssd.name, essd.name])
    ssd_only = tracer.breakdown(ssd.name)
    assert "network" not in ssd_only and "media" in ssd_only
    essd_only = tracer.breakdown(essd.name)
    assert "network" in essd_only and "media" not in essd_only
    payload = tracer.to_payload()
    assert payload["completed_requests"] == 20
    assert set(payload["devices"]) == {ssd.name, essd.name}


def test_render_produces_one_row_per_stage():
    sim = Simulator()
    device = LoopbackDevice(sim, capacity_bytes=4 * MiB, service_time_us=5.0)
    tracer = Tracer(sim)
    device.set_tracer(tracer)
    run_job(sim, device, FioJob(pattern="randread", io_count=3, region_bytes=MiB))
    text = tracer.render()
    assert "service" in text and "share" in text
    assert Tracer(sim).render() == "(no traced requests)"


def test_keep_spans_retains_recent_request_lifecycles():
    sim = Simulator()
    device = LoopbackDevice(sim, capacity_bytes=4 * MiB, service_time_us=5.0)
    tracer = Tracer(sim, keep_spans=2)
    device.set_tracer(tracer)
    run_job(sim, device, FioJob(pattern="randread", io_count=5, region_bytes=MiB))
    assert len(tracer.spans) == 2  # only the most recent two retained
    span = tracer.spans[-1]
    assert span["device"] == "loopback"
    assert span["complete_us"] - span["submit_us"] == pytest.approx(5.0)
    stages = [stage for stage, _start, _end in span["spans"]]
    assert stages[0] == "submit" and "service" in stages


def test_detaching_tracer_stops_recording():
    sim = Simulator()
    device = LoopbackDevice(sim, capacity_bytes=4 * MiB, service_time_us=5.0)
    tracer = Tracer(sim)
    device.set_tracer(tracer)
    run_job(sim, device, FioJob(pattern="randread", io_count=2, region_bytes=MiB))
    device.set_tracer(None)
    run_job(sim, device, FioJob(pattern="randread", io_count=4, region_bytes=MiB))
    assert tracer.completed_requests == 2
