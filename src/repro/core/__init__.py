"""The paper's primary contribution: the unwritten contract and its checker.

* :data:`UNWRITTEN_CONTRACT` -- the four observations and five implications.
* :class:`ContractChecker` -- runs targeted characterization experiments
  against simulated devices and attaches quantitative evidence to each
  observation.
* :mod:`repro.implications` -- advisors that turn each implication into an
  actionable, quantitative recommendation for a given workload.
"""

from repro.core.contract import (
    IMPLICATIONS,
    OBSERVATIONS,
    UNWRITTEN_CONTRACT,
    Implication,
    Observation,
    ObservationEvidence,
    UnwrittenContract,
)
from repro.core.checker import CheckerConfig, ContractChecker, ContractReport

__all__ = [
    "UNWRITTEN_CONTRACT",
    "OBSERVATIONS",
    "IMPLICATIONS",
    "Observation",
    "Implication",
    "ObservationEvidence",
    "UnwrittenContract",
    "ContractChecker",
    "ContractReport",
    "CheckerConfig",
]
