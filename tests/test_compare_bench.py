"""Unit tests for the CI benchmark-regression gate (compare_bench.py)."""

import json

import pytest

from benchmarks import compare_bench


def write_artifacts(directory, kernel_speedups, batched_tasks=40.0,
                    task_cut=11.0, macro_errs=(0.01, 0.03, 0.04),
                    macro_speedup=50.0, shm_speedup_2=1.5,
                    shm_efficiency_4=0.8, scaling_informational=False):
    immediate, mixed, timer, roundtrip = kernel_speedups
    (directory / "BENCH_kernel.json").write_text(json.dumps({
        "events_per_sec": {
            "immediate": {"speedup": immediate},
            "mixed": {"speedup": mixed},
            "timer": {"speedup": timer},
        },
        "request_roundtrips_per_sec": {"speedup": roundtrip},
    }))
    (directory / "BENCH_fleet.json").write_text(json.dumps({
        "coordination": {
            "task_cut": task_cut,
            "variants": {"batched": {"tasks_per_sim_second": batched_tasks}},
        },
        "shards": {
            "2": {"by_transport": {"shm": {
                "speedup_vs_serial": shm_speedup_2,
                "scaling_informational": scaling_informational,
            }}},
            "4": {"by_transport": {"shm": {
                "scaling_efficiency": shm_efficiency_4,
                "scaling_informational": scaling_informational,
            }}},
        },
    }))
    p50_err, p95_err, throughput_err = macro_errs
    (directory / "BENCH_macro.json").write_text(json.dumps({
        "validation": {
            "max_p50_err": p50_err,
            "max_p95_err": p95_err,
            "max_throughput_err": throughput_err,
        },
        "speedup": {"macro_vs_discrete": macro_speedup},
    }))


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baselines"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


def test_identical_artifacts_pass(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4))
    assert compare_bench.main(["--baseline-dir", str(baseline),
                               "--current-dir", str(current)]) == 0


def test_within_tolerance_passes_and_improvement_passes(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    # 5% slower speedups, slightly fewer tasks: all inside the 10% band.
    write_artifacts(current, (2.85, 2.47, 2.57, 1.33),
                    batched_tasks=43.0, task_cut=10.5)
    assert compare_bench.main(["--baseline-dir", str(baseline),
                               "--current-dir", str(current)]) == 0


def test_higher_is_better_regression_fails(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    write_artifacts(current, (3.0, 2.0, 2.7, 1.4))  # mixed -23%
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 1
    bad = [row for row in rows if row["status"] == "REGRESSED"]
    assert len(bad) == 1 and "mixed" in bad[0]["metric"]
    assert compare_bench.main(["--baseline-dir", str(baseline),
                               "--current-dir", str(current)]) == 1


def test_lower_is_better_regression_fails(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    # Coordination traffic ballooned 50%: a batching regression.
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4), batched_tasks=60.0)
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 1
    bad = [row for row in rows if row["status"] == "REGRESSED"]
    assert bad[0]["metric"].endswith("tasks_per_sim_second")


def test_macro_error_envelope_widening_fails(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    # The macro approximation drifted: p50 error doubled past the band.
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4),
                    macro_errs=(0.02, 0.03, 0.04))
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 1
    bad = [row for row in rows if row["status"] == "REGRESSED"]
    assert len(bad) == 1 and bad[0]["metric"].endswith("max_p50_err")


def test_macro_speedup_collapse_fails(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4), macro_speedup=4.0)
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 1
    bad = [row for row in rows if row["status"] == "REGRESSED"]
    assert len(bad) == 1 and bad[0]["metric"].endswith("macro_vs_discrete")


def test_missing_current_artifact_fails_loudly(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == len(compare_bench.TRACKED) + \
        len(compare_bench.FLOORS)
    assert all(row["status"] == "MISSING" for row in rows)


def test_zero_baseline_fails_instead_of_passing_vacuously(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4), task_cut=0.0)
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4), task_cut=0.0)
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 1
    bad = [row for row in rows if row["status"] == "BAD-BASELINE"]
    assert len(bad) == 1 and bad[0]["metric"].endswith("task_cut")


def test_missing_baseline_metric_reports_new_and_passes(dirs):
    baseline, current = dirs
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4))
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 0
    # Relative gates report "new"; the absolute floors need no baseline
    # and gate (or pass) on the fixed target regardless.
    tracked = rows[:len(compare_bench.TRACKED)]
    floors = rows[len(compare_bench.TRACKED):]
    assert all(row["status"] == "new" for row in tracked)
    assert all(row["status"] == "ok" for row in floors)


def test_scaling_floor_gates_capable_hosts(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    # A multi-core host (informational flag off) that lost its scaling:
    # efficiency 0.4 is below the 0.7 floor.
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4), shm_efficiency_4=0.4)
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 1
    bad = [row for row in rows if row["status"] == "BELOW-FLOOR"]
    assert len(bad) == 1
    assert bad[0]["metric"].endswith("shm.scaling_efficiency")


def test_scaling_floor_is_informational_on_small_hosts(dirs):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    # The same terrible numbers, but the artifact says cpu_count < shards:
    # the floor reports info-only instead of failing the 1-core runner.
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4), shm_efficiency_4=0.1,
                    shm_speedup_2=0.3, scaling_informational=True)
    rows, regressions = compare_bench.compare(baseline, current, 0.10)
    assert regressions == 0
    info = [row for row in rows if row["status"] == "info-only"]
    assert len(info) == len(compare_bench.FLOORS)


def test_summary_markdown_is_appended(dirs, tmp_path):
    baseline, current = dirs
    write_artifacts(baseline, (3.0, 2.6, 2.7, 1.4))
    write_artifacts(current, (3.0, 1.9, 2.7, 1.4))
    summary = tmp_path / "summary.md"
    assert compare_bench.main(["--baseline-dir", str(baseline),
                               "--current-dir", str(current),
                               "--summary", str(summary)]) == 1
    text = summary.read_text()
    assert "| metric |" in text and "REGRESSED" in text and "FAIL" in text


def test_baseline_dir_resolves_to_interpreter_version(tmp_path):
    flat = tmp_path / "baselines"
    flat.mkdir()
    # No versioned subdirectory: the flat layout is kept.
    assert compare_bench.resolve_baseline_dir(flat) == flat
    versioned = flat / "py3.12"
    versioned.mkdir()
    assert compare_bench.resolve_baseline_dir(flat, "3.12") == versioned
    # A version without a committed directory falls back to flat.
    assert compare_bench.resolve_baseline_dir(flat, "3.99") == flat


def test_main_honors_python_version_flag(dirs):
    baseline, current = dirs
    versioned = baseline / "py3.12"
    versioned.mkdir()
    write_artifacts(versioned, (3.0, 2.6, 2.7, 1.4))
    write_artifacts(current, (3.0, 2.6, 2.7, 1.4))
    assert compare_bench.main(["--baseline-dir", str(baseline),
                               "--current-dir", str(current),
                               "--python-version", "3.12"]) == 0
    # Without versioned artifacts for 3.99 the flat (empty) dir gates:
    # every current metric is "new" and passes.
    assert compare_bench.main(["--baseline-dir", str(baseline),
                               "--current-dir", str(current),
                               "--python-version", "3.99"]) == 0


@pytest.mark.parametrize("version", ["3.11", "3.12"])
def test_committed_baselines_cover_every_tracked_metric(version):
    """The real benchmarks/baselines/ artifacts must expose every tracked
    metric for every CI matrix interpreter -- otherwise the gate silently
    loses coverage."""
    directory = compare_bench.resolve_baseline_dir(
        compare_bench.BASELINE_DIR, version)
    assert directory != compare_bench.BASELINE_DIR, \
        f"missing baselines/py{version}/ directory"
    for artifact, metric, _direction in compare_bench.TRACKED:
        payload = compare_bench.load_artifact(directory, artifact)
        assert payload is not None, f"missing baseline {artifact}"
        assert compare_bench.lookup(payload, metric) is not None, \
            f"{artifact} baseline lacks {metric}"


def test_tracked_kernel_baseline_holds_the_paper_trajectory():
    """The committed kernel baseline must record the >=2.5x mixed/timer
    speedups this PR claims; regressing it in a later PR trips the gate."""
    payload = compare_bench.load_artifact(
        compare_bench.resolve_baseline_dir(compare_bench.BASELINE_DIR,
                                           "3.11"),
        "BENCH_kernel.json")
    assert payload is not None
    assert compare_bench.lookup(
        payload, "events_per_sec.mixed.speedup") >= 2.5
    assert compare_bench.lookup(
        payload, "events_per_sec.timer.speedup") >= 2.5
