"""Macro-vs-discrete validation benchmark: error envelope, speedup, scale.

Three sections, written to ``BENCH_macro.json`` (and a human-readable
error table in ``BENCH_macro_table.md``):

* **validation** -- every workload family the mean-field model claims to
  approximate is run discretised and as a macro aggregate through the
  serial fleet path; the relative errors of the latency quantiles and
  throughput are recorded per family and hard-gated against the declared
  tolerance bands (the same bands ``tests/test_macro_validation.py``
  enforces).  The ``max_*_err`` roll-ups are tracked by
  ``benchmarks/compare_bench.py`` so the approximation cannot silently
  degrade between PRs.
* **speedup** -- one 64-device group simulated discretely vs as a macro
  aggregate (calibration memo warm, best-of-three): the whole point of the
  model is that group size stops costing wall-clock.
* **scale** -- the registered ``fleet-macro-100k`` scenario (quick-shrunk,
  >= 100k devices) must finish its first cell within the wall-clock bound
  that makes it usable in CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import FleetTopology, fleet, group, run_fleet_serial, tenant
from repro.cluster.macro import clear_calibration_memo
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import quick_cells

_REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = _REPO_ROOT / "BENCH_macro.json"
TABLE = _REPO_ROOT / "BENCH_macro_table.md"

#: Declared per-family error envelope of the mean-field approximation
#: (relative error vs the discrete reference).  Kept in lockstep with
#: tests/test_macro_validation.py.
FAMILIES = {
    "randread": dict(
        device="SSD",
        workload=dict(pattern="randread", io_size=4096, queue_depth=4,
                      io_count=200),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.25),
    ),
    "randwrite": dict(
        device="SSD",
        workload=dict(pattern="randwrite", io_size=16384, queue_depth=8,
                      io_count=200),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.10),
    ),
    "randrw": dict(
        device="ESSD-2",
        workload=dict(pattern="randrw", io_size=16384, queue_depth=4,
                      write_ratio=0.3, io_count=200),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.25),
    ),
    "trace-uniform": dict(
        device="ESSD-2",
        workload=dict(trace="uniform", duration_us=50_000.0, load_gbps=0.4,
                      io_size=65536, write_ratio=0.7),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.10),
    ),
}

#: Macro must beat the discrete run of the speedup topology by at least
#: this factor with a warm calibration memo (it lands around 500x; the
#: floor only catches the approximation collapsing into per-device work).
MIN_SPEEDUP = 5.0

#: The *tracked* speedup saturates here: past the cap the macro path is
#: "free" and the exact wall-clock ratio is timer noise, so the
#: compare_bench gate watches the saturated value (a dip below the cap is
#: a real structural regression) while the raw ratio is still recorded.
SPEEDUP_CAP = 50.0

#: Wall-clock bound for one quick cell of fleet-macro-100k (>=100k
#: devices).  The acceptance bar is < 60 s; the assert leaves headroom
#: below it so CI machines slower than the recording host still pass.
MAX_100K_WALL_S = 60.0


def _rel_err(measured: float, reference: float) -> float:
    if measured == reference:
        return 0.0
    return abs(measured - reference) / max(abs(measured), abs(reference), 1e-12)


def _family_fleet(spec: dict, count: int = 6) -> FleetTopology:
    return fleet(
        "macro-bench",
        groups=[group("grp", spec["device"], count)],
        tenants=[tenant("t", "grp", **spec["workload"])],
        epoch_us=1000.0,
        seed=71,
    )


def _validation_section() -> dict:
    families = {}
    for name, spec in FAMILIES.items():
        topology = _family_fleet(spec)
        discrete = run_fleet_serial(topology)["tenants"]["t"]
        macro = run_fleet_serial(topology.with_macro("grp"))["tenants"]["t"]
        assert macro["ios_completed"] == discrete["ios_completed"], name
        errors = {
            f"{quantile}_err": round(_rel_err(macro[f"{quantile}_us"],
                                              discrete[f"{quantile}_us"]), 4)
            for quantile in ("p50", "p95", "p99", "mean")
        }
        errors["throughput_err"] = round(
            _rel_err(macro["throughput_gbps"], discrete["throughput_gbps"]), 4)
        # Hard gate: the recorded envelope stays inside the declared bands.
        bands = spec["bands"]
        for quantile in ("p50", "p95", "p99", "mean"):
            assert errors[f"{quantile}_err"] <= bands[quantile], \
                f"{name} {quantile}: {errors} outside {bands}"
        assert errors["throughput_err"] <= bands["throughput"], \
            f"{name} throughput: {errors} outside {bands}"
        families[name] = {**errors,
                          "bands": bands,
                          "ios": macro["ios_completed"]}
    section = dict(families=families)
    for key in ("p50_err", "p95_err", "p99_err", "throughput_err"):
        section[f"max_{key}"] = max(f[key] for f in families.values())
    return section


def _speedup_section() -> dict:
    spec = FAMILIES["randwrite"]
    topology = _family_fleet(spec, count=64)
    macro_topology = topology.with_macro("grp")

    started = time.perf_counter()
    discrete = run_fleet_serial(topology)
    discrete_wall = time.perf_counter() - started

    clear_calibration_memo()
    run_fleet_serial(macro_topology)  # cold run pays calibration once
    macro_wall = min(
        _timed(lambda: run_fleet_serial(macro_topology)) for _ in range(3))

    speedup = discrete_wall / macro_wall if macro_wall > 0 else 0.0
    assert speedup >= MIN_SPEEDUP, \
        f"macro speedup {speedup:.1f}x below the {MIN_SPEEDUP}x floor"
    return {
        "devices": 64,
        "discrete_wall_s": round(discrete_wall, 4),
        "macro_wall_s": round(macro_wall, 5),
        "macro_vs_discrete": min(round(speedup, 1), SPEEDUP_CAP),
        "macro_vs_discrete_raw": round(speedup, 1),
        "discrete_ios": discrete["fleet"]["ios_completed"],
    }


def _timed(func) -> float:
    started = time.perf_counter()
    func()
    return time.perf_counter() - started


def _scale_section() -> dict:
    cell = quick_cells(get_scenario("fleet-macro-100k").cells())[0]
    topology = FleetTopology.from_json(cell.fleet)
    assert topology.total_devices >= 100_000
    started = time.perf_counter()
    payload = run_fleet_serial(topology)
    wall_s = time.perf_counter() - started
    assert wall_s < MAX_100K_WALL_S, \
        f"fleet-macro-100k quick cell took {wall_s:.1f}s"
    assert payload["fleet"]["approximate"] is True
    return {
        "scenario": "fleet-macro-100k",
        "devices": topology.total_devices,
        "ios_completed": payload["fleet"]["ios_completed"],
        "wall_s": round(wall_s, 3),
    }


def _write_table(validation: dict) -> None:
    lines = [
        "# Macro-vs-discrete error envelope",
        "",
        "Relative error of the mean-field (macro) model against the",
        "discrete reference, per workload family. Bands are the declared",
        "tolerances gated by the validation harness.",
        "",
        "| family | p50 | p95 | p99 | mean | throughput | band (p50/p99/tput) |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, entry in sorted(validation["families"].items()):
        bands = entry["bands"]
        lines.append(
            f"| {name} | {entry['p50_err']:.1%} | {entry['p95_err']:.1%} "
            f"| {entry['p99_err']:.1%} | {entry['mean_err']:.1%} "
            f"| {entry['throughput_err']:.1%} "
            f"| {bands['p50']:.0%} / {bands['p99']:.0%} / "
            f"{bands['throughput']:.0%} |")
    lines += [
        "",
        f"Max errors: p50 {validation['max_p50_err']:.1%}, "
        f"p95 {validation['max_p95_err']:.1%}, "
        f"p99 {validation['max_p99_err']:.1%}, "
        f"throughput {validation['max_throughput_err']:.1%}.",
        "",
    ]
    TABLE.write_text("\n".join(lines))


def test_macro_validation_envelope_and_artifact():
    validation = _validation_section()
    speedup = _speedup_section()
    scale = _scale_section()
    payload = {
        "benchmark": "macro",
        "validation": validation,
        "speedup": speedup,
        "scale": scale,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _write_table(validation)
    print(f"\nmacro validation benchmark -> {ARTIFACT.name}")
    print(json.dumps(payload, indent=2, sort_keys=True))
