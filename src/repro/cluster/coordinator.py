"""Partition a fleet topology into shards and drive them over epochs.

Partitioning (:func:`partition_topology`) is **device-affinity** based:
replication edges connect groups into clusters (union-find), whole clusters
are placed onto the least-loaded shard first (so edges stay intra-shard
whenever the cluster count allows), and only when shards would otherwise
sit empty is a shard's device list split at device granularity.

Execution (:class:`FleetCoordinator`) is a conservative time-window loop:

1. every shard advances to the same epoch barrier, buffering the replica
   messages its tenants emitted;
2. the coordinator routes each message to the shard owning its target
   device (messages are quantized to the *next* epoch boundary, so a
   message collected at barrier ``B`` is never scheduled before ``B``);
3. inboxes are sorted by the layout-independent key ``(delivery_us,
   origin_index, origin_seq)`` and injected before the next epoch.

Because seeds, replica delivery times, and injection order all derive from
logical identities (never from the shard layout), ``shards=1`` is
bit-identical to any ``shards=N`` run -- and ``shards=1`` in-process *is*
the serial path.  Topologies without replication edges skip the barrier
loop entirely: each shard drains to completion in a single advance.

Process mode reuses the ``SweepRunner`` patterns (persistent
``ProcessPoolExecutor``, derived seeds), with one twist: each shard gets a
*dedicated single-worker* executor so the worker process keeps the shard's
simulator resident between epoch tasks (plain shared pools give no
task-to-process affinity).
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional, Sequence

from repro.cluster.metrics import merge_shard_payloads
from repro.cluster.shard import (
    ReplicaMessage,
    ShardPlan,
    ShardWorker,
    _worker_advance,
    _worker_collect,
    _worker_init,
)
from repro.cluster.topology import FleetTopology

__all__ = ["partition_topology", "FleetCoordinator", "run_fleet_serial"]

#: Safety bound on executed (non-skipped) epochs per run.
MAX_EPOCHS = 200_000


def _inbox_order(message: ReplicaMessage) -> tuple:
    """Injection order for same-barrier messages: the documented
    layout-independent identity key (see :class:`ReplicaMessage`)."""
    return (message.delivery_us, message.origin_index, message.origin_seq)


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def partition_topology(topology: FleetTopology, shards: int) -> list[ShardPlan]:
    """Split the fleet's devices into ``shards`` device-affinity slices."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, topology.total_devices)
    group_names = [group.name for group in topology.groups]
    position = {name: index for index, name in enumerate(group_names)}

    # Union-find over groups: replication edges glue groups into clusters.
    parent = {name: name for name in group_names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for edge in topology.edges:
        root_a, root_b = find(edge.source), find(edge.target)
        if root_a != root_b:
            # Deterministic union: the earlier-declared group wins.
            if position[root_a] > position[root_b]:
                root_a, root_b = root_b, root_a
            parent[root_b] = root_a

    clusters: dict[str, list[str]] = {}
    for name in group_names:
        clusters.setdefault(find(name), []).append(name)

    sizes = {root: sum(topology.group(name).count for name in members)
             for root, members in clusters.items()}
    # Largest clusters first; ties resolved by declaration order.
    order = sorted(clusters, key=lambda root: (-sizes[root], position[root]))

    assignments: list[list[int]] = [[] for _ in range(shards)]
    for root in order:
        target = min(range(shards), key=lambda sid: (len(assignments[sid]), sid))
        for name in clusters[root]:
            assignments[target].extend(topology.group_indices(name))

    # Fill empty shards (more shards than clusters) by halving the heaviest
    # slice at device granularity -- this may break an edge across shards,
    # which the message-passing loop handles.
    while any(not plan for plan in assignments):
        donor = max(range(shards), key=lambda sid: (len(assignments[sid]), -sid))
        if len(assignments[donor]) < 2:
            break
        empty = next(sid for sid in range(shards) if not assignments[sid])
        keep = len(assignments[donor]) // 2
        assignments[empty] = assignments[donor][keep:]
        assignments[donor] = assignments[donor][:keep]

    return [ShardPlan(shard_id=sid, device_indices=tuple(sorted(indices)))
            for sid, indices in enumerate(assignments)]


# ---------------------------------------------------------------------------
# Shard backends: in-process and dedicated-worker-process execution
# ---------------------------------------------------------------------------

class _LocalShards:
    """All shards as in-process objects (the serial / test path)."""

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan]):
        self.workers = [ShardWorker(topology, plan) for plan in plans]

    def advance_all(self, until_us: Optional[float],
                    inboxes: Sequence[list[ReplicaMessage]],
                    ) -> list[tuple[list[ReplicaMessage], float]]:
        return [worker.advance(until_us, inbox)
                for worker, inbox in zip(self.workers, inboxes)]

    def collect_all(self) -> list[dict[str, Any]]:
        return [worker.collect() for worker in self.workers]

    def scheduled_events(self) -> int:
        return sum(worker.sim.scheduled_events for worker in self.workers)

    def close(self) -> None:
        pass


class _ProcessShards:
    """One persistent single-worker ProcessPoolExecutor per shard."""

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan]):
        self.pools = [ProcessPoolExecutor(max_workers=1) for _ in plans]
        payload = topology.canonical()
        init = [pool.submit(_worker_init, payload, plan.to_payload())
                for pool, plan in zip(self.pools, plans)]
        for future in init:
            future.result()
        self._events = 0

    def advance_all(self, until_us: Optional[float],
                    inboxes: Sequence[list[ReplicaMessage]],
                    ) -> list[tuple[list[ReplicaMessage], float]]:
        futures = [pool.submit(_worker_advance, until_us, inbox)
                   for pool, inbox in zip(self.pools, inboxes)]
        return [future.result() for future in futures]

    def collect_all(self) -> list[dict[str, Any]]:
        futures = [pool.submit(_worker_collect) for pool in self.pools]
        payloads = [future.result() for future in futures]
        self._events = sum(payload["scheduled_events"] for payload in payloads)
        return payloads

    def scheduled_events(self) -> int:
        return self._events

    def close(self) -> None:
        for pool in self.pools:
            pool.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

class FleetCoordinator:
    """Runs a :class:`FleetTopology` over ``shards`` shard simulators.

    Parameters
    ----------
    shards:
        Number of shard simulators (clamped to the device count).
    processes:
        Run each shard in a dedicated worker process (default: only when
        ``shards > 1``).  In-process execution produces byte-identical
        payloads -- it is the same ShardWorker code -- so tests and the
        serial path use it directly.
    epoch_us:
        Override the topology's conservative synchronization window.
    """

    def __init__(self, shards: int = 1, processes: Optional[bool] = None,
                 epoch_us: Optional[float] = None,
                 max_epochs: int = MAX_EPOCHS):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.processes = (shards > 1) if processes is None else processes
        self.epoch_us = epoch_us
        self.max_epochs = max_epochs

    def run(self, topology: FleetTopology) -> dict[str, Any]:
        """Execute the fleet and return the merged metrics payload.

        The payload's ``fleet`` / ``tenants`` / ``groups`` sections are
        bit-identical across shard counts and execution modes; wall-clock
        and event-throughput data live under ``runtime``.
        """
        if self.epoch_us is not None:
            topology = topology.scaled(epoch_us=self.epoch_us)
        plans = partition_topology(topology, self.shards)
        owner = {index: plan.shard_id for plan in plans
                 for index in plan.device_indices}
        started = time.perf_counter()
        backend = _ProcessShards(topology, plans) if self.processes \
            else _LocalShards(topology, plans)
        epochs = 0
        try:
            if not topology.edges:
                # No cross-device dependencies: each shard drains in one go.
                backend.advance_all(None, [[] for _ in plans])
            else:
                epochs = self._run_epochs(topology, plans, owner, backend)
            payloads = backend.collect_all()
            events = backend.scheduled_events()
        finally:
            backend.close()
        wall_s = time.perf_counter() - started
        result = merge_shard_payloads(topology, payloads)
        result["runtime"] = {
            "shards": len(plans),
            "mode": "processes" if self.processes else "in-process",
            "epochs": epochs,
            "wall_s": wall_s,
            "scheduled_events": events,
            "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
            "cpu_count": os.cpu_count(),
            "partition": [list(plan.device_indices) for plan in plans],
        }
        return result

    def _run_epochs(self, topology: FleetTopology, plans, owner, backend) -> int:
        """The conservative epoch-barrier loop (topologies with edges)."""
        epoch_us = topology.epoch_us
        inboxes: list[list[ReplicaMessage]] = [[] for _ in plans]
        peeks = [0.0] * len(plans)
        #: Barrier position as an *integer* epoch index.  The barrier time is
        #: always computed as ``index * epoch_us`` -- the exact same
        #: float-multiplication grid the replication hook quantizes delivery
        #: times onto.  Accumulating ``barrier += epoch_us`` instead would
        #: drift off that grid for epochs not exactly representable in
        #: binary, leaving a collected message's delivery in the past.
        index = 0
        epochs = 0
        while True:
            if any(inboxes):
                index += 1
            else:
                next_event = min(peeks)
                if next_event == math.inf:
                    return epochs
                # Skip whole idle epochs: jump straight to the barrier just
                # past the earliest pending event.  The advance window still
                # spans at most one epoch of *activity*, so every emitted
                # message remains deliverable at a future barrier.
                index = max(index + 1,
                            math.floor(next_event / epoch_us) + 1)
            epochs += 1
            if epochs > self.max_epochs:
                raise RuntimeError(
                    f"fleet {topology.name!r} exceeded {self.max_epochs} "
                    f"epochs (epoch_us={epoch_us}); raise epoch_us or "
                    "max_epochs")
            handoff = [sorted(inbox, key=_inbox_order) for inbox in inboxes]
            inboxes = [[] for _ in plans]
            results = backend.advance_all(index * epoch_us, handoff)
            for sid, (outbound, peek) in enumerate(results):
                peeks[sid] = peek
                for message in outbound:
                    inboxes[owner[message.target_index]].append(message)


def run_fleet_serial(topology: FleetTopology) -> dict[str, Any]:
    """The serial reference path: the whole fleet in one in-process shard."""
    return FleetCoordinator(shards=1, processes=False).run(topology)
