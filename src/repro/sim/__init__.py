"""Discrete-event simulation kernel.

Every device model in this repository (the local SSD in :mod:`repro.ssd`,
the elastic SSD in :mod:`repro.ebs`) runs on top of this small,
simpy-flavoured kernel.  Simulation time is a floating-point number of
**microseconds**; all latency parameters elsewhere in the code base use the
same unit.

The kernel provides:

* :class:`~repro.sim.engine.Simulator` -- the event loop.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Process`, :class:`~repro.sim.events.AllOf`,
  :class:`~repro.sim.events.AnyOf` -- the things a process can ``yield``.
* :class:`~repro.sim.resources.Resource` -- a counted resource with a FIFO
  wait queue (e.g. a flash die, a network link slot).
* :class:`~repro.sim.resources.Store` -- a FIFO buffer of items with optional
  capacity (e.g. a submission queue).
* :class:`~repro.sim.resources.TokenBucket` -- a rate limiter used to model
  provider-side throughput and IOPS budgets.
"""

from repro.sim.engine import Simulator
from repro.sim.events import (
    AllOf,
    AnyOf,
    ConditionValue,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Resource, Store, TokenBucket
from repro.sim.trace import Tracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Interrupt",
    "Resource",
    "Store",
    "TokenBucket",
    "Tracer",
]
