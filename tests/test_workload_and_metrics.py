"""Tests for workload generation (patterns, FIO jobs, traces) and metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.io import IOKind, KiB, MiB
from repro.metrics import (
    LatencyRecorder,
    ThroughputTimeline,
    coefficient_of_variation,
    latency_gap,
    percentile,
    throughput_gain,
)
from repro.metrics.stats import crossover_point, geometric_mean, relative_range
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.workload import (
    FioJob,
    MixedPattern,
    RandomPattern,
    SequentialPattern,
    Trace,
    TraceEvent,
    ZipfianPattern,
    make_pattern,
    replay_trace,
    run_job,
    synthesize_bursty_trace,
    synthesize_diurnal_trace,
    synthesize_uniform_trace,
)
from repro.workload.fio import run_jobs


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

def test_sequential_pattern_wraps_and_stays_aligned():
    pattern = SequentialPattern(64 * KiB, 16 * KiB, IOKind.WRITE)
    offsets = [pattern.next_offset() for _ in range(6)]
    assert offsets == [0, 16 * KiB, 32 * KiB, 48 * KiB, 0, 16 * KiB]
    assert pattern.next_kind() is IOKind.WRITE


def test_random_pattern_is_aligned_in_range_and_deterministic():
    a = RandomPattern(1 * MiB, 4 * KiB, seed=9)
    b = RandomPattern(1 * MiB, 4 * KiB, seed=9)
    offsets = [a.next_offset() for _ in range(200)]
    assert offsets == [b.next_offset() for _ in range(200)]
    assert all(offset % (4 * KiB) == 0 for offset in offsets)
    assert all(0 <= offset < 1 * MiB for offset in offsets)
    assert len(set(offsets)) > 50


def test_zipfian_pattern_is_skewed():
    pattern = ZipfianPattern(4 * MiB, 4 * KiB, seed=3)
    counts = {}
    for _ in range(2000):
        offset = pattern.next_offset()
        counts[offset] = counts.get(offset, 0) + 1
    top = max(counts.values())
    assert top > 2000 / len(counts) * 5  # clearly hotter than uniform


def test_mixed_pattern_write_ratio_roughly_respected():
    base = RandomPattern(1 * MiB, 4 * KiB, seed=1)
    mixed = MixedPattern(base, write_ratio=0.7, seed=2)
    kinds = [mixed.next_kind() for _ in range(2000)]
    writes = sum(1 for kind in kinds if kind is IOKind.WRITE)
    assert 0.6 < writes / 2000 < 0.8


def test_make_pattern_names_and_errors():
    for name in ("read", "write", "randread", "randwrite", "zipfread", "zipfwrite"):
        assert make_pattern(name, 1 * MiB, 4 * KiB) is not None
    assert make_pattern("randrw", 1 * MiB, 4 * KiB, write_ratio=0.5) is not None
    with pytest.raises(ValueError):
        make_pattern("randrw", 1 * MiB, 4 * KiB)
    with pytest.raises(ValueError):
        make_pattern("nonsense", 1 * MiB, 4 * KiB)


@settings(max_examples=30, deadline=None)
@given(io_size_kib=st.sampled_from([4, 16, 64]),
       region_mib=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=1000))
def test_pattern_offsets_always_fit_the_region(io_size_kib, region_mib, seed):
    """Property: every generated request fits entirely inside the region."""
    io_size = io_size_kib * KiB
    region = region_mib * MiB
    for name in ("randread", "write", "zipfwrite"):
        pattern = make_pattern(name, region, io_size, seed=seed)
        for _ in range(50):
            offset = pattern.next_offset()
            assert 0 <= offset
            assert offset + io_size <= region
            assert offset % io_size == 0


# ---------------------------------------------------------------------------
# FioJob / run_job
# ---------------------------------------------------------------------------

def test_fiojob_validation():
    with pytest.raises(ValueError):
        FioJob(io_count=None, total_bytes=None, runtime_us=None)
    with pytest.raises(ValueError):
        FioJob(io_count=0)
    with pytest.raises(ValueError):
        FioJob(io_count=10, queue_depth=0)
    job = FioJob(io_count=10)
    assert job.scaled(queue_depth=8).queue_depth == 8


def test_run_job_io_count_and_latency_accounting():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(64 * MiB))
    job = FioJob(name="j", pattern="randwrite", io_size=4 * KiB, queue_depth=4,
                 io_count=100, ramp_ios=10)
    result = run_job(sim, device, job)
    assert result.ios_completed == 90  # ramp I/Os excluded
    assert len(result.latency) == 90
    assert result.bytes_written == 90 * 4 * KiB
    assert result.throughput_gbps > 0
    assert result.iops > 0
    assert result.latency_summary().count == 90


def test_run_job_runtime_stop_condition():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(64 * MiB))
    job = FioJob(name="t", pattern="randread", io_size=4 * KiB, queue_depth=2,
                 runtime_us=5000.0)
    device.preload()
    result = run_job(sim, device, job)
    assert result.duration_us <= 7000.0
    assert result.ios_completed > 0


def test_run_jobs_concurrent_mix():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(64 * MiB))
    device.preload()
    jobs = [FioJob(name="r", pattern="randread", io_size=4 * KiB, queue_depth=2, io_count=50),
            FioJob(name="w", pattern="randwrite", io_size=4 * KiB, queue_depth=2, io_count=50)]
    results = run_jobs(sim, device, jobs)
    assert results[0].bytes_read == 50 * 4 * KiB
    assert results[1].bytes_written == 50 * 4 * KiB


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

def test_uniform_trace_load_matches_target():
    trace = synthesize_uniform_trace(duration_us=100_000, load_gbps=0.5,
                                     io_size=64 * KiB, seed=1)
    assert trace.mean_load_gbps() == pytest.approx(0.5, rel=0.1)
    assert trace.write_bytes() == trace.total_bytes


def test_bursty_trace_peak_exceeds_mean():
    trace = synthesize_bursty_trace(duration_us=400_000, mean_load_gbps=0.4,
                                    burst_factor=6.0, burst_fraction=0.1, seed=2)
    assert trace.peak_load_gbps(1000.0) > 3 * trace.mean_load_gbps()
    assert trace.mean_load_gbps() == pytest.approx(0.4, rel=0.25)


def test_bursty_trace_validation():
    with pytest.raises(ValueError):
        synthesize_bursty_trace(1000, 1.0, burst_factor=20, burst_fraction=0.5)


def test_diurnal_trace_oscillates():
    trace = synthesize_diurnal_trace(duration_us=200_000, mean_load_gbps=0.3,
                                     peak_to_trough=4.0, seed=3)
    series = trace.offered_load_series(10_000.0)
    assert max(series) > 1.5 * min(s for s in series if s > 0)


def test_trace_csv_roundtrip(tmp_path):
    trace = synthesize_uniform_trace(duration_us=20_000, load_gbps=0.2, seed=4,
                                     write_ratio=0.5)
    path = tmp_path / "trace.csv"
    trace.save_csv(path)
    loaded = Trace.load_csv(path)
    assert len(loaded) == len(trace)
    assert loaded.total_bytes == trace.total_bytes
    assert loaded.events[0].kind is trace.events[0].kind


def test_trace_append_requires_time_order():
    trace = Trace()
    trace.append(TraceEvent(10.0, IOKind.WRITE, 0, 4096))
    with pytest.raises(ValueError):
        trace.append(TraceEvent(5.0, IOKind.WRITE, 0, 4096))
    with pytest.raises(ValueError):
        TraceEvent(-1.0, IOKind.WRITE, 0, 4096)


def test_replay_trace_completes_all_requests():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(64 * MiB))
    trace = synthesize_uniform_trace(duration_us=30_000, load_gbps=0.3,
                                     io_size=64 * KiB, region_bytes=64 * MiB, seed=5)
    result = replay_trace(sim, device, trace)
    assert result.ios_completed == len(trace)
    assert result.unfinished == 0
    assert result.mean_latency_us > 0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_latency_recorder_summary_and_percentiles():
    recorder = LatencyRecorder()
    recorder.extend(float(v) for v in range(1, 1001))
    summary = recorder.summary()
    assert summary.count == 1000
    assert summary.mean_us == pytest.approx(500.5)
    assert summary.p50_us == pytest.approx(500.5, rel=0.01)
    assert recorder.p999() == pytest.approx(999, rel=0.01)
    assert summary.min_us == 1 and summary.max_us == 1000
    counts, _ = recorder.histogram(bins=10)
    assert counts.sum() == 1000
    with pytest.raises(ValueError):
        recorder.record(-1.0)


def test_latency_recorder_empty_and_merge():
    empty = LatencyRecorder("a")
    assert empty.summary().count == 0
    assert empty.mean() == 0.0
    other = LatencyRecorder("b")
    other.record(5.0)
    merged = empty.merge(other)
    assert len(merged) == 1


def test_throughput_timeline_binning_and_average():
    timeline = ThroughputTimeline()
    for index in range(100):
        timeline.record(index * 100.0, 1000)
    assert timeline.total_bytes == 100_000
    samples = timeline.binned(1000.0)
    assert len(samples) == 10
    assert samples[0].bytes_completed == 10_000
    assert samples[0].gigabytes_per_second == pytest.approx(0.01)
    assert timeline.average_gbps() > 0
    centres, values = timeline.gbps_series(1000.0)
    assert len(centres) == len(values) == 10
    assert timeline.cumulative_bytes_at(500.0) == 6000
    with pytest.raises(ValueError):
        timeline.record(0.0, 10)  # out of order


def test_throughput_timeline_trailing_bins_report_sane_rates():
    # A partial trailing bin is normalised by its actual span...
    timeline = ThroughputTimeline()
    for index in range(30):
        timeline.record(index * 100.0, 1000)
    samples = timeline.binned(2000.0)
    assert samples[-1].duration_us == pytest.approx(900.0)
    assert samples[-1].gigabytes_per_second == pytest.approx(0.01, rel=0.15)
    # ...but a sliver just past a boundary folds into the previous bin
    # instead of being divided by a near-zero span.
    sliver = ThroughputTimeline()
    for index in range(20):
        sliver.record(index * 100.0, 1000)
    sliver.record(2001.0, 1000)
    samples = sliver.binned(1000.0)
    assert len(samples) == 2
    assert samples[-1].bytes_completed == 11_000
    assert all(sample.gigabytes_per_second < 0.05 for sample in samples)
    # Degenerate single-timestamp timeline: no span to derive a rate from;
    # assume the bin width instead of dividing by ~zero.
    single = ThroughputTimeline()
    single.record(5.0, 1000)
    samples = single.binned(1000.0)
    assert len(samples) == 1
    assert samples[0].gigabytes_per_second == pytest.approx(0.001)


def test_stats_helpers():
    assert latency_gap(300.0, 10.0) == 30.0
    assert latency_gap(0.0, 0.0) == 1.0
    assert math.isinf(latency_gap(10.0, 0.0))
    assert throughput_gain(2.0, 1.0) == 2.0
    assert coefficient_of_variation([1.0, 1.0, 1.0]) == 0.0
    assert coefficient_of_variation([]) == 0.0
    assert relative_range([1.0, 3.0]) == pytest.approx(1.0)
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
    assert crossover_point([0, 1, 2], [3, 2, 0], [1, 1, 1]) == pytest.approx(1.5)
    assert crossover_point([0, 1], [2, 2], [1, 1]) is None
    with pytest.raises(ValueError):
        latency_gap(-1, 1)
    with pytest.raises(ValueError):
        throughput_gain(-1, 1)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=300))
def test_latency_recorder_percentiles_bounded_by_extremes(samples):
    """Property: every percentile lies between min and max of the samples."""
    recorder = LatencyRecorder()
    recorder.extend(samples)
    summary = recorder.summary()
    assert summary.min_us <= summary.p50_us <= summary.max_us
    assert summary.min_us <= summary.p999_us <= summary.max_us
    assert summary.min_us <= summary.mean_us <= summary.max_us
