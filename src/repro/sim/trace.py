"""Request-path tracing: per-request lifecycle spans and latency breakdowns.

Every device model advances a request through the same canonical lifecycle::

    submit -> queue -> service -> media | network -> complete

A :class:`Tracer` records how long each request spent in each stage via two
cheap hooks -- ``enter(request, stage)`` on every stage transition and
``finish(request)`` on completion.  Tracing is **off by default**: devices
hold ``tracer = None`` and guard every hook with a single ``is not None``
check, so the untraced hot path pays one attribute load per hook site.

Attach a tracer with :meth:`repro.host.BlockDevice.set_tracer`; one tracer
may be shared by several devices (the multi-device sweep cells do exactly
that), in which case the breakdown aggregates over all of them and
:meth:`Tracer.breakdown` can also be filtered per device.

Stage names are free-form -- the canonical ones are in :data:`STAGES` and
every device maps its internals onto them (the local SSD uses ``media`` for
flash work, the ESSD uses ``network`` for the storage-cluster round trip)
-- so reports stay uniform across device families.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.io import IORequest
    from repro.sim.engine import Simulator

#: Canonical lifecycle stages, in order.  Devices may add extra stages (e.g.
#: ``buffer`` for the SSD write buffer); reports list canonical stages first.
STAGES = ("submit", "queue", "service", "media", "network")


class Tracer:
    """Records per-request stage spans and aggregates latency breakdowns.

    Parameters
    ----------
    sim:
        The simulator whose clock timestamps the spans.
    keep_spans:
        Retain the complete span list of the last ``keep_spans`` completed
        requests (0 disables retention; aggregation always happens).
    """

    def __init__(self, sim: "Simulator", keep_spans: int = 0):
        self.sim = sim
        #: request_id -> [device_name, stage, stage_entered_at, submit_time,
        #:                retained span list or None]
        self._open: dict[int, list] = {}
        #: (device_name, stage) -> list of stage durations (us).
        self._stage_samples: dict[tuple[str, str], list[float]] = {}
        self._completed = 0
        self._keep_spans = keep_spans
        self.spans: deque = deque(maxlen=keep_spans) if keep_spans > 0 else deque(maxlen=0)

    # -- hooks (called by devices) ---------------------------------------
    def start(self, request: "IORequest", device: str = "") -> None:
        """Open the trace for ``request`` in the ``submit`` stage."""
        now = self.sim.now
        retained = [] if self._keep_spans > 0 else None
        self._open[request.request_id] = [device, "submit", now, now, retained]

    def enter(self, request: "IORequest", stage: str) -> None:
        """Close the current stage span and enter ``stage``."""
        entry = self._open.get(request.request_id)
        if entry is None:
            return
        now = self.sim.now
        self._close_stage(entry, now)
        entry[1] = stage
        entry[2] = now

    def finish(self, request: "IORequest") -> None:
        """Close the trace; the final open stage span ends now."""
        entry = self._open.pop(request.request_id, None)
        if entry is None:
            return
        now = self.sim.now
        self._close_stage(entry, now)
        self._completed += 1
        if entry[4] is not None:
            self.spans.append({
                "request_id": request.request_id,
                "device": entry[0],
                "kind": request.kind.value,
                "size": request.size,
                "submit_us": entry[3],
                "complete_us": now,
                "spans": entry[4],
            })

    def _close_stage(self, entry: list, now: float) -> None:
        duration = now - entry[2]
        key = (entry[0], entry[1])
        samples = self._stage_samples.get(key)
        if samples is None:
            samples = self._stage_samples[key] = []
        samples.append(duration)
        if entry[4] is not None:
            entry[4].append((entry[1], entry[2], now))

    # -- reporting --------------------------------------------------------
    @property
    def completed_requests(self) -> int:
        return self._completed

    @property
    def open_requests(self) -> int:
        return len(self._open)

    def devices(self) -> list[str]:
        """Device names that contributed samples."""
        return sorted({device for device, _stage in self._stage_samples})

    def breakdown(self, device: Optional[str] = None) -> dict[str, dict[str, Any]]:
        """Aggregate per-stage statistics.

        Returns ``{stage: {count, total_us, mean_us, p50_us, p99_us, max_us,
        share}}`` where ``share`` is the stage's fraction of the summed
        traced time.  With ``device`` given, only that device's samples are
        aggregated; otherwise all devices pool together.
        """
        import numpy as np

        per_stage: dict[str, list[float]] = {}
        for (sample_device, stage), samples in self._stage_samples.items():
            if device is not None and sample_device != device:
                continue
            per_stage.setdefault(stage, []).extend(samples)
        grand_total = sum(sum(samples) for samples in per_stage.values()) or 1.0
        ordered = [stage for stage in STAGES if stage in per_stage]
        ordered += sorted(stage for stage in per_stage if stage not in STAGES)
        result = {}
        for stage in ordered:
            arr = np.asarray(per_stage[stage], dtype=np.float64)
            total = float(arr.sum())
            result[stage] = {
                "count": int(arr.size),
                "total_us": total,
                "mean_us": float(arr.mean()),
                "p50_us": float(np.percentile(arr, 50)),
                "p99_us": float(np.percentile(arr, 99)),
                "max_us": float(arr.max()),
                "share": total / grand_total,
            }
        return result

    def render(self, device: Optional[str] = None) -> str:
        """Plain-text latency-breakdown table (one row per stage)."""
        breakdown = self.breakdown(device)
        if not breakdown:
            return "(no traced requests)"
        headers = ["stage", "count", "mean_us", "p50_us", "p99_us", "max_us", "share"]
        rows = []
        for stage, stats in breakdown.items():
            rows.append([
                stage,
                str(stats["count"]),
                f"{stats['mean_us']:.1f}",
                f"{stats['p50_us']:.1f}",
                f"{stats['p99_us']:.1f}",
                f"{stats['max_us']:.1f}",
                f"{stats['share']:.1%}",
            ])
        widths = [max(len(header), *(len(row[i]) for row in rows))
                  for i, header in enumerate(headers)]
        lines = ["  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))]
        lines.append("  ".join("-" * width for width in widths))
        lines.extend("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
                     for row in rows)
        return "\n".join(lines)

    def to_payload(self, per_device: bool = True) -> dict[str, Any]:
        """JSON-serialisable breakdown (overall plus per device)."""
        payload: dict[str, Any] = {
            "completed_requests": self._completed,
            "stages": self.breakdown(),
        }
        if per_device:
            devices = self.devices()
            if len(devices) > 1 or (devices and devices[0]):
                payload["devices"] = {
                    name: self.breakdown(name) for name in devices}
        return payload
