"""Provider-side space management: GC hiding and flow limiting.

The storage cluster absorbs the volume's writes into a distributed,
append-only backend and reclaims space in the background using resources the
tenant never sees -- which is why the classic device-level GC cliff
"appears much later or even disappears" on an ESSD (the paper's
Observation 2).  What the tenant *can* eventually observe is the provider's
own protection mechanism: once the cumulative write volume crosses an
internal credit threshold, writes are flow-limited to a low, flat rate
(observed for ESSD-1 at roughly 2.55x the volume capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.ebs.qos import QosManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ebs.config import EssdProfile
    from repro.sim import Simulator


@dataclass
class BackendStats:
    """Cumulative backend accounting for one volume."""

    bytes_written: int = 0
    bytes_read: int = 0
    background_reclaim_bytes: int = 0
    flow_limit_engaged_at_us: Optional[float] = None
    flow_limit_engaged_at_bytes: Optional[int] = None
    events: list = field(default_factory=list)


class ElasticBackend:
    """Tracks cumulative traffic and decides when to engage flow limiting."""

    def __init__(self, sim: "Simulator", profile: "EssdProfile", qos: QosManager):
        self.sim = sim
        self.profile = profile
        self.qos = qos
        self.stats = BackendStats()
        if profile.flow_limit_after_capacity_factor is None:
            self._flow_limit_threshold: Optional[int] = None
        else:
            self._flow_limit_threshold = int(
                profile.flow_limit_after_capacity_factor * profile.capacity_bytes)

    # -- accounting ------------------------------------------------------------
    @property
    def written_capacity_factor(self) -> float:
        """Cumulative writes expressed as a multiple of the volume capacity."""
        return self.stats.bytes_written / self.profile.capacity_bytes

    @property
    def flow_limit_threshold_bytes(self) -> Optional[int]:
        return self._flow_limit_threshold

    def record_read(self, num_bytes: int) -> None:
        self.stats.bytes_read += num_bytes

    def record_write(self, num_bytes: int) -> None:
        """Account a completed host write and engage flow limiting if due."""
        self.stats.bytes_written += num_bytes
        # The provider reclaims superseded data in the background with spare
        # cluster resources; model it as instantaneous from the tenant's
        # perspective (it never competes with foreground I/O).
        self.stats.background_reclaim_bytes += num_bytes
        if (self._flow_limit_threshold is not None
                and not self.qos.flow_limited
                and self.stats.bytes_written >= self._flow_limit_threshold):
            self.qos.engage_write_limit(self.profile.flow_limited_write_bytes_per_us)
            self.stats.flow_limit_engaged_at_us = self.sim.now
            self.stats.flow_limit_engaged_at_bytes = self.stats.bytes_written
            self.stats.events.append(
                ("flow-limit-engaged", self.sim.now, self.stats.bytes_written))

    def describe(self) -> dict:
        """Summary used in experiment reports."""
        return {
            "bytes_written": self.stats.bytes_written,
            "bytes_read": self.stats.bytes_read,
            "written_capacity_factor": round(self.written_capacity_factor, 3),
            "flow_limited": self.qos.flow_limited,
            "flow_limit_engaged_at_bytes": self.stats.flow_limit_engaged_at_bytes,
        }
