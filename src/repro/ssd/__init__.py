"""Local flash SSD simulator.

:class:`SsdDevice` implements :class:`repro.host.BlockDevice` on top of a
full FTL: page-level address mapping, superblock-style striped allocation,
greedy garbage collection, a DRAM write buffer, and a sequential-read
prefetcher.  The shipped :func:`samsung_970pro_profile` configuration is
calibrated so that the latency, bandwidth, and GC-cliff behaviour match the
Samsung 970 Pro numbers reported in the paper (Table I, Figures 2-5).
"""

from repro.ssd.config import SsdConfig, samsung_970pro_profile, SAMSUNG_970PRO_PROFILE
from repro.ssd.ssd import SsdDevice

__all__ = [
    "SsdConfig",
    "SsdDevice",
    "samsung_970pro_profile",
    "SAMSUNG_970PRO_PROFILE",
]
