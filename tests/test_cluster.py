"""Tests for the sharded fleet-simulation subsystem (repro.cluster)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FaultPolicy,
    FleetCoordinator,
    FleetTopology,
    ShardWorker,
    edge,
    fault,
    fleet,
    group,
    partition_topology,
    run_fleet_serial,
    tenant,
)
from repro.cluster.shard import ShardPlan
from repro.experiments.cli import main as cli_main
from repro.experiments.scenarios import get_scenario, register, scenario
from repro.experiments.sweep import SweepRunner, run_cell

#: A small mixed fleet with a replication edge, on the fast loopback device.
MINI_CAPACITY = 1 << 24


def mini_fleet(**changes) -> FleetTopology:
    topology = fleet(
        "mini-under-test",
        groups=[
            group("web", "LOOP", 4, capacity_bytes=MINI_CAPACITY),
            group("db", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4096,
                   queue_depth=2, io_count=20),
            tenant("oltp", "db", pattern="randwrite", io_size=8192,
                   queue_depth=1, io_count=15),
        ],
        edges=[edge("db", "mirror", replication_factor=2)],
        epoch_us=200.0,
        seed=5,
    )
    return topology.scaled(**changes) if changes else topology


def strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

def test_topology_payload_roundtrip_and_canonical():
    topology = mini_fleet()
    clone = FleetTopology.from_json(topology.canonical())
    assert clone == topology
    assert clone.canonical() == topology.canonical()
    assert topology.total_devices == 10
    assert topology.group_indices("db") == [4, 5, 6]
    assert topology.device_table()[0] == ("web", 0)


def test_topology_validation():
    web = group("web", "LOOP", 2)
    with pytest.raises(ValueError):  # unknown tenant group
        fleet("bad", groups=[web], tenants=[tenant("t", "nope", io_count=1)])
    with pytest.raises(ValueError):  # unknown edge group
        fleet("bad", groups=[web], edges=[edge("web", "nope")])
    with pytest.raises(ValueError):  # duplicate group names
        fleet("bad", groups=[web, group("web", "SSD", 1)])
    with pytest.raises(ValueError):  # factor exceeds target group size
        fleet("bad", groups=[web, group("m", "LOOP", 1)],
              edges=[edge("web", "m", replication_factor=2)])
    with pytest.raises(ValueError):  # self-edge
        edge("web", "web")
    with pytest.raises(ValueError):  # count must be positive
        group("empty", "LOOP", 0)


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def test_partition_covers_every_device_exactly_once():
    topology = mini_fleet()
    for shards in (1, 2, 3, 4, 7, 100):
        plans = partition_topology(topology, shards)
        indices = [i for plan in plans for i in plan.device_indices]
        assert sorted(indices) == list(range(topology.total_devices))
        assert len(plans) == min(shards, topology.total_devices)
        assert all(plan.device_indices for plan in plans)


def test_partition_keeps_replication_edges_intra_shard_when_possible():
    topology = mini_fleet()
    # Two clusters ({web}, {db, mirror}) onto two shards: the edge endpoints
    # must land together.
    plans = partition_topology(topology, 2)
    db = set(topology.group_indices("db"))
    mirror = set(topology.group_indices("mirror"))
    for plan in plans:
        owned = set(plan.device_indices)
        if owned & db:
            assert db | mirror <= owned


def test_partition_is_deterministic():
    topology = mini_fleet()
    assert partition_topology(topology, 3) == partition_topology(topology, 3)


# ---------------------------------------------------------------------------
# Serial vs sharded determinism (the seed-hygiene regression test)
# ---------------------------------------------------------------------------

def test_serial_and_sharded_runs_are_bit_identical():
    """Metrics must not depend on the shard layout: seeds, replica delivery
    times, and injection order all derive from logical identities only."""
    topology = mini_fleet()
    serial = run_fleet_serial(topology)
    for shards in (2, 3):
        sharded = FleetCoordinator(shards=shards, processes=False).run(topology)
        assert json.dumps(strip_runtime(sharded), sort_keys=True) == \
            json.dumps(strip_runtime(serial), sort_keys=True)


def test_shards_1_is_the_serial_path():
    topology = mini_fleet()
    one = FleetCoordinator(shards=1, processes=False).run(topology)
    serial = run_fleet_serial(topology)
    assert json.dumps(strip_runtime(one), sort_keys=True) == \
        json.dumps(strip_runtime(serial), sort_keys=True)


def test_process_mode_matches_in_process():
    topology = mini_fleet()
    serial = run_fleet_serial(topology)
    processed = FleetCoordinator(shards=2, processes=True).run(topology)
    assert json.dumps(strip_runtime(processed), sort_keys=True) == \
        json.dumps(strip_runtime(serial), sort_keys=True)
    assert processed["runtime"]["mode"] == "processes"
    assert processed["runtime"]["shards"] == 2


def test_every_tenant_device_pair_gets_a_distinct_seed():
    """No two (tenant, device) workloads may share an RNG stream."""
    topology = mini_fleet()
    worker = ShardWorker(topology, partition_topology(topology, 1)[0])
    seeds = [run[2].job.seed for run in worker._runs]
    assert len(seeds) == len(set(seeds)) == 7  # 4 web + 3 db devices


# ---------------------------------------------------------------------------
# Replication edges
# ---------------------------------------------------------------------------

def test_replication_edge_delivers_quantized_replica_writes():
    topology = mini_fleet()
    result = run_fleet_serial(topology)
    mirror = result["groups"]["mirror"]
    # Every oltp write (3 devices x 15 I/Os) fans out 2-way.
    assert mirror["replica_writes"] == 3 * 15 * 2
    assert mirror["replica_bytes"] == mirror["replica_writes"] * 8192
    assert mirror["replica_mean_us"] > 0
    assert result["fleet"]["replica_writes"] == mirror["replica_writes"]
    # The unreplicated read group absorbed nothing.
    assert result["groups"]["web"]["replica_writes"] == 0


def test_replication_spanning_many_epochs_delivers_every_write():
    """Writes straddling many epoch barriers must all replicate (regression:
    the outbound buffer was once rebound at the barrier, orphaning the
    hook's reference), even for an epoch width with no exact binary
    representation (regression: an accumulated float barrier drifted off
    the delivery-quantization grid and scheduled deliveries in the past)."""
    topology = fleet(
        "multi-epoch",
        groups=[
            group("db", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
        ],
        tenants=[tenant("oltp", "db", pattern="randwrite", io_size=4096,
                        queue_depth=1, io_count=200, think_time_us=7.0)],
        edges=[edge("db", "mirror")],
        epoch_us=33.3,
        seed=3,
    )
    serial = run_fleet_serial(topology)
    assert serial["runtime"]["epochs"] > 10  # genuinely multi-epoch
    assert serial["groups"]["mirror"]["replica_writes"] == 2 * 200
    sharded = FleetCoordinator(shards=3, processes=False).run(topology)
    assert json.dumps(strip_runtime(sharded), sort_keys=True) == \
        json.dumps(strip_runtime(serial), sort_keys=True)


def test_split_replication_target_group_keeps_replica_stats_identical():
    """When the partitioner splits a replication *target* group across
    shards, replica latency must still pool in global-index order
    (regression: per-group stats merged in shard order perturbed the mean
    by a few ULPs and broke the bit-identical invariant)."""
    topology = fleet(
        "split-target",
        groups=[
            group("db", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
        ],
        tenants=[tenant("oltp", "db", pattern="randwrite", io_size=4096,
                        queue_depth=1, io_count=30)],
        edges=[edge("db", "mirror", replication_factor=3)],
        epoch_us=333.3,
        seed=7,
    )
    serial = run_fleet_serial(topology)
    assert serial["groups"]["mirror"]["replica_writes"] == 2 * 30 * 3
    for shards in (3, 5):
        plans = partition_topology(topology, shards)
        mirror = set(topology.group_indices("mirror"))
        owners = {plan.shard_id for plan in plans
                  if set(plan.device_indices) & mirror}
        assert len(owners) > 1, "topology no longer splits the target group"
        sharded = FleetCoordinator(shards=shards, processes=False).run(topology)
        assert json.dumps(strip_runtime(sharded), sort_keys=True) == \
            json.dumps(strip_runtime(serial), sort_keys=True)


def test_misspelled_fleet_axis_is_rejected_not_silently_ignored():
    with pytest.raises(ValueError, match="epoch_uss"):
        scenario("x", "d", devices=("fleet",), fleet=mini_fleet(),
                 grid={"fleet.epoch_uss": (500.0,)}).cells()
    with pytest.raises(Exception):  # bad group field fails at expansion
        scenario("x", "d", devices=("fleet",), fleet=mini_fleet(),
                 grid={"fleet.web.coutn": (8,)}).cells()


def test_fleet_without_edges_skips_the_barrier_loop():
    topology = fleet(
        "edgeless", groups=[group("g", "LOOP", 3, capacity_bytes=MINI_CAPACITY)],
        tenants=[tenant("t", "g", pattern="randwrite", io_size=4096,
                        io_count=10)])
    serial = run_fleet_serial(topology)
    sharded = FleetCoordinator(shards=3, processes=False).run(topology)
    assert serial["runtime"]["epochs"] == 0
    assert json.dumps(strip_runtime(serial), sort_keys=True) == \
        json.dumps(strip_runtime(sharded), sort_keys=True)


# ---------------------------------------------------------------------------
# Trace-driven tenants
# ---------------------------------------------------------------------------

def test_trace_tenants_replay_open_loop_and_stay_layout_independent():
    topology = fleet(
        "traced",
        groups=[group("store", "LOOP", 3, capacity_bytes=MINI_CAPACITY)],
        tenants=[tenant("arrivals", "store", trace="bursty",
                        duration_us=20_000.0, mean_load_gbps=0.2,
                        io_size=16384)],
        seed=9)
    serial = run_fleet_serial(topology)
    sharded = FleetCoordinator(shards=3, processes=False).run(topology)
    assert json.dumps(strip_runtime(serial), sort_keys=True) == \
        json.dumps(strip_runtime(sharded), sort_keys=True)
    arrivals = serial["tenants"]["arrivals"]
    assert arrivals["ios_completed"] > 0
    assert arrivals["bytes_written"] > 0
    assert serial["fleet"]["duration_us"] > 0


def test_unknown_trace_family_is_rejected():
    from repro.workload.trace import synthesize_trace
    with pytest.raises(ValueError):
        synthesize_trace("nope", duration_us=1000.0)


# ---------------------------------------------------------------------------
# Sweep-layer integration (CellSpec.fleet) and the CLI verb
# ---------------------------------------------------------------------------

def _register_mini_scenario():
    spec = scenario(
        "mini-fleet-under-test", "test-only fleet",
        devices=("fleet",),
        fleet=mini_fleet(),
        grid={"fleet.web.count": (2, 4)},
    )
    register(spec, replace=True)
    return spec


def test_fleet_scenario_expands_shape_axes_into_topologies():
    spec = _register_mini_scenario()
    cells = spec.cells()
    assert len(cells) == 2
    counts = [json.loads(cell.fleet)["groups"][0]["count"] for cell in cells]
    assert counts == [2, 4]
    assert [dict(cell.labels)["fleet.web.count"] for cell in cells] == [2, 4]
    # Fleet axes demand a topology; group fields and tenant knobs resolve.
    with pytest.raises(ValueError):
        scenario("x", "d", devices=("fleet",),
                 grid={"fleet.web.count": (1,)}).cells()
    with pytest.raises(ValueError):
        scenario("x", "d", devices=("fleet",), fleet=mini_fleet(),
                 grid={"fleet.nope.count": (1,)}).cells()


def test_fleet_cell_runs_through_sweep_runner_with_cache(tmp_path):
    spec = _register_mini_scenario()
    cells = spec.cells()[:1]
    first = SweepRunner(cache_dir=tmp_path).run_cells(spec.name, cells)
    second = SweepRunner(cache_dir=tmp_path).run_cells(spec.name, cells)
    assert first.cache_hits == 0 and second.cache_hits == 1
    metrics = first.outcomes[0].metrics
    assert metrics == second.outcomes[0].metrics
    assert metrics["ios_completed"] > 0
    assert "runtime" not in metrics["fleet"]  # wall-clock never cached
    assert run_cell(cells[0]) == run_cell(cells[0])


def test_cli_fleet_verb_runs_and_saves_report(tmp_path, capsys):
    _register_mini_scenario()
    out = tmp_path / "fleet.json"
    assert cli_main(["fleet", "mini-fleet-under-test", "--serial",
                     "--shards", "2", "--no-cache", "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "frontend" in printed and "2 shard(s)" in printed
    reports = json.loads(out.read_text())
    assert len(reports) == 2
    assert reports[0]["result"]["fleet"]["ios_completed"] > 0
    # Unknown scenario and non-fleet scenario fail cleanly.
    assert cli_main(["fleet", "no-such-scenario"]) == 2
    assert cli_main(["fleet", "latency-grid"]) == 2


def test_cli_fleet_verb_honors_sweep_cache_env(tmp_path, capsys, monkeypatch):
    """``fleet --quick`` must cache under ``$REPRO_SWEEP_CACHE`` exactly
    like ``run`` does (regression: the fleet verb ignored the cache
    entirely, re-simulating every invocation)."""
    _register_mini_scenario()
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
    assert cli_main(["fleet", "mini-fleet-under-test", "--serial",
                     "--quick"]) == 0
    first = capsys.readouterr().out
    assert "cached result" not in first
    cache_files = list((tmp_path / "cache").rglob("*.json"))
    assert cache_files, "fleet verb wrote nothing to $REPRO_SWEEP_CACHE"
    assert cli_main(["fleet", "mini-fleet-under-test", "--serial",
                     "--quick"]) == 0
    second = capsys.readouterr().out
    assert "cached result" in second
    # The physics tables are identical between the fresh and cached pass.
    assert first.split("runtime:")[0] == second.split("runtime:")[0]
    # A different shard count / run-ahead still hits the same cache entry
    # (execution details are excluded from the key) ...
    assert cli_main(["fleet", "mini-fleet-under-test", "--serial",
                     "--quick", "--shards", "3", "--run-ahead", "1"]) == 0
    assert "cached result" in capsys.readouterr().out
    # ... while an epoch override is different physics: fresh run.
    assert cli_main(["fleet", "mini-fleet-under-test", "--serial",
                     "--quick", "--epoch-us", "400.0"]) == 0
    assert "cached result" not in capsys.readouterr().out
    # --force bypasses, --no-cache disables.
    assert cli_main(["fleet", "mini-fleet-under-test", "--serial",
                     "--quick", "--force"]) == 0
    assert "cached result" not in capsys.readouterr().out


def test_sweep_runner_passes_shards_down_to_fleet_cells(tmp_path):
    """A fleet cell sharded through the sweep pool (nested parallelism)
    must match the serial single-shard result bit for bit."""
    spec = _register_mini_scenario()
    cells = spec.cells()[:1]
    serial = SweepRunner().run_cells(spec.name, cells)
    sharded = SweepRunner(parallel=True, fleet_shards=2,
                          cache_dir=None).run_cells(spec.name, cells)
    assert serial.outcomes[0].metrics == sharded.outcomes[0].metrics
    # The shard count is an execution detail: same cache key either way.
    assert cells[0].cache_key() == \
        sharded.outcomes[0].cell.cache_key()
    assert sharded.outcomes[0].cell.fleet_shards == 2


def test_coordinator_run_ahead_values_are_bit_identical():
    topology = mini_fleet()
    reference = run_fleet_serial(topology)
    for shards, run_ahead in ((1, 1), (2, 4), (3, 1), (3, 64)):
        payload = FleetCoordinator(shards=shards, processes=False,
                                   run_ahead=run_ahead).run(topology)
        assert json.dumps(strip_runtime(payload), sort_keys=True) == \
            json.dumps(strip_runtime(reference), sort_keys=True), \
            (shards, run_ahead)


def test_batched_coordination_cuts_tasks_per_busy_epoch():
    """Self-contained shards get multi-epoch grants: coordinator rounds
    drop from one per busy epoch to one per run-ahead window."""
    topology = mini_fleet()
    per_epoch = FleetCoordinator(shards=2, processes=False,
                                 run_ahead=1).run(topology)
    batched = FleetCoordinator(shards=2, processes=False,
                               run_ahead=64).run(topology)
    assert per_epoch["runtime"]["batched"]
    assert batched["runtime"]["batched"]
    assert per_epoch["runtime"]["coordinator_rounds"] == \
        per_epoch["runtime"]["epochs"]
    assert batched["runtime"]["coordinator_rounds"] < \
        per_epoch["runtime"]["coordinator_rounds"]
    assert batched["runtime"]["epochs"] == per_epoch["runtime"]["epochs"]
    assert json.dumps(strip_runtime(batched), sort_keys=True) == \
        json.dumps(strip_runtime(per_epoch), sort_keys=True)


def test_registered_fleet_scenarios_are_well_formed():
    for name in ("fleet-smoke", "datacenter-diurnal"):
        spec = get_scenario(name)
        cells = spec.cells()
        assert cells, name
        for cell in cells:
            topology = FleetTopology.from_json(cell.fleet)
            assert topology.total_devices >= 24
    smoke = get_scenario("fleet-smoke").cells()[0]
    assert FleetTopology.from_json(smoke.fleet).total_devices >= 64


def test_shard_plan_payload_roundtrip():
    plan = ShardPlan(shard_id=2, device_indices=(1, 4, 5))
    assert ShardPlan.from_payload(plan.to_payload()) == plan


# ---------------------------------------------------------------------------
# Fault-injection layout independence
# ---------------------------------------------------------------------------

def faulty_mini_fleet(faults, policy, epoch_us=200.0) -> FleetTopology:
    """mini_fleet plus a cold spare tier so fail events can promote one."""
    return fleet(
        "faulty-mini-under-test",
        groups=[
            group("web", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
            group("db", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
            group("spare", "LOOP", 1, capacity_bytes=MINI_CAPACITY,
                  preload=False),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4096,
                   queue_depth=2, io_count=15),
            tenant("oltp", "db", pattern="randwrite", io_size=8192,
                   queue_depth=2, io_count=20),
        ],
        edges=[edge("db", "mirror", replication_factor=2)],
        faults=faults,
        fault_policy=policy,
        epoch_us=epoch_us,
        seed=5,
    )


_FAULT_SIZES = (3, 2, 2)  # devices in web / db / mirror


@st.composite
def fault_events(draw):
    kind = draw(st.sampled_from(("fail", "drain")))
    group_index = draw(st.integers(min_value=0, max_value=2))
    group_name = ("web", "db", "mirror")[group_index]
    at_us = draw(st.floats(min_value=0.0, max_value=2500.0,
                           allow_nan=False, allow_infinity=False))
    device = draw(st.one_of(
        st.none(),
        st.integers(min_value=0, max_value=_FAULT_SIZES[group_index] - 1)))
    repair = draw(st.one_of(
        st.none(),
        st.floats(min_value=50.0, max_value=2000.0,
                  allow_nan=False, allow_infinity=False)))
    spare = draw(st.sampled_from((None, "spare"))) if kind == "fail" else None
    return fault(kind, group_name, at_us=at_us, device=device,
                 repair_after_us=repair, spare=spare)


fault_policies = st.builds(
    FaultPolicy,
    rebuild_chunk_bytes=st.sampled_from((4096, 65536)),
    rebuild_chunks_per_epoch=st.sampled_from((1, 4)),
    shed_penalty_us=st.sampled_from((25.0, 100.0)),
    max_inflight=st.sampled_from((None, 4)),
)


@settings(max_examples=12, deadline=None)
@given(
    faults=st.lists(fault_events(), min_size=1, max_size=3),
    policy=fault_policies,
    epoch_us=st.sampled_from((150.0, 200.0, 250.0)),
)
def test_random_fault_schedules_stay_layout_independent(
        faults, policy, epoch_us):
    """Any declarative fault schedule — whatever it fails, drains, repairs
    or promotes — must leave shards=N bit-identical to the serial run for
    every run-ahead window."""
    topology = faulty_mini_fleet(faults, policy, epoch_us=epoch_us)
    reference = json.dumps(strip_runtime(run_fleet_serial(topology)),
                           sort_keys=True)
    for shards, run_ahead in ((2, 1), (2, 16), (4, 4)):
        payload = FleetCoordinator(shards=shards, processes=False,
                                   run_ahead=run_ahead).run(topology)
        assert json.dumps(strip_runtime(payload), sort_keys=True) == \
            reference, (shards, run_ahead)


def test_faulted_fleet_is_bit_identical_across_shard_counts():
    """Deterministic anchor for the property above: a fail with spare
    promotion plus a drain, active mid-run, across every layout."""
    topology = faulty_mini_fleet(
        [fault("fail", "db", at_us=150.0, device=0, repair_after_us=600.0,
               spare="spare"),
         fault("drain", "mirror", at_us=350.0, device=1,
               repair_after_us=400.0)],
        FaultPolicy(rebuild_chunk_bytes=16 * 4096, rebuild_chunks_per_epoch=2,
                    shed_penalty_us=50.0))
    serial = run_fleet_serial(topology)
    assert serial["faults"]["shed_ios"] > 0
    assert serial["faults"]["rebuild_writes"] > 0
    reference = json.dumps(strip_runtime(serial), sort_keys=True)
    for shards in (2, 3, 4):
        sharded = FleetCoordinator(shards=shards, processes=False).run(topology)
        assert json.dumps(strip_runtime(sharded), sort_keys=True) == \
            reference, shards
