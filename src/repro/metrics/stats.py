"""Comparison metrics used throughout the unwritten contract.

* ``latency_gap`` -- the "multiples the ESSD latency is divided by the SSD
  latency" metric of Figure 2.
* ``throughput_gain`` -- the random-over-sequential throughput gain of
  Figure 4.
* ``coefficient_of_variation`` -- used by the Observation-4 check to decide
  whether the maximum bandwidth is "deterministic".
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples``; 0.0 when empty."""
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def latency_gap(essd_latency_us: float, ssd_latency_us: float) -> float:
    """ESSD latency divided by SSD latency (smaller is better for the ESSD)."""
    if essd_latency_us < 0 or ssd_latency_us < 0:
        raise ValueError("latencies must be non-negative")
    if ssd_latency_us == 0:
        return float("inf") if essd_latency_us > 0 else 1.0
    return essd_latency_us / ssd_latency_us


def throughput_gain(random_gbps: float, sequential_gbps: float) -> float:
    """Random-write throughput divided by sequential-write throughput."""
    if random_gbps < 0 or sequential_gbps < 0:
        raise ValueError("throughputs must be non-negative")
    if sequential_gbps == 0:
        return float("inf") if random_gbps > 0 else 1.0
    return random_gbps / sequential_gbps


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Standard deviation divided by mean; 0.0 for empty or zero-mean input."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)


def relative_range(values: Iterable[float]) -> float:
    """(max - min) / mean -- an alternative determinism metric."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float((arr.max() - arr.min()) / mean)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive entries; 0.0 when none remain."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))


def crossover_point(xs: Sequence[float], series_a: Sequence[float],
                    series_b: Sequence[float]) -> float | None:
    """First x at which ``series_a`` falls below ``series_b`` (linear interp).

    Used by benchmark reports to locate where one device's throughput curve
    crosses another's.  Returns ``None`` if no crossover occurs.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("all series must have the same length")
    for index in range(1, len(xs)):
        prev_diff = series_a[index - 1] - series_b[index - 1]
        diff = series_a[index] - series_b[index]
        if prev_diff >= 0 and diff < 0:
            if prev_diff == diff:
                return float(xs[index])
            fraction = prev_diff / (prev_diff - diff)
            return float(xs[index - 1] + fraction * (xs[index] - xs[index - 1]))
    return None
