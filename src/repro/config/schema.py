"""Document <-> object converters with path-addressed validation errors.

A *document* is the plain-data (YAML/JSON) form of a topology, a scenario,
or a sweep cell: mappings and lists of scalars, friendly to write by hand
(``device_params`` is a mapping, not the sorted-pairs tuple the frozen
dataclasses store).  Every ``*_from_document`` function validates the
document shape *before* constructing objects, so a malformed file fails
with the exact path of the offending value::

    fleet.groups[2].count: expected positive int
    scenario.streams.victim.queue_deth: not a stream override field (...)

Cross-field invariants (a tenant naming an unknown group, a replication
factor exceeding the target group) are enforced by the dataclasses
themselves; those errors are re-raised as :class:`ConfigError` carrying the
document path of the enclosing element.

The converters are lossless: ``topology -> document -> topology`` (and the
scenario / cell equivalents) is an identity, which is what lets a fleet
defined only in YAML produce metrics bit-identical to its Python-built
twin -- both sides collapse to the same canonical JSON and therefore the
same sweep-cache key.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence

__all__ = [
    "ConfigError",
    "cell_from_document",
    "cell_to_document",
    "document_kind",
    "run_config_from_document",
    "run_config_to_document",
    "scenario_for_document",
    "scenario_from_document",
    "scenario_to_document",
    "topology_from_document",
    "topology_to_document",
]


class ConfigError(ValueError):
    """A document validation failure at a specific path.

    ``str(error)`` reads ``<path>: <message>`` -- e.g.
    ``fleet.groups[2].count: expected positive int`` -- so CLI verbs can
    print it verbatim.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}")


# ---------------------------------------------------------------------------
# Typed accessors (every validation error speaks in document paths)
# ---------------------------------------------------------------------------

_SCALAR_TYPES = (str, bool, int, float, type(None))


def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, Mapping):
        return "mapping"
    if isinstance(value, (list, tuple)):
        return "list"
    return type(value).__name__


def _as_mapping(value: Any, path: str) -> dict:
    if not isinstance(value, Mapping):
        raise ConfigError(path, f"expected mapping, got {_type_name(value)}")
    return dict(value)


def _as_list(value: Any, path: str) -> list:
    if isinstance(value, Mapping) or not isinstance(value, (list, tuple)):
        raise ConfigError(path, f"expected list, got {_type_name(value)}")
    return list(value)


def _as_str(value: Any, path: str, choices: Optional[Sequence[str]] = None) -> str:
    if not isinstance(value, str):
        raise ConfigError(path, f"expected str, got {_type_name(value)}")
    if not value:
        raise ConfigError(path, "expected non-empty str")
    if choices is not None and value not in choices:
        raise ConfigError(path, f"expected one of {', '.join(choices)}; "
                                f"got {value!r}")
    return value


def _as_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ConfigError(path, f"expected bool, got {_type_name(value)}")
    return value


def _as_int(value: Any, path: str, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(path, f"expected int, got {_type_name(value)}")
    if minimum is not None and value < minimum:
        kind = "positive int" if minimum == 1 else f"int >= {minimum}"
        raise ConfigError(path, f"expected {kind}")
    return value


def _as_positive_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigError(path, "expected positive int")
    return value


def _as_number(value: Any, path: str, positive: bool = False,
               minimum: Optional[float] = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(path, f"expected number, got {_type_name(value)}")
    if positive and value <= 0:
        raise ConfigError(path, "expected positive number")
    if minimum is not None and value < minimum:
        raise ConfigError(path, f"expected number >= {minimum}")
    return float(value)


def _as_scalar(value: Any, path: str) -> Any:
    if not isinstance(value, _SCALAR_TYPES):
        raise ConfigError(path, f"expected scalar (str/number/bool/null), "
                                f"got {_type_name(value)}")
    return value


def _check_keys(mapping: Mapping[str, Any], path: str,
                allowed: Sequence[str], required: Sequence[str] = ()) -> None:
    for key in mapping:
        if not isinstance(key, str):
            raise ConfigError(path, f"expected str keys, got {_type_name(key)}")
        if key not in allowed:
            raise ConfigError(f"{path}.{key}",
                              f"unknown key (expected: {', '.join(sorted(allowed))})")
    for key in required:
        if key not in mapping:
            raise ConfigError(path, f"missing required key {key!r}")


def _scalar_mapping(value: Any, path: str) -> dict[str, Any]:
    """A mapping of str -> scalar (device_params, labels, grid points)."""
    mapping = _as_mapping(value, path)
    return {_as_str(key, path): _as_scalar(entry, f"{path}.{key}")
            for key, entry in mapping.items()}


def _sorted_pairs(mapping: Mapping[str, Any]) -> tuple:
    return tuple(sorted(mapping.items()))


# ---------------------------------------------------------------------------
# Device registry hooks
# ---------------------------------------------------------------------------

def _known_devices() -> list[str]:
    from repro.devices import device_names

    return device_names()


def _check_device(name: Any, path: str, extra: Sequence[str] = ()) -> str:
    name = _as_str(name, path)
    known = _known_devices()
    if name not in known and name not in extra:
        raise ConfigError(path, f"unknown device {name!r} "
                                f"(known: {', '.join(sorted([*known, *extra]))})")
    return name


def _check_device_params(params: Mapping[str, Any], device: str,
                         path: str) -> None:
    """Validate override keys against the family's profile fields."""
    from repro.devices import profile_fields

    fields = profile_fields(device)
    if fields is None:
        return
    for key in params:
        if key not in fields:
            raise ConfigError(f"{path}.{key}",
                              f"not a profile field of {device!r} "
                              f"(known: {', '.join(sorted(fields))})")


# ---------------------------------------------------------------------------
# Topology documents
# ---------------------------------------------------------------------------

#: Meta keys tolerated on a *standalone* fleet document: they feed the
#: wrapper scenario built by :func:`scenario_for_document` (``run`` maps
#: to a :class:`~repro.cluster.FleetRunConfig`), not the topology itself.
_TOPOLOGY_META_KEYS = ("kind", "description", "tags", "run")

_GROUP_KEYS = ("name", "device", "count", "capacity_bytes", "device_params",
               "preload", "mode")
_TENANT_KEYS = ("name", "group", "workload")
_EDGE_KEYS = ("source", "target", "replication_factor")
_FAULT_KEYS = ("kind", "group", "at_us", "device", "repair_after_us", "spare")
_PROFILE_KEYS = ("device", "params")


def topology_to_document(topology, *, kind: Optional[str] = "fleet") -> dict:
    """The document form of a :class:`~repro.cluster.FleetTopology`.

    Defaults are omitted for readability; :func:`topology_from_document`
    reapplies them, so the round trip is exact.
    """
    from repro.cluster.faults import FaultPolicy
    from repro.cluster.topology import DEFAULT_EPOCH_US

    document: dict[str, Any] = {}
    if kind is not None:
        document["kind"] = kind
    document["name"] = topology.name
    groups = []
    for group in topology.groups:
        entry: dict[str, Any] = {"name": group.name, "device": group.device,
                                 "count": group.count}
        if group.capacity_bytes is not None:
            entry["capacity_bytes"] = group.capacity_bytes
        if group.device_params:
            entry["device_params"] = dict(group.device_params)
        if not group.preload:
            entry["preload"] = False
        if group.mode != "discrete":
            entry["mode"] = group.mode
        groups.append(entry)
    document["groups"] = groups
    if topology.tenants:
        document["tenants"] = [
            {"name": tenant.name, "group": tenant.group,
             "workload": _workload_to_document(tenant.workload_dict())}
            for tenant in topology.tenants]
    if topology.edges:
        document["edges"] = [edge.to_payload() for edge in topology.edges]
    if topology.faults:
        document["faults"] = [
            {key: value for key, value in event.to_payload().items()
             if value is not None}
            for event in topology.faults]
    if topology.fault_policy != FaultPolicy():
        document["fault_policy"] = topology.fault_policy.to_payload()
    if topology.epoch_us != DEFAULT_EPOCH_US:
        document["epoch_us"] = topology.epoch_us
    if topology.seed != 17:
        document["seed"] = topology.seed
    return document


def _workload_to_document(workload: Mapping[str, Any]) -> dict:
    document = dict(workload)
    params = document.get("pattern_params")
    if isinstance(params, (tuple, list)):
        document["pattern_params"] = dict(tuple(pair) for pair in params)
    return document


def _workload_from_document(value: Any, path: str) -> dict[str, Any]:
    workload = _as_mapping(value, path)
    normalised: dict[str, Any] = {}
    for key, entry in workload.items():
        key = _as_str(key, path)
        if key == "pattern_params":
            normalised[key] = _sorted_pairs(
                _scalar_mapping(entry, f"{path}.{key}"))
        else:
            normalised[key] = _as_scalar(entry, f"{path}.{key}")
    return normalised


def _expand_profiles(document: Mapping[str, Any], path: str) -> dict[str, dict]:
    """Validate the ``profiles`` section: named device-profile presets.

    A profile is load-time sugar -- groups referencing one are rewritten to
    the underlying registered family with the preset's ``params`` merged
    under their own ``device_params`` (the group wins key collisions).  The
    canonical topology therefore only ever names registered families, which
    keeps worker processes (which import the registry, not the document)
    able to build every device.
    """
    profiles: dict[str, dict] = {}
    section = _as_mapping(document.get("profiles", {}), f"{path}.profiles")
    for name, entry in section.items():
        name = _as_str(name, f"{path}.profiles")
        profile_path = f"{path}.profiles.{name}"
        entry = _as_mapping(entry, profile_path)
        _check_keys(entry, profile_path, _PROFILE_KEYS, required=("device",))
        device = _check_device(entry["device"], f"{profile_path}.device")
        params = _scalar_mapping(entry.get("params", {}),
                                 f"{profile_path}.params")
        _check_device_params(params, device, f"{profile_path}.params")
        profiles[name] = {"device": device, "params": params}
    return profiles


def topology_from_document(document: Any, *, path: str = "fleet"):
    """Build a validated :class:`~repro.cluster.FleetTopology` from a document."""
    from repro.cluster.faults import FaultEvent, FaultPolicy
    from repro.cluster.topology import (
        DEFAULT_EPOCH_US,
        FleetTopology,
        GROUP_MODES,
        DeviceGroup,
        ReplicationEdge,
        Tenant,
    )

    document = _as_mapping(document, path)
    _check_keys(document, path,
                [*_TOPOLOGY_META_KEYS, "name", "groups", "tenants", "edges",
                 "faults", "fault_policy", "epoch_us", "seed", "profiles"],
                required=("name", "groups"))
    if "kind" in document:
        _as_str(document["kind"], f"{path}.kind", choices=("fleet", "topology"))
    name = _as_str(document["name"], f"{path}.name")
    profiles = _expand_profiles(document, path)

    groups = []
    entries = _as_list(document["groups"], f"{path}.groups")
    if not entries:
        raise ConfigError(f"{path}.groups", "expected at least one group")
    for index, entry in enumerate(entries):
        group_path = f"{path}.groups[{index}]"
        entry = _as_mapping(entry, group_path)
        _check_keys(entry, group_path, _GROUP_KEYS,
                    required=("name", "device", "count"))
        device = _check_device(entry["device"], f"{group_path}.device",
                               extra=tuple(profiles))
        params = _scalar_mapping(entry.get("device_params", {}),
                                 f"{group_path}.device_params")
        if device in profiles:
            preset = profiles[device]
            device = preset["device"]
            params = {**preset["params"], **params}
        _check_device_params(params, device, f"{group_path}.device_params")
        capacity = entry.get("capacity_bytes")
        if capacity is not None:
            capacity = _as_positive_int(capacity, f"{group_path}.capacity_bytes")
        fields = {
            "name": _as_str(entry["name"], f"{group_path}.name"),
            "device": device,
            "count": _as_positive_int(entry["count"], f"{group_path}.count"),
            "capacity_bytes": capacity,
            "device_params": _sorted_pairs(params),
            "preload": _as_bool(entry.get("preload", True),
                                f"{group_path}.preload"),
            "mode": _as_str(entry.get("mode", "discrete"),
                            f"{group_path}.mode", choices=GROUP_MODES),
        }
        try:
            groups.append(DeviceGroup(**fields))
        except ValueError as error:
            raise ConfigError(group_path, str(error)) from None

    tenants = []
    for index, entry in enumerate(_as_list(document.get("tenants", []),
                                           f"{path}.tenants")):
        tenant_path = f"{path}.tenants[{index}]"
        entry = _as_mapping(entry, tenant_path)
        _check_keys(entry, tenant_path, _TENANT_KEYS,
                    required=("name", "group", "workload"))
        tenants.append(Tenant(
            name=_as_str(entry["name"], f"{tenant_path}.name"),
            group=_as_str(entry["group"], f"{tenant_path}.group"),
            workload=_sorted_pairs(_workload_from_document(
                entry["workload"], f"{tenant_path}.workload")),
        ))

    edges = []
    for index, entry in enumerate(_as_list(document.get("edges", []),
                                           f"{path}.edges")):
        edge_path = f"{path}.edges[{index}]"
        entry = _as_mapping(entry, edge_path)
        _check_keys(entry, edge_path, _EDGE_KEYS, required=("source", "target"))
        try:
            edges.append(ReplicationEdge(
                source=_as_str(entry["source"], f"{edge_path}.source"),
                target=_as_str(entry["target"], f"{edge_path}.target"),
                replication_factor=_as_positive_int(
                    entry.get("replication_factor", 1),
                    f"{edge_path}.replication_factor"),
            ))
        except ConfigError:
            raise
        except ValueError as error:
            raise ConfigError(edge_path, str(error)) from None

    faults = []
    for index, entry in enumerate(_as_list(document.get("faults", []),
                                           f"{path}.faults")):
        fault_path = f"{path}.faults[{index}]"
        entry = _as_mapping(entry, fault_path)
        _check_keys(entry, fault_path, _FAULT_KEYS,
                    required=("kind", "group", "at_us"))
        device = entry.get("device")
        if device is not None:
            device = _as_int(device, f"{fault_path}.device", minimum=0)
        repair = entry.get("repair_after_us")
        if repair is not None:
            repair = _as_number(repair, f"{fault_path}.repair_after_us",
                                positive=True)
        spare = entry.get("spare")
        if spare is not None:
            spare = _as_str(spare, f"{fault_path}.spare")
        fields = {
            "kind": _as_str(entry["kind"], f"{fault_path}.kind"),
            "group": _as_str(entry["group"], f"{fault_path}.group"),
            "at_us": _as_number(entry["at_us"], f"{fault_path}.at_us",
                                minimum=0.0),
            "device": device,
            "repair_after_us": repair,
            "spare": spare,
        }
        try:
            faults.append(FaultEvent(**fields))
        except ValueError as error:
            raise ConfigError(fault_path, str(error)) from None

    policy_doc = document.get("fault_policy")
    if policy_doc is None:
        policy = FaultPolicy()
    else:
        import dataclasses

        policy_path = f"{path}.fault_policy"
        policy_doc = _as_mapping(policy_doc, policy_path)
        known = [field.name for field in dataclasses.fields(FaultPolicy)]
        _check_keys(policy_doc, policy_path, known)
        try:
            policy = FaultPolicy(**policy_doc)
        except (TypeError, ValueError) as error:
            raise ConfigError(policy_path, str(error)) from None

    epoch_us = _as_number(document.get("epoch_us", DEFAULT_EPOCH_US),
                          f"{path}.epoch_us", positive=True)
    seed = _as_int(document.get("seed", 17), f"{path}.seed")
    try:
        return FleetTopology(name=name, groups=tuple(groups),
                             tenants=tuple(tenants), edges=tuple(edges),
                             faults=tuple(faults), fault_policy=policy,
                             epoch_us=epoch_us, seed=seed)
    except ValueError as error:
        raise ConfigError(path, str(error)) from None


# ---------------------------------------------------------------------------
# Run-config documents (the ``run:`` block)
# ---------------------------------------------------------------------------

_RUN_CONFIG_KEYS = ("shards", "run_ahead", "epoch_us", "transport",
                    "spin_budget", "processes", "max_epochs")


def run_config_to_document(config) -> dict:
    """The document form of a :class:`~repro.cluster.FleetRunConfig`:
    non-default fields only, so the round trip is exact."""
    return dict(config.to_pairs())


def run_config_from_document(document: Any, *, path: str = "run"):
    """Build a validated :class:`~repro.cluster.FleetRunConfig` from the
    ``run:`` block of a fleet/scenario/cell document."""
    from repro.cluster.transport import TRANSPORTS, FleetRunConfig

    document = _as_mapping(document, path)
    _check_keys(document, path, _RUN_CONFIG_KEYS)
    fields: dict[str, Any] = {}
    for key, value in document.items():
        key_path = f"{path}.{key}"
        if key in ("shards", "run_ahead", "max_epochs"):
            fields[key] = _as_positive_int(value, key_path)
        elif key == "epoch_us":
            if value is not None:
                value = _as_number(value, key_path, positive=True)
            fields[key] = value
        elif key == "transport":
            fields[key] = _as_str(value, key_path, choices=TRANSPORTS)
        elif key == "spin_budget":
            fields[key] = _as_int(value, key_path, minimum=0)
        elif key == "processes":
            if value is not None:
                value = _as_bool(value, key_path)
            fields[key] = value
    try:
        return FleetRunConfig(**fields)
    except ValueError as error:
        raise ConfigError(path, str(error)) from None


# ---------------------------------------------------------------------------
# Cell documents
# ---------------------------------------------------------------------------

def _cell_fields() -> dict:
    import dataclasses

    from repro.experiments.sweep import CellSpec

    return {field.name: field for field in dataclasses.fields(CellSpec)}


#: Stream overrides may set any FioJob field plus the target device.
def _stream_override_fields() -> tuple[str, ...]:
    from repro.experiments.sweep import _JOB_FIELDS

    return (*_JOB_FIELDS, "device")


def _streams_from_document(value: Any, path: str) -> tuple:
    streams = _as_mapping(value, path)
    allowed = _stream_override_fields()
    normalised = []
    for name, overrides in streams.items():
        name = _as_str(name, path)
        stream_path = f"{path}.{name}"
        overrides = _as_mapping(overrides, stream_path)
        fields: dict[str, Any] = {}
        for key, entry in overrides.items():
            key = _as_str(key, stream_path)
            if key not in allowed:
                raise ConfigError(
                    f"{stream_path}.{key}",
                    f"not a stream override field "
                    f"(known: {', '.join(sorted(allowed))})")
            if key == "pattern_params":
                fields[key] = _sorted_pairs(
                    _scalar_mapping(entry, f"{stream_path}.{key}"))
            else:
                fields[key] = _as_scalar(entry, f"{stream_path}.{key}")
        normalised.append((name, _sorted_pairs(fields)))
    return tuple(sorted(normalised))


def _streams_to_document(streams: tuple) -> dict:
    document = {}
    for name, overrides in streams:
        fields = dict(overrides)
        params = fields.get("pattern_params")
        if isinstance(params, (tuple, list)):
            fields["pattern_params"] = dict(tuple(pair) for pair in params)
        document[name] = fields
    return document


def _faults_to_document(canonical: str) -> dict:
    from repro.cluster.faults import FaultPolicy

    spec = json.loads(canonical)
    document: dict[str, Any] = {
        "events": [{key: value for key, value in event.items()
                    if value is not None}
                   for event in spec.get("events", [])]}
    policy = spec.get("policy")
    if policy and policy != FaultPolicy().to_payload():
        document["policy"] = policy
    return document


def _faults_from_document(value: Any, path: str) -> str:
    from repro.cluster.faults import canonical_fault_spec, parse_fault_spec

    if isinstance(value, Mapping):
        _check_keys(value, path, ("events", "policy"))
    elif not isinstance(value, (list, tuple)):
        raise ConfigError(path, f"expected mapping or list, "
                                f"got {_type_name(value)}")
    try:
        events, policy = parse_fault_spec(
            dict(value) if isinstance(value, Mapping) else list(value))
    except (ValueError, TypeError, KeyError) as error:
        raise ConfigError(path, f"bad fault spec: {error}") from None
    return canonical_fault_spec(events, policy)


def cell_to_document(cell, *, kind: Optional[str] = "cell") -> dict:
    """The document form of a :class:`~repro.experiments.sweep.CellSpec`."""
    import dataclasses

    from repro.cluster import FleetTopology

    document: dict[str, Any] = {}
    if kind is not None:
        document["kind"] = kind
    for field in dataclasses.fields(type(cell)):
        value = getattr(cell, field.name)
        if field.name != "device" and value == field.default:
            continue
        if field.name in ("pattern_params", "device_params", "labels"):
            document[field.name] = dict(value)
        elif field.name == "streams":
            document[field.name] = _streams_to_document(value)
        elif field.name == "fleet":
            document[field.name] = topology_to_document(
                FleetTopology.from_json(value), kind=None)
        elif field.name == "faults":
            document[field.name] = _faults_to_document(value)
        elif field.name == "fleet_run":
            document[field.name] = dict(value)
        else:
            document[field.name] = value
    return document


def cell_from_document(document: Any, *, path: str = "cell"):
    """Build a validated :class:`~repro.experiments.sweep.CellSpec`."""
    from repro.experiments.sweep import CellSpec

    document = _as_mapping(document, path)
    fields_by_name = _cell_fields()
    _check_keys(document, path, ["kind", *fields_by_name])
    if "kind" in document:
        _as_str(document["kind"], f"{path}.kind", choices=("cell",))
        document.pop("kind")
    if "device" not in document and "fleet" not in document:
        raise ConfigError(path, "missing required key 'device'")

    fields: dict[str, Any] = {}
    for key, value in document.items():
        key_path = f"{path}.{key}"
        if key in ("pattern_params", "device_params"):
            fields[key] = _sorted_pairs(_scalar_mapping(value, key_path))
        elif key == "labels":
            fields[key] = _sorted_pairs(_scalar_mapping(value, key_path))
        elif key == "streams":
            fields[key] = _streams_from_document(value, key_path)
        elif key == "fleet":
            fields[key] = topology_from_document(value, path=key_path).canonical()
        elif key == "faults":
            fields[key] = _faults_from_document(value, key_path)
        elif key == "fleet_run":
            fields[key] = run_config_from_document(
                value, path=key_path).to_pairs()
        elif key in ("io_size", "queue_depth"):
            fields[key] = _as_positive_int(value, key_path)
        elif key in ("io_count", "total_bytes",
                     "ssd_capacity_bytes", "essd_capacity_bytes",
                     "fleet_shards"):
            if value is not None:
                value = _as_positive_int(value, key_path)
            fields[key] = value
        elif key == "write_ratio":
            if value is not None:
                value = _as_number(value, key_path, minimum=0.0)
            fields[key] = value
        elif key == "runtime_us":
            if value is not None:
                value = _as_number(value, key_path, positive=True)
            fields[key] = value
        elif key == "ramp_ios":
            fields[key] = _as_int(value, key_path, minimum=0)
        elif key == "think_time_us":
            fields[key] = _as_number(value, key_path, minimum=0.0)
        elif key == "seed":
            fields[key] = _as_int(value, key_path)
        elif key in ("preload", "trace"):
            fields[key] = _as_bool(value, key_path)
        elif key == "series_bin_us":
            if value is not None and value != "auto":
                value = _as_number(value, key_path, positive=True)
            fields[key] = value
        elif key == "pattern":
            fields[key] = _as_str(value, key_path)
        elif key == "device":
            fields[key] = _as_str(value, key_path)
        else:  # pragma: no cover - _check_keys rejects unknown keys
            fields[key] = value
    if "fleet" in fields:
        fields.setdefault("device", "fleet")
    else:
        _check_device(fields["device"], f"{path}.device")
    return CellSpec(**fields)


# ---------------------------------------------------------------------------
# Scenario documents
# ---------------------------------------------------------------------------

_SCENARIO_KEYS = ("kind", "name", "description", "devices", "base", "grid",
                  "streams", "fleet", "run", "seed", "seed_mode", "tags")


def _base_fields() -> tuple[str, ...]:
    """Keys a scenario ``base`` mapping may set: every cell field that is
    not reserved for the expansion machinery, plus the two params
    mappings."""
    reserved = ("labels", "streams", "fleet", "fleet_run")
    return tuple(name for name in _cell_fields() if name not in reserved)


def _base_from_document(value: Any, path: str) -> dict[str, Any]:
    base = _as_mapping(value, path)
    allowed = _base_fields()
    fields: dict[str, Any] = {}
    for key, entry in base.items():
        key = _as_str(key, path)
        if key not in allowed:
            raise ConfigError(f"{path}.{key}",
                              f"not a cell field "
                              f"(known: {', '.join(sorted(allowed))})")
        if key in ("pattern_params", "device_params"):
            fields[key] = _sorted_pairs(_scalar_mapping(entry, f"{path}.{key}"))
        else:
            fields[key] = _as_scalar(entry, f"{path}.{key}")
    return fields


def scenario_to_document(spec) -> dict:
    """The document form of a :class:`~repro.experiments.scenarios.ScenarioSpec`.

    Scenarios defined with a ``cell_builder`` (the paper figures) have no
    declarative form and raise :class:`ConfigError`.
    """
    from repro.cluster import FleetTopology

    if spec.cell_builder is not None:
        raise ConfigError(
            "scenario", f"scenario {spec.name!r} is defined with a "
                        f"cell_builder and has no document form")
    document: dict[str, Any] = {
        "kind": "scenario",
        "name": spec.name,
        "description": spec.description,
        "devices": list(spec.devices),
    }
    if spec.base:
        base = dict(spec.base)
        for key in ("pattern_params", "device_params"):
            if isinstance(base.get(key), (tuple, list)):
                base[key] = dict(tuple(pair) for pair in base[key])
        document["base"] = base
    if spec.grid:
        document["grid"] = {axis: list(values) for axis, values in spec.grid}
    if spec.streams:
        document["streams"] = _streams_to_document(spec.streams)
    if spec.fleet is not None:
        document["fleet"] = topology_to_document(
            FleetTopology.from_json(spec.fleet), kind=None)
    if spec.fleet_run:
        document["run"] = dict(spec.fleet_run)
    if spec.seed != 17:
        document["seed"] = spec.seed
    if spec.seed_mode != "fixed":
        document["seed_mode"] = spec.seed_mode
    if spec.tags:
        document["tags"] = list(spec.tags)
    return document


def scenario_from_document(document: Any, *, path: str = "scenario"):
    """Build a validated :class:`~repro.experiments.scenarios.ScenarioSpec`."""
    from repro.experiments.scenarios import scenario

    document = _as_mapping(document, path)
    _check_keys(document, path, _SCENARIO_KEYS, required=("name",))
    if "kind" in document:
        _as_str(document["kind"], f"{path}.kind", choices=("scenario",))
    name = _as_str(document["name"], f"{path}.name")
    description = document.get("description", "")
    if description:
        description = _as_str(description, f"{path}.description")

    fleet = document.get("fleet")
    if fleet is not None:
        fleet = topology_from_document(fleet, path=f"{path}.fleet")

    run = document.get("run")
    if run is not None:
        if fleet is None:
            raise ConfigError(f"{path}.run",
                              "a run block requires a fleet topology")
        run = run_config_from_document(run, path=f"{path}.run")

    if "devices" in document:
        devices = [_as_str(entry, f"{path}.devices[{index}]")
                   for index, entry in enumerate(
                       _as_list(document["devices"], f"{path}.devices"))]
        if not devices:
            raise ConfigError(f"{path}.devices",
                              "expected at least one device")
        if fleet is None:
            for index, device in enumerate(devices):
                _check_device(device, f"{path}.devices[{index}]")
    elif fleet is not None:
        devices = ["fleet"]
    else:
        raise ConfigError(path, "missing required key 'devices' "
                                "(or an inline 'fleet' topology)")

    base = _base_from_document(document.get("base", {}), f"{path}.base")

    grid: dict[str, Sequence[Any]] = {}
    for axis, values in _as_mapping(document.get("grid", {}),
                                    f"{path}.grid").items():
        axis = _as_str(axis, f"{path}.grid")
        axis_path = f"{path}.grid.{axis}"
        values = _as_list(values, axis_path)
        if not values:
            raise ConfigError(axis_path, "expected at least one value")
        grid[axis] = [_as_scalar(value, f"{axis_path}[{index}]")
                      for index, value in enumerate(values)]

    streams = _streams_from_document(document.get("streams", {}),
                                     f"{path}.streams")

    seed = _as_int(document.get("seed", 17), f"{path}.seed")
    seed_mode = _as_str(document.get("seed_mode", "fixed"),
                        f"{path}.seed_mode", choices=("fixed", "derived"))
    tags = [_as_str(entry, f"{path}.tags[{index}]")
            for index, entry in enumerate(
                _as_list(document.get("tags", []), f"{path}.tags"))]

    try:
        return scenario(
            name=name, description=description, devices=devices, base=base,
            grid=grid,
            streams={stream: dict(overrides) for stream, overrides in streams},
            fleet=fleet, run=run, seed=seed, seed_mode=seed_mode, tags=tags)
    except ValueError as error:
        raise ConfigError(path, str(error)) from None


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def document_kind(document: Any, *, path: str = "document") -> str:
    """The normalized kind of a standalone document.

    An explicit ``kind`` key wins; otherwise the kind is inferred from the
    structure (``groups`` -> fleet, ``devices``/``base``/``grid`` ->
    scenario, ``device`` -> cell).
    """
    document = _as_mapping(document, path)
    kind = document.get("kind")
    if kind is not None:
        kind = _as_str(kind, f"{path}.kind",
                       choices=("scenario", "fleet", "topology", "cell"))
        return "fleet" if kind == "topology" else kind
    if "groups" in document:
        return "fleet"
    if "devices" in document or "base" in document or "grid" in document:
        return "scenario"
    if "device" in document:
        return "cell"
    raise ConfigError(path, "cannot infer document kind "
                            "(add kind: scenario | fleet | cell)")


def scenario_for_document(document: Any, *, path: str = "document"):
    """A runnable :class:`ScenarioSpec` for a scenario *or* fleet document.

    A bare fleet document registers as a single-cell fleet scenario named
    after the topology (its optional top-level ``description`` and ``tags``
    feed the wrapper), so user fleets appear beside the built-ins in
    ``list`` / ``run`` / ``fleet`` with no scenario boilerplate.
    """
    from repro.experiments.scenarios import scenario

    kind = document_kind(document, path=path)
    if kind == "scenario":
        return scenario_from_document(document, path=path)
    if kind == "cell":
        raise ConfigError(path, "a cell document is not runnable as a "
                                "scenario (wrap it in kind: scenario)")
    topology = topology_from_document(document, path=path)
    description = document.get("description") or \
        f"user fleet {topology.name!r} (config document)"
    description = _as_str(description, f"{path}.description")
    run = document.get("run")
    if run is not None:
        run = run_config_from_document(run, path=f"{path}.run")
    tags = [_as_str(entry, f"{path}.tags[{index}]")
            for index, entry in enumerate(
                _as_list(document.get("tags", []), f"{path}.tags"))]
    if "fleet" not in tags:
        tags.append("fleet")
    if "config" not in tags:
        tags.append("config")
    return scenario(name=topology.name, description=description,
                    devices=("fleet",), fleet=topology, run=run, tags=tags)
