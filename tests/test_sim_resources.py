"""Tests for Resource, Store, and TokenBucket, including property-based checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store, TokenBucket


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_limits_concurrency():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    active = []
    peak = []

    def user(hold):
        yield resource.request()
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(hold)
        active.pop()
        resource.release()

    for _ in range(6):
        sim.process(user(10))
    sim.run()
    assert max(peak) == 2
    assert resource.users == 0


def test_resource_fifo_ordering():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def user(label):
        yield resource.request()
        order.append(label)
        yield sim.timeout(1)
        resource.release()

    for label in "abcde":
        sim.process(user(label))
    sim.run()
    assert order == list("abcde")


def test_resource_release_without_request_fails():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_queue_length_tracking():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    lengths = []

    def holder():
        yield resource.request()
        yield sim.timeout(10)
        lengths.append(resource.queue_length)
        resource.release()

    def waiter():
        yield resource.request()
        resource.release()

    sim.process(holder())
    sim.process(waiter())
    sim.process(waiter())
    sim.run()
    assert lengths == [2]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_delivery():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in range(5):
            yield store.put(item)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        item = yield store.get()
        times.append((sim.now, item))

    def producer():
        yield sim.timeout(25)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [(25.0, "late")]


def test_store_capacity_blocks_producer():
    sim = Simulator()
    store = Store(sim, capacity=1)
    progress = []

    def producer():
        yield store.put("a")
        progress.append(("a", sim.now))
        yield store.put("b")
        progress.append(("b", sim.now))

    def consumer():
        yield sim.timeout(40)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert progress[0] == ("a", 0.0)
    assert progress[1][1] == 40.0


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_items_snapshot():
    sim = Simulator()
    store = Store(sim)
    def producer():
        yield store.put(1)
        yield store.put(2)
    sim.process(producer())
    sim.run()
    assert store.items == (1, 2)
    assert len(store) == 2


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

def test_token_bucket_burst_then_rate_limited():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, capacity=100, initial=100)
    times = []

    def consumer():
        for _ in range(3):
            yield bucket.consume(100)
            times.append(sim.now)

    sim.process(consumer())
    sim.run()
    # First grant is free (full bucket); each further 100 tokens takes 10 us.
    assert times[0] == 0.0
    assert times[1] == pytest.approx(10.0)
    assert times[2] == pytest.approx(20.0)


def test_token_bucket_fifo_no_starvation():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, capacity=50, initial=0)
    order = []

    def consumer(label, amount):
        yield bucket.consume(amount)
        order.append(label)

    sim.process(consumer("big", 50))
    sim.process(consumer("small", 1))
    sim.run()
    assert order == ["big", "small"]


def test_token_bucket_zero_amount_is_free():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, capacity=10, initial=0)
    done = []

    def consumer():
        yield bucket.consume(0)
        done.append(sim.now)

    sim.process(consumer())
    sim.run()
    assert done == [0.0]


def test_token_bucket_rejects_oversized_request():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, capacity=10)
    with pytest.raises(ValueError):
        bucket.consume(11)


def test_token_bucket_infinite_rate_never_blocks():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=math.inf, capacity=10)
    done = []

    def consumer():
        for _ in range(5):
            yield bucket.consume(10)
        done.append(sim.now)

    sim.process(consumer())
    sim.run()
    assert done == [0.0]


def test_token_bucket_set_rate_applies_to_future_grants():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, capacity=10, initial=0)
    times = []

    def consumer():
        yield bucket.consume(10)
        times.append(sim.now)
        bucket.set_rate(1.0)
        yield bucket.consume(10)
        times.append(sim.now)

    sim.process(consumer())
    sim.run()
    assert times[0] == pytest.approx(1.0)
    assert times[1] == pytest.approx(11.0)


def test_token_bucket_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=0)
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=1.0, capacity=0)
    bucket = TokenBucket(sim, rate=1.0, capacity=10)
    with pytest.raises(ValueError):
        bucket.consume(-1)
    with pytest.raises(ValueError):
        bucket.set_rate(0)


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=0.5, max_value=100.0),
    amounts=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=15),
)
def test_token_bucket_long_run_rate_is_respected(rate, amounts):
    """Property: total grant time is at least (total - capacity) / rate."""
    sim = Simulator()
    capacity = 50
    bucket = TokenBucket(sim, rate=rate, capacity=capacity, initial=capacity)
    finish = []

    def consumer():
        for amount in amounts:
            yield bucket.consume(amount)
        finish.append(sim.now)

    sim.process(consumer())
    sim.run()
    total = sum(amounts)
    lower_bound = max(0.0, (total - capacity) / rate)
    assert finish[0] >= lower_bound - 1e-6


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    holds=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=12),
)
def test_resource_never_exceeds_capacity(capacity, holds):
    """Property: concurrent holders never exceed the configured capacity."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    active = {"count": 0, "peak": 0}

    def user(hold):
        yield resource.request()
        active["count"] += 1
        active["peak"] = max(active["peak"], active["count"])
        yield sim.timeout(hold)
        active["count"] -= 1
        resource.release()

    for hold in holds:
        sim.process(user(hold))
    sim.run()
    assert active["peak"] <= capacity
    assert resource.users == 0
