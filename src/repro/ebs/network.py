"""Datacenter network between the compute cluster and the storage cluster.

The model is intentionally simple: every message pays a fixed one-way
latency plus a per-flow serialization time proportional to its payload, plus
a small exponential jitter.  The network itself is not a shared bottleneck
(datacenter fabrics are heavily over-provisioned relative to a single
volume); the volume-level bottlenecks live in the QoS budget and the
storage nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ebs.config import NetworkProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@dataclass
class NetworkStats:
    """Counters for traffic crossing the compute/storage boundary."""

    messages: int = 0
    bytes_carried: int = 0
    total_latency_us: float = 0.0

    @property
    def mean_latency_us(self) -> float:
        return self.total_latency_us / self.messages if self.messages else 0.0


class DatacenterNetwork:
    """Latency model for messages between the VM and storage nodes."""

    def __init__(self, sim: "Simulator", profile: NetworkProfile, seed: int = 0xD0C):
        self.sim = sim
        self.profile = profile
        self.stats = NetworkStats()
        self._rng = random.Random(seed)

    def one_way_delay(self, payload_bytes: int) -> float:
        """Sampled latency for a single one-way message carrying a payload."""
        profile = self.profile
        delay = profile.one_way_latency_us + payload_bytes / profile.flow_bytes_per_us
        if profile.jitter_mean_us > 0:
            delay += self._rng.expovariate(1.0 / profile.jitter_mean_us)
        return delay

    def transfer_delay(self, payload_bytes: int) -> float:
        """Sampled, stats-accounted delay for one one-way message.

        The flattened form of :meth:`transfer`: hot callers yield a single
        ``sim.timeout(network.transfer_delay(n))`` instead of trampolining
        through a sub-generator.  Draws and counters are identical.
        """
        delay = self.one_way_delay(payload_bytes)
        stats = self.stats
        stats.messages += 1
        stats.bytes_carried += payload_bytes
        stats.total_latency_us += delay
        return delay

    def transfer(self, payload_bytes: int):
        """Generator: occupy simulated time for one one-way message."""
        yield self.sim.timeout(self.transfer_delay(payload_bytes))

    def round_trip(self, request_bytes: int, response_bytes: int):
        """Generator: a request message followed by its response."""
        yield from self.transfer(request_bytes)
        yield from self.transfer(response_bytes)
