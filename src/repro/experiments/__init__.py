"""Reproduction of the paper's evaluation section: Table I and Figures 2-5.

Each module regenerates one artifact; :func:`run_all` runs everything and
renders a combined text report.  See DESIGN.md for the per-experiment index
and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.experiments.common import DeviceKind, ExperimentScale, build_device, measure_cell
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.runner import EvaluationReport, run_all
from repro.experiments.table1 import render_table1, run_table1

__all__ = [
    "DeviceKind",
    "ExperimentScale",
    "build_device",
    "measure_cell",
    "run_table1",
    "render_table1",
    "run_figure2",
    "Figure2Result",
    "run_figure3",
    "Figure3Result",
    "run_figure4",
    "Figure4Result",
    "run_figure5",
    "Figure5Result",
    "run_all",
    "EvaluationReport",
]
