"""Benchmark: regenerate Table I (device configurations)."""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, render_table1, run_table1


def test_bench_table1(benchmark):
    rows = run_once(benchmark, run_table1, ExperimentScale.default())
    assert len(rows) == 3
    print("\n" + render_table1(rows))
