"""The discrete-event simulation loop.

:class:`Simulator` keeps a heap of ``(time, priority, sequence, event)``
entries and processes them in order.  Simulation time is a float in
**microseconds** by convention throughout the repository.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Process, SimulationError, Timeout

#: Priority used for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for "urgent" bookkeeping events processed before normal ones.
PRIORITY_URGENT = 0


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> results = []
    >>> def producer():
    ...     yield sim.timeout(5)
    ...     results.append(sim.now)
    >>> _ = sim.process(producer())
    >>> sim.run()
    >>> results
    [5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Number of events still sitting in the schedule."""
        return len(self._queue)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        if not self._queue:
            raise EmptySchedule()
        event_time, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = event_time
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until the schedule is exhausted.
            * a float -- run until simulation time reaches that value.
            * an :class:`Event` -- run until that event has been processed and
              return its value.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError(
                "run() ran out of events before the 'until' event triggered")
        if stop_time is not None:
            self._now = max(self._now, stop_time)
        return None

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Run until the schedule is empty; return the number of events processed.

        ``max_events`` acts as a safety valve against runaway simulations.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            processed += 1
        return processed
