"""I/O request types shared by all device models."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bytes in a kibibyte / mebibyte / gibibyte, used throughout the repo.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_request_counter = itertools.count()


class IOKind(enum.Enum):
    """The kind of a block I/O request."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    TRIM = "trim"

    @property
    def is_read(self) -> bool:
        return self is IOKind.READ

    @property
    def is_write(self) -> bool:
        return self is IOKind.WRITE


@dataclass
class IORequest:
    """A single block I/O request.

    Offsets and sizes are in bytes.  ``submit_time`` and ``complete_time``
    are filled in by the device (simulation microseconds), so a completed
    request carries its own latency.
    """

    kind: IOKind
    offset: int
    size: int
    request_id: int = field(default_factory=lambda: next(_request_counter))
    submit_time: Optional[float] = None
    complete_time: Optional[float] = None
    #: Free-form annotation (e.g. the workload stream that issued it).
    tag: Any = None
    #: Set by :class:`repro.cluster.faults.FaultInjector` when the request
    #: was shed (refused fast) instead of served -- downstream hooks such
    #: as replication mirroring skip shed writes.
    shed: bool = False

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset: {self.offset}")
        if self.size < 0:
            raise ValueError(f"negative size: {self.size}")
        if self.kind in (IOKind.READ, IOKind.WRITE) and self.size == 0:
            raise ValueError("read/write requests must have a positive size")

    @property
    def end_offset(self) -> int:
        """First byte past the end of the request."""
        return self.offset + self.size

    @property
    def latency(self) -> float:
        """Completion latency in microseconds.

        Only valid once the device has completed the request.
        """
        if self.submit_time is None or self.complete_time is None:
            raise ValueError("request has not completed yet")
        return self.complete_time - self.submit_time

    @property
    def is_completed(self) -> bool:
        return self.complete_time is not None

    def overlaps(self, other: "IORequest") -> bool:
        """Whether the byte ranges of two requests intersect."""
        return self.offset < other.end_offset and other.offset < self.end_offset

    @classmethod
    def read(cls, offset: int, size: int, **kwargs: Any) -> "IORequest":
        """Convenience constructor for a read request."""
        return cls(IOKind.READ, offset, size, **kwargs)

    @classmethod
    def write(cls, offset: int, size: int, **kwargs: Any) -> "IORequest":
        """Convenience constructor for a write request."""
        return cls(IOKind.WRITE, offset, size, **kwargs)

    @classmethod
    def flush(cls, **kwargs: Any) -> "IORequest":
        """Convenience constructor for a flush (cache barrier) request."""
        return cls(IOKind.FLUSH, 0, 0, **kwargs)
