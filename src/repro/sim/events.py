"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  An
event starts *untriggered*; calling :meth:`Event.succeed` (or
:meth:`Event.fail`) schedules it on the simulator's event heap, and once the
simulator pops it the event becomes *processed* and all registered callbacks
run.  A :class:`Process` wraps a Python generator: the generator yields
events, and the process resumes each time the yielded event is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another process.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes may wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered: bool = False
        self._processed: bool = False
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled (succeeded or failed)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the simulator has already run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or the exception it failed with)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not re-raise it."""
        self._defused = True

    # -- internal ---------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event: it triggers when the generator returns
    (successfully, carrying the return value) or raises (failed, carrying the
    exception).  Other processes can therefore ``yield`` a process to join it.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any]):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            try:
                waiting_on.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._waiting_on = None
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._resume_with_interrupt(cause))
        interrupt_event.succeed()

    def _resume_with_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def callback(_event: Event) -> None:
            self._step(throw=Interrupt(cause))

        return callback

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(send=event.value)
        else:
            event.defuse()
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate through the event
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            self._step(throw=SimulationError(
                f"process yielded a non-event value: {target!r}"))
            return
        if target.processed:
            # The event already ran its callbacks; resume immediately with
            # its value on the next simulator step.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                target.defuse()
                relay.fail(target.value)
                relay.defuse()
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)


class _Condition(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if not isinstance(event, Event):
                raise TypeError(f"condition requires events, got {event!r}")
        unprocessed = [event for event in self.events if not event.processed]
        self._pending = len(unprocessed)
        for event in unprocessed:
            event.callbacks.append(self._observe)
        self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> dict[Event, Any]:
        return {event: event.value for event in self.events if event.processed and event.ok}


class AllOf(_Condition):
    """Triggers when *all* constituent events have triggered successfully."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self._triggered and self._pending == 0:
            self.succeed(self._collect_values())

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending <= 0:
            remaining = [e for e in self.events if not e.processed]
            if not remaining:
                self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Triggers as soon as *any* constituent event triggers successfully."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self._triggered:
            for event in self.events:
                if event.processed and event.ok:
                    self.succeed(self._collect_values())
                    return
            if not self.events:
                self.succeed({})

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(self._collect_values())
