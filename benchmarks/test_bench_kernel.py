"""Kernel microbenchmark: events/sec and request round-trips/sec.

Measures the fast-path kernel (``Simulator(fast_path=True)``, the default)
against the legacy heap-only kernel (``fast_path=False``, faithful to the
pre-refactor scheduler) on four workloads:

* ``immediate`` -- resource ping-pong plus zero-delay timeouts: pure
  immediately-succeeding bookkeeping events, the fast path's target domain.
* ``mixed`` -- the device-model shape: grants, zero-delay relays, and
  non-zero service timeouts interleaved.
* ``timer`` -- pure non-zero timeouts: the timer wheel's target domain
  (same-deadline timeouts land in O(1) wheel slots instead of paying a
  heap push each).
* ``roundtrip`` -- full ``IORequest`` round trips through a
  :class:`LoopbackDevice` behind the FIO runner: the whole submission path.
  The fast side runs the flattened hot path (pooled submission processes,
  flattened device pipeline, hoisted worker loop); the legacy side runs
  the **pre-refactor frames** -- the original ``_complete``/``_serve``
  trampoline, the double-dispatch pattern calls, and the per-field stop
  checks, frame for frame -- so the ratio measures exactly what the
  flattening removed.  Both sides complete identical requests at
  identical simulated times (gated by the trace-identity tests).

Results (including the fast/legacy speedup per workload) are written to
``BENCH_kernel.json`` at the repository root, and a human-readable
per-shape trajectory table to ``BENCH_kernel_table.md``.  The in-test
floors below are sized for noisy CI machines; the committed baselines
under ``benchmarks/baselines/`` are what ``benchmarks/compare_bench.py``
gates against (>10% regression fails), so the recorded >=2.5x mixed/timer
and >=2x roundtrip speedups are the numbers future PRs are held to.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.devices import LoopbackDevice
from repro.sim import Resource, Simulator
from repro.workload.fio import FioJob, run_job

_REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = _REPO_ROOT / "BENCH_kernel.json"
TABLE = _REPO_ROOT / "BENCH_kernel_table.md"

#: Timing repetitions per (workload, kernel); fast/legacy runs interleave
#: and the best of each is recorded, so host-speed drift during the
#: benchmark hits both kernels instead of skewing the ratio.  Five
#: repetitions keep the best-of ratio stable enough for the 10%
#: compare_bench regression band even on noisy CI runners.
REPEATS = 5


def _one_rate(build, fast_path: bool) -> float:
    sim = Simulator(fast_path=fast_path)
    build(sim)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return sim.scheduled_events / elapsed


def _events_per_sec(build) -> tuple[float, float]:
    """Best (fast, legacy) events/sec over interleaved repetitions."""
    fast = legacy = 0.0
    for _ in range(REPEATS):
        fast = max(fast, _one_rate(build, fast_path=True))
        legacy = max(legacy, _one_rate(build, fast_path=False))
    return fast, legacy


def _build_immediate(sim: Simulator, pairs: int = 25, iters: int = 800) -> None:
    """Resource handoff ping-pong: every event is immediately succeeding."""
    for _ in range(pairs):
        resource = Resource(sim, capacity=1)

        def player(resource=resource):
            for _ in range(iters):
                yield resource.request()
                resource.release()
                yield sim.timeout(0)

        sim.process(player())
        sim.process(player())


def _build_mixed(sim: Simulator, workers: int = 50, iters: int = 400) -> None:
    """Grants + zero-delay relays + non-zero service timeouts (device shape)."""
    resource = Resource(sim, capacity=4)

    def worker():
        for _ in range(iters):
            yield resource.request()
            yield sim.timeout(0)
            resource.release()
            yield sim.timeout(1.0)

    for _ in range(workers):
        sim.process(worker())


def _build_timer(sim: Simulator, workers: int = 100, iters: int = 300) -> None:
    """Pure timer wheel: non-zero delays, heap in both kernels."""
    def worker(delay):
        for _ in range(iters):
            yield sim.timeout(delay)

    for index in range(workers):
        sim.process(worker(1.0 + (index % 7) * 0.5))


def _one_roundtrip_rate(fast_path: bool, io_count: int) -> float:
    sim = Simulator(fast_path=fast_path)
    device = LoopbackDevice(sim, capacity_bytes=1 << 28,
                            service_time_us=2.0, service_slots=4)
    job = FioJob(pattern="randread", io_size=4096, queue_depth=8,
                 io_count=io_count)
    started = time.perf_counter()
    result = run_job(sim, device, job)
    elapsed = time.perf_counter() - started
    assert result.ios_completed == io_count
    return io_count / elapsed


def _roundtrips_per_sec(io_count: int = 12000) -> tuple[float, float]:
    fast = legacy = 0.0
    for _ in range(REPEATS):
        fast = max(fast, _one_roundtrip_rate(True, io_count))
        legacy = max(legacy, _one_roundtrip_rate(False, io_count))
    return fast, legacy


def _baseline_payload() -> dict:
    """The committed per-interpreter baseline artifact (empty if missing)."""
    from benchmarks import compare_bench
    directory = compare_bench.resolve_baseline_dir(compare_bench.BASELINE_DIR)
    return compare_bench.load_artifact(directory, ARTIFACT.name) or {}


def _render_table(payload: dict, baseline: dict) -> str:
    """Per-shape + roundtrip trajectory table (current vs committed
    baseline), the kernel counterpart of ``BENCH_macro_table.md``."""
    def fmt_base(value) -> str:
        return f"{value:.2f}x" if isinstance(value, (int, float)) else "-"

    lines = [
        "# Kernel fast-path speedups",
        "",
        "Fast (flattened hot path) vs legacy (pre-refactor frames),",
        "best-of interleaved runs on this host.  `baseline` is the",
        "committed per-interpreter speedup `benchmarks/compare_bench.py`",
        "gates at the 10% band.",
        "",
        "| workload | fast /s | legacy /s | speedup | baseline |",
        "|---|---|---|---|---|",
    ]
    base_events = baseline.get("events_per_sec", {})
    for name, row in sorted(payload["events_per_sec"].items()):
        lines.append(
            f"| {name} | {row['fast_events_per_sec']:,} "
            f"| {row['legacy_events_per_sec']:,} "
            f"| {row['speedup']:.2f}x "
            f"| {fmt_base(base_events.get(name, {}).get('speedup'))} |")
    roundtrip = payload["request_roundtrips_per_sec"]
    base_roundtrip = baseline.get("request_roundtrips_per_sec", {})
    lines.append(
        f"| roundtrip | {roundtrip['fast_roundtrips_per_sec']:,} "
        f"| {roundtrip['legacy_roundtrips_per_sec']:,} "
        f"| {roundtrip['speedup']:.2f}x "
        f"| {fmt_base(base_roundtrip.get('speedup'))} |")
    lines += [
        "",
        "Events/sec rows count scheduled kernel events; the roundtrip row",
        "counts completed `IORequest`s through the FIO runner and",
        "`LoopbackDevice` (4 kernel events per request).",
        "",
    ]
    return "\n".join(lines)


def test_kernel_fast_path_speedup_and_artifact():
    workloads = {
        "immediate": _build_immediate,
        "mixed": _build_mixed,
        "timer": _build_timer,
    }
    events = {}
    for name, build in workloads.items():
        fast, legacy = _events_per_sec(build)
        events[name] = {
            "fast_events_per_sec": round(fast),
            "legacy_events_per_sec": round(legacy),
            "speedup": round(fast / legacy, 3),
        }

    roundtrip_fast, roundtrip_legacy = _roundtrips_per_sec()
    roundtrips = {
        "fast_roundtrips_per_sec": round(roundtrip_fast),
        "legacy_roundtrips_per_sec": round(roundtrip_legacy),
        "speedup": round(roundtrip_fast / roundtrip_legacy, 3),
    }

    payload = {
        "benchmark": "kernel",
        "headline_speedup": events["immediate"]["speedup"],
        "events_per_sec": events,
        "request_roundtrips_per_sec": roundtrips,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    TABLE.write_text(_render_table(payload, _baseline_payload()))
    print(f"\nkernel microbenchmark -> {ARTIFACT.name} / {TABLE.name}")
    print(json.dumps(payload, indent=2, sort_keys=True))

    # The acceptance gate: >= 2x events/sec on immediately-succeeding
    # events.  The timer wheel lifts mixed/timer to ~2.5-2.7x and the
    # flattened hot path lifts the roundtrip to ~2.1x on an idle 3.11
    # host -- that trajectory is held by the committed baselines +
    # compare_bench.py (gated on the baseline's interpreter only); the
    # floors here run on *every* matrix interpreter, so they stay loose
    # enough to survive version-to-version ratio drift and only catch a
    # wholesale regression of the wheel/fast/flattened paths.
    assert events["immediate"]["speedup"] >= 2.0, payload
    assert events["mixed"]["speedup"] >= 1.5, payload
    assert events["timer"]["speedup"] >= 1.5, payload
    assert roundtrips["speedup"] >= 1.7, payload
