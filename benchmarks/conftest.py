"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's evaluation artifacts.  The
underlying experiments are deterministic simulations, so each benchmark runs
exactly once (``rounds=1``) -- the interesting output is the reproduced
table/figure, printed after the run, not the wall-clock statistics.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              iterations=1, rounds=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
