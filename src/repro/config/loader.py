"""Document parsing and the ``$REPRO_SCENARIO_PATH`` scenario scan.

YAML support is optional (the ``config`` extra: ``pip install repro[config]``).
When :mod:`pyyaml` is absent the loader falls back to JSON -- and since YAML
is a superset of JSON, a ``.yaml`` file that happens to contain JSON still
parses; only real YAML syntax produces a :class:`ConfigError` explaining
the missing extra.

``$REPRO_SCENARIO_PATH`` is an ``os.pathsep``-separated list of directories.
Every ``*.yaml`` / ``*.yml`` / ``*.json`` file in them is loaded as a
scenario or fleet document and registered beside the built-ins, so user
fleets appear in ``list`` / ``run`` / ``fleet`` / ``submit`` with no Python.
Files that fail to parse or validate are skipped with a collected warning
(one bad file must not hide every other scenario).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.config.schema import ConfigError, scenario_for_document

__all__ = [
    "SCENARIO_PATH_VAR",
    "SCENARIO_SUFFIXES",
    "load_document",
    "parse_document_text",
    "scan_scenario_dirs",
    "scenario_from_path",
    "yaml_available",
]

#: Environment variable naming the scenario-document directories.
SCENARIO_PATH_VAR = "REPRO_SCENARIO_PATH"

#: File suffixes the directory scan picks up.
SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")


def yaml_available() -> bool:
    """Whether :mod:`pyyaml` is importable (the optional ``config`` extra)."""
    try:
        import yaml  # noqa: F401
    except ImportError:
        return False
    return True


def parse_document_text(text: str, *, source: str = "document") -> Any:
    """Parse YAML/JSON ``text`` into plain data.

    With pyyaml installed everything goes through ``yaml.safe_load`` (which
    also parses JSON); without it, ``json.loads`` -- and the error for
    YAML-looking input names the missing extra.
    """
    if yaml_available():
        import yaml

        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ConfigError(source, f"invalid YAML: {error}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigError(
            source,
            f"invalid JSON: {error} (pyyaml is not installed -- "
            f"install the config extra, `pip install repro[config]`, "
            f"to load YAML documents)") from None


def load_document(path: Union[str, Path]) -> Any:
    """Load one document file; errors carry the file name as the path."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ConfigError(str(path), f"cannot read file: {error}") from None
    return parse_document_text(text, source=str(path))


def scenario_from_path(path: Union[str, Path]):
    """Load ``path`` and build the scenario (or wrapped fleet) it defines."""
    document = load_document(path)
    return scenario_for_document(document, path=str(path))


def _scan_dirs(raw: Optional[str]) -> list[Path]:
    if not raw:
        return []
    return [Path(entry) for entry in raw.split(os.pathsep) if entry]


def scan_scenario_dirs(
        dirs: Optional[Iterable[Union[str, Path]]] = None,
) -> tuple[list, list[tuple[str, str]]]:
    """Load every scenario document under ``dirs``.

    ``dirs`` defaults to ``$REPRO_SCENARIO_PATH``.  Returns
    ``(specs, warnings)`` where warnings are ``(file, message)`` pairs for
    files that failed to parse or validate; a missing directory is itself a
    warning, not an error.  Files are visited in sorted order per directory
    so later files win name collisions deterministically.
    """
    if dirs is None:
        dirs = _scan_dirs(os.environ.get(SCENARIO_PATH_VAR))
    specs = []
    warnings: list[tuple[str, str]] = []
    for directory in dirs:
        directory = Path(directory)
        if not directory.is_dir():
            warnings.append((str(directory), "not a directory"))
            continue
        files = sorted(entry for entry in directory.iterdir()
                       if entry.suffix in SCENARIO_SUFFIXES and entry.is_file())
        for entry in files:
            try:
                specs.append(scenario_from_path(entry))
            except ConfigError as error:
                warnings.append((str(entry), str(error)))
    return specs, warnings
