"""Page-level address mapping between logical blocks and flash slots.

A *slot* is one logical-block-sized (4 KiB) piece of a flash page.  The FTL
maps each logical block number (LBN) to a physical slot number (PSN); the
reverse map is kept so garbage collection can find the owner of every valid
slot in a victim block.
"""

from __future__ import annotations

import numpy as np

#: Sentinel for "unmapped" entries in the L2P / P2S tables.
UNMAPPED = -1


class PageMapping:
    """L2P / P2L tables plus per-block valid-slot counters."""

    def __init__(self, logical_blocks: int, total_slots: int, slots_per_block: int):
        if logical_blocks <= 0 or total_slots <= 0 or slots_per_block <= 0:
            raise ValueError("all sizes must be positive")
        if total_slots < logical_blocks:
            raise ValueError("physical slots must be >= logical blocks")
        if total_slots % slots_per_block != 0:
            raise ValueError("total_slots must be a multiple of slots_per_block")
        self.logical_blocks = logical_blocks
        self.total_slots = total_slots
        self.slots_per_block = slots_per_block
        self.num_blocks = total_slots // slots_per_block
        self._l2p = np.full(logical_blocks, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(total_slots, UNMAPPED, dtype=np.int64)
        self._valid_per_block = np.zeros(self.num_blocks, dtype=np.int64)
        self.mapped_blocks = 0

    # -- queries --------------------------------------------------------------
    def lookup(self, lbn: int) -> int:
        """Physical slot of ``lbn``, or :data:`UNMAPPED`."""
        return int(self._l2p[lbn])

    def reverse_lookup(self, psn: int) -> int:
        """Logical block stored in slot ``psn``, or :data:`UNMAPPED`."""
        return int(self._p2l[psn])

    def is_mapped(self, lbn: int) -> bool:
        return self._l2p[lbn] != UNMAPPED

    def valid_slots_in_block(self, block_id: int) -> int:
        """Number of valid slots in the given flash block."""
        return int(self._valid_per_block[block_id])

    def valid_lbns_in_block(self, block_id: int) -> list[int]:
        """Logical blocks whose current copy lives in ``block_id``."""
        start = block_id * self.slots_per_block
        end = start + self.slots_per_block
        segment = self._p2l[start:end]
        return [int(lbn) for lbn in segment[segment != UNMAPPED]]

    def valid_block_counts(self) -> np.ndarray:
        """Read-only view of the per-block valid-slot counters."""
        return self._valid_per_block

    @property
    def utilization(self) -> float:
        """Fraction of logical blocks currently mapped."""
        return self.mapped_blocks / self.logical_blocks

    def block_of_slot(self, psn: int) -> int:
        return psn // self.slots_per_block

    # -- updates --------------------------------------------------------------
    def map(self, lbn: int, psn: int) -> int:
        """Point ``lbn`` at ``psn``; returns the previous slot (or UNMAPPED).

        The previous slot, if any, is invalidated (its block's valid counter
        is decremented and its reverse mapping cleared).
        """
        if not 0 <= lbn < self.logical_blocks:
            raise ValueError(f"lbn {lbn} out of range")
        if not 0 <= psn < self.total_slots:
            raise ValueError(f"psn {psn} out of range")
        if self._p2l[psn] != UNMAPPED:
            raise ValueError(f"slot {psn} is already occupied by lbn {self._p2l[psn]}")
        previous = int(self._l2p[lbn])
        if previous != UNMAPPED:
            self._invalidate_slot(previous)
        else:
            self.mapped_blocks += 1
        self._l2p[lbn] = psn
        self._p2l[psn] = lbn
        self._valid_per_block[psn // self.slots_per_block] += 1
        return previous

    def unmap(self, lbn: int) -> int:
        """Remove the mapping of ``lbn`` (TRIM); returns the freed slot."""
        previous = int(self._l2p[lbn])
        if previous == UNMAPPED:
            return UNMAPPED
        self._invalidate_slot(previous)
        self._l2p[lbn] = UNMAPPED
        self.mapped_blocks -= 1
        return previous

    def _invalidate_slot(self, psn: int) -> None:
        block_id = psn // self.slots_per_block
        self._p2l[psn] = UNMAPPED
        self._valid_per_block[block_id] -= 1
        if self._valid_per_block[block_id] < 0:  # pragma: no cover - invariant guard
            raise AssertionError(f"negative valid count for block {block_id}")

    def clear_block(self, block_id: int) -> None:
        """Reset bookkeeping for an erased block.

        All slots in the block must already be invalid; erasing a block with
        valid data would lose it, so this raises instead.
        """
        if self._valid_per_block[block_id] != 0:
            raise ValueError(
                f"block {block_id} still holds {self._valid_per_block[block_id]} valid slots")
        start = block_id * self.slots_per_block
        self._p2l[start:start + self.slots_per_block] = UNMAPPED
