"""Figure 3: runtime throughput under a sustained random-write flood.

The paper writes 3x each device's capacity with random writes and plots
throughput over time: the local SSD collapses once ~90% of its capacity has
been written (device GC), ESSD-1 only degrades after ~2.55x its capacity
(provider flow limiting), and ESSD-2 sustains its budget throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import DeviceKind, ExperimentScale, format_table
from repro.experiments.scenarios import register, scenario
from repro.experiments.sweep import CellSpec, SweepRunner
from repro.host.io import KiB, MiB


@dataclass
class SustainedWriteResult:
    """Throughput-over-written-volume series for one device."""

    device: DeviceKind
    capacity_bytes: int
    #: (cumulative bytes written, GB/s over the bin) samples.
    series: list[tuple[int, float]] = field(default_factory=list)
    peak_gbps: float = 0.0
    final_gbps: float = 0.0
    write_amplification: Optional[float] = None
    flow_limited: bool = False

    def cliff_capacity_factor(self, drop_fraction: float = 0.5) -> Optional[float]:
        """Written-volume multiple of capacity at which throughput first drops
        below ``drop_fraction`` of its peak (``None`` = no such drop)."""
        if not self.series:
            return None
        threshold = self.peak_gbps * drop_fraction
        for written, gbps in self.series:
            if gbps < threshold and written > self.capacity_bytes // 4:
                return written / self.capacity_bytes
        return None

    def sustained_fraction(self) -> float:
        """Fraction of the written volume completed at >= 80% of peak throughput."""
        if not self.series or self.peak_gbps == 0:
            return 0.0
        good = sum(1 for _, gbps in self.series if gbps >= 0.8 * self.peak_gbps)
        return good / len(self.series)


@dataclass
class Figure3Result:
    """Results for all devices in the sustained-write experiment."""

    results: dict[DeviceKind, SustainedWriteResult] = field(default_factory=dict)
    capacity_factor: float = 3.0

    def render(self) -> str:
        headers = ["Device", "Peak GB/s", "Final GB/s", "Cliff (x capacity)",
                   "Sustained@80%", "WA", "Flow limited"]
        rows = []
        for device, result in self.results.items():
            cliff = result.cliff_capacity_factor()
            rows.append([
                device.value,
                f"{result.peak_gbps:.2f}",
                f"{result.final_gbps:.2f}",
                "none" if cliff is None else f"{cliff:.2f}x",
                f"{result.sustained_fraction():.0%}",
                "-" if result.write_amplification is None
                else f"{result.write_amplification:.2f}",
                "yes" if result.flow_limited else "no",
            ])
        return ("Sustained random write of "
                f"{self.capacity_factor:.1f}x capacity (Figure 3)\n"
                + format_table(headers, rows))


def figure3_cells(scale: Optional[ExperimentScale] = None,
                  capacity_factor: float = 3.0,
                  io_size: int = 128 * KiB,
                  queue_depth: int = 32,
                  bin_us: float = 100_000.0,
                  devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                   DeviceKind.ESSD2)) -> list[CellSpec]:
    """The sustained-write flood as one sweep cell per device.

    The series bin width adapts inside the runner (``bin_us`` is an upper
    bound): at small test scales the whole flood lasts a few hundred
    milliseconds, and fixed 100 ms bins would locate the GC cliff with
    +-0.6x-capacity resolution.
    """
    scale = scale or ExperimentScale.default()
    cells = []
    for kind in devices:
        capacity = scale.capacity_of(kind)
        cells.append(CellSpec(
            device=kind.value,
            pattern="randwrite",
            io_size=io_size,
            queue_depth=queue_depth,
            total_bytes=int(capacity_factor * capacity),
            seed=29,
            preload=False,
            ssd_capacity_bytes=scale.ssd_capacity_bytes,
            essd_capacity_bytes=scale.essd_capacity_bytes,
            series_bin_us=bin_us,
            labels=(("capacity_bytes", capacity), ("device", kind.value)),
        ))
    return cells


def run_figure3(scale: Optional[ExperimentScale] = None,
                capacity_factor: float = 3.0,
                io_size: int = 128 * KiB,
                queue_depth: int = 32,
                bin_us: float = 100_000.0,
                devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                 DeviceKind.ESSD2),
                runner: Optional[SweepRunner] = None) -> Figure3Result:
    """Run the sustained random-write experiment through the sweep runner."""
    cells = figure3_cells(scale, capacity_factor, io_size, queue_depth, bin_us,
                          devices)
    sweep = (runner or SweepRunner()).run_cells("figure3", cells)
    figure = Figure3Result(capacity_factor=capacity_factor)
    for outcome in sweep.outcomes:
        kind = DeviceKind(outcome.params["device"])
        capacity = outcome.params["capacity_bytes"]
        series = []
        written = 0
        for bytes_completed, gbps in outcome.metrics.get("series", []):
            written += bytes_completed
            series.append((written, gbps))
        result = SustainedWriteResult(
            device=kind,
            capacity_bytes=capacity,
            series=series,
            peak_gbps=max((gbps for _, gbps in series), default=0.0),
            final_gbps=series[-1][1] if series else 0.0,
            write_amplification=outcome.metrics.get("write_amplification"),
            flow_limited=outcome.metrics.get("flow_limited", False),
        )
        figure.results[kind] = result
    return figure


register(scenario(
    "figure3",
    "Paper Figure 3: sustained random-write flood (GC cliff vs flow limit)",
    devices=("SSD", "ESSD-1", "ESSD-2"),
    tags=("paper", "gc"),
    cell_builder=lambda: figure3_cells(
        ExperimentScale(ssd_capacity_bytes=128 * MiB,
                        essd_capacity_bytes=128 * MiB),
        capacity_factor=1.6),
))
