"""The unwritten contract: observations and implications as first-class objects.

The paper distils its characterization into four observations (how ESSDs
behave differently from local SSDs) and five implications (what cloud storage
users should do about it).  Encoding them as data lets the checker attach
quantitative evidence to each observation and lets the advisors reference the
implication they implement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ContractClauseKind(enum.Enum):
    """Whether a clause is an observation (measured) or an implication (advice)."""

    OBSERVATION = "observation"
    IMPLICATION = "implication"


@dataclass(frozen=True)
class Observation:
    """One of the contract's measured, counter-intuitive device behaviours."""

    number: int
    title: str
    statement: str
    mechanism: str

    @property
    def identifier(self) -> str:
        return f"O{self.number}"


@dataclass(frozen=True)
class Implication:
    """One of the contract's pieces of advice for cloud storage users."""

    number: int
    title: str
    statement: str
    derived_from: tuple[int, ...]

    @property
    def identifier(self) -> str:
        return f"I{self.number}"


@dataclass
class ObservationEvidence:
    """Quantitative evidence the checker attaches to one observation."""

    observation: Observation
    holds: bool
    summary: str
    metrics: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


@dataclass(frozen=True)
class UnwrittenContract:
    """The full contract: four observations plus five implications."""

    observations: tuple[Observation, ...]
    implications: tuple[Implication, ...]

    def observation(self, number: int) -> Observation:
        for obs in self.observations:
            if obs.number == number:
                return obs
        raise KeyError(f"no observation #{number}")

    def implication(self, number: int) -> Implication:
        for imp in self.implications:
            if imp.number == number:
                return imp
        raise KeyError(f"no implication #{number}")

    def implications_of(self, observation_number: int) -> list[Implication]:
        """The implications derived (at least in part) from an observation."""
        return [imp for imp in self.implications
                if observation_number in imp.derived_from]

    def describe(self) -> str:
        """Human-readable rendering of the whole contract."""
        lines = ["The Unwritten Contract of Cloud-based ESSDs", ""]
        lines.append("Observations:")
        for obs in self.observations:
            lines.append(f"  {obs.identifier}. {obs.statement}")
        lines.append("")
        lines.append("Implications:")
        for imp in self.implications:
            origins = ", ".join(f"O{n}" for n in imp.derived_from)
            lines.append(f"  {imp.identifier}. {imp.statement} (from {origins})")
        return "\n".join(lines)


OBSERVATIONS = (
    Observation(
        number=1,
        title="Latency gap at small scale",
        statement=("The latency of ESSDs is tens to a hundred times higher than "
                   "that of the local SSD when I/Os are not well scaled up "
                   "(small I/O sizes and/or low queue depths)."),
        mechanism=("Network latency and storage-software processing dominate small "
                   "I/Os; scaling sizes and queue depths amortizes them across the "
                   "distributed backend."),
    ),
    Observation(
        number=2,
        title="GC impact delayed or hidden",
        statement=("The performance impact of garbage collection appears much "
                   "later than on a local SSD, or disappears entirely."),
        mechanism=("The provider hides device GC behind abundant, shared backend "
                   "resources; what eventually surfaces is provider-side flow "
                   "limiting, not flash GC."),
    ),
    Observation(
        number=3,
        title="Random writes beat sequential writes",
        statement=("Random-write throughput outperforms sequential-write "
                   "throughput, by up to 1.52x / 2.79x on the two ESSDs."),
        mechanism=("The volume's chunks are distributed and replicated across many "
                   "nodes; random writes spread over more placement groups and "
                   "therefore enjoy more aggregate backend bandwidth."),
    ),
    Observation(
        number=4,
        title="Deterministic maximum bandwidth",
        statement=("The maximum bandwidth is deterministic and no longer sensitive "
                   "to the access pattern (it equals the purchased throughput "
                   "budget); the IOPS guarantee remains size-dependent."),
        mechanism=("Provider-side QoS enforces one byte-rate budget across reads "
                   "and writes alike, hiding flash-level asymmetry."),
    ),
)

IMPLICATIONS = (
    Implication(
        number=1,
        title="Scale I/Os up",
        statement=("Scale I/O sizes and I/O queue depths up as much as possible to "
                   "amortize the cloud storage overhead."),
        derived_from=(1,),
    ),
    Implication(
        number=2,
        title="Revisit GC-mitigation techniques",
        statement=("Reconsider whether and how GC-mitigation techniques designed "
                   "for local SSDs should be adapted for ESSDs."),
        derived_from=(2,),
    ),
    Implication(
        number=3,
        title="Rethink sequentializing writes",
        statement=("Rethink converting random writes into sequential writes, and "
                   "consider proactively issuing random writes in "
                   "sequential-write-based software."),
        derived_from=(2, 3),
    ),
    Implication(
        number=4,
        title="Smooth I/O over time",
        statement=("Smooth read/write I/Os so they are evenly distributed across "
                   "the timeline and stay below the guaranteed throughput budget."),
        derived_from=(4,),
    ),
    Implication(
        number=5,
        title="Re-evaluate I/O reduction",
        statement=("Re-evaluate I/O-reduction techniques (compression, "
                   "deduplication) previously considered harmful to performance."),
        derived_from=(1, 4),
    ),
)

#: The contract exactly as the paper states it.
UNWRITTEN_CONTRACT = UnwrittenContract(observations=OBSERVATIONS,
                                       implications=IMPLICATIONS)
