"""The local SSD block device.

:class:`SsdDevice` wires together the flash array, the FTL, the DRAM write
buffer, and the sequential prefetcher behind the common
:class:`repro.host.BlockDevice` interface.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.flash.chip import FlashArray
from repro.host.device import BlockDevice
from repro.host.io import IOKind, IORequest
from repro.sim.resources import Resource
from repro.ssd.allocator import WriteStream
from repro.ssd.config import SsdConfig, samsung_970pro_profile
from repro.ssd.ftl import Ftl
from repro.ssd.prefetcher import ReadCache, SequentialPrefetcher
from repro.ssd.write_buffer import WriteBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


class SsdDevice(BlockDevice):
    """A simulated local NVMe flash SSD."""

    def __init__(self, sim: "Simulator", config: Optional[SsdConfig] = None,
                 name: str = "ssd"):
        config = config or samsung_970pro_profile()
        super().__init__(sim, config.capacity_bytes, config.logical_block_size, name)
        self.config = config
        self.flash = FlashArray(sim, config.geometry, config.timing)
        self.ftl = Ftl(sim, config, self.flash)
        self._rng = random.Random(config.seed)
        # The controller's host-interface pipeline (command decode + DMA) has
        # a small number of parallel contexts.  Deep queues therefore *raise*
        # per-request latency on the local SSD -- which is exactly why the
        # ESSD/SSD latency gap shrinks at high queue depth (Observation 1):
        # the backend-parallel ESSD does not pay this serialization.
        self._controller = Resource(sim, capacity=config.controller_contexts)

        # Per-I/O constants of the host-overhead model, precomputed once so
        # the flattened ``_pipeline`` reads attributes instead of chasing
        # config fields per request.  ``_jitter_lambda`` is the exact value
        # ``_host_overhead`` computes per call (hoisting it changes nothing
        # numerically); the transfer rate is kept as a divisor because
        # ``size / rate`` and ``size * (1 / rate)`` round differently.
        self._block = config.logical_block_size
        self._base_overhead_us = config.host_overhead_us
        self._transfer_bw = config.host_transfer_bytes_per_us
        self._per_block_us = config.per_block_overhead_us
        self._jitter_lambda = (1.0 / config.jitter_mean_us
                               if config.jitter_mean_us > 0 else 0.0)
        self._hiccup_p = config.hiccup_probability
        self._hiccup_us = config.hiccup_us

        block = config.logical_block_size
        if config.write_buffer_bytes > 0:
            self.write_buffer: Optional[WriteBuffer] = WriteBuffer(
                sim, max(config.program_unit_slots, config.write_buffer_bytes // block))
            for _ in range(config.flush_workers):
                sim.process(self._flush_worker())
        else:
            self.write_buffer = None

        if config.read_cache_bytes > 0:
            self.read_cache: Optional[ReadCache] = ReadCache(config.read_cache_bytes // block)
            self.prefetcher: Optional[SequentialPrefetcher] = SequentialPrefetcher(
                trigger=config.prefetch_trigger,
                window_slots=max(1, config.prefetch_window_bytes // block),
                logical_blocks=config.logical_blocks,
            )
        else:
            self.read_cache = None
            self.prefetcher = None

    # -- convenience --------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """Current cumulative write amplification factor."""
        return self.ftl.stats.write_amplification

    def preload(self, offset: int = 0, size: Optional[int] = None) -> None:
        """Precondition the device: mark ``[offset, offset+size)`` as written.

        Takes no simulated time.  Use before read-latency experiments so that
        reads hit mapped flash instead of returning zeroes.
        """
        size = self.capacity_bytes - offset if size is None else size
        block = self.logical_block_size
        if offset % block or size % block:
            raise ValueError("preload range must be block aligned")
        self.ftl.preload_range(offset // block, size // block)

    # -- request service ------------------------------------------------------------
    def _serve(self, request: IORequest):
        tracer = self.tracer
        if tracer is not None:
            tracer.enter(request, "queue")  # waiting for a controller context
        yield self._controller.request()
        if tracer is not None:
            tracer.enter(request, "service")  # command decode + host DMA
        try:
            yield self.sim.timeout(self._host_overhead(request))
        finally:
            self._controller.release()
        if tracer is not None:
            tracer.enter(request, "media")  # FTL, write buffer, flash
        if request.kind is IOKind.READ:
            yield from self._serve_read(request)
        elif request.kind is IOKind.WRITE:
            yield from self._serve_write(request)
        elif request.kind is IOKind.FLUSH:
            yield from self._serve_flush()
        elif request.kind is IOKind.TRIM:
            self.ftl.trim(self._lbns(request))
        return request

    def _pipeline(self, request: IORequest):
        """Flattened fast-path service pipeline: one generator frame that
        inlines :meth:`_serve`, the host-overhead model, and the per-kind
        service bodies (:meth:`_serve` stays the semantic reference run by
        ``fast_path=False`` submissions).  Event order and RNG draw order
        match :meth:`_serve` exactly.
        """
        sim = self.sim
        rng = self._rng
        tracer = self.tracer
        if tracer is not None:
            tracer.enter(request, "queue")
        yield self._controller.request()
        if tracer is not None:
            tracer.enter(request, "service")
        try:
            # _host_overhead, inlined: identical arithmetic and draw order.
            size = request.size
            overhead = (self._base_overhead_us
                        + size / self._transfer_bw
                        + max(1, size // self._block) * self._per_block_us)
            if self._jitter_lambda > 0.0:
                overhead += rng.expovariate(self._jitter_lambda)
            if self._hiccup_p > 0 and rng.random() < self._hiccup_p:
                overhead += self._hiccup_us
            yield sim.timeout(overhead)
        finally:
            self._controller.release()
        if tracer is not None:
            tracer.enter(request, "media")
        kind = request.kind
        block = self._block
        if kind is IOKind.READ:
            # _serve_read, inlined (same lookup order: write buffer shields
            # the read cache, so cache hits are only recorded on buffer
            # misses).
            lbns = range(request.offset // block,
                         (request.offset + request.size) // block)
            write_buffer = self.write_buffer
            read_cache = self.read_cache
            misses: list[int] = []
            for lbn in lbns:
                if write_buffer is not None and write_buffer.contains(lbn):
                    continue
                if read_cache is not None and read_cache.lookup(lbn):
                    continue
                misses.append(lbn)
            self._maybe_prefetch(lbns)
            if misses:
                yield from self.ftl.read_slots(misses)
        elif kind is IOKind.WRITE:
            # _serve_write, inlined.
            lbns = range(request.offset // block,
                         (request.offset + request.size) // block)
            read_cache = self.read_cache
            if read_cache is not None:
                for lbn in lbns:
                    read_cache.invalidate(lbn)
            write_buffer = self.write_buffer
            if write_buffer is None:
                yield from self.ftl.write_slots(list(lbns), WriteStream.HOST)
            else:
                for lbn in lbns:
                    while not write_buffer.has_room_for(lbn):
                        yield write_buffer.wait_for_space()
                    write_buffer.insert(lbn)
        elif kind is IOKind.FLUSH:
            # _serve_flush, inlined.
            write_buffer = self.write_buffer
            if write_buffer is not None:
                while not write_buffer.is_empty():
                    yield write_buffer.wait_for_space()
        elif kind is IOKind.TRIM:
            self.ftl.trim(range(request.offset // block,
                                (request.offset + request.size) // block))
        self._finish(request)
        return request

    def _host_overhead(self, request: IORequest) -> float:
        config = self.config
        blocks = max(1, request.size // config.logical_block_size)
        overhead = (config.host_overhead_us
                    + request.size / config.host_transfer_bytes_per_us
                    + blocks * config.per_block_overhead_us)
        overhead += self._rng.expovariate(1.0 / config.jitter_mean_us) \
            if config.jitter_mean_us > 0 else 0.0
        if config.hiccup_probability > 0 and self._rng.random() < config.hiccup_probability:
            overhead += config.hiccup_us
        return overhead

    def _lbns(self, request: IORequest) -> range:
        block = self.logical_block_size
        return range(request.offset // block, request.end_offset // block)

    # -- reads ------------------------------------------------------------------------
    def _serve_read(self, request: IORequest):
        lbns = self._lbns(request)
        misses: list[int] = []
        for lbn in lbns:
            if self.write_buffer is not None and self.write_buffer.contains(lbn):
                continue
            if self.read_cache is not None and self.read_cache.lookup(lbn):
                continue
            misses.append(lbn)
        self._maybe_prefetch(lbns)
        if misses:
            yield from self.ftl.read_slots(misses)

    def _maybe_prefetch(self, lbns: range) -> None:
        if self.prefetcher is None or self.read_cache is None:
            return
        decision = self.prefetcher.observe(lbns.start, len(lbns))
        if decision is not None:
            self.sim.process(self._prefetch(decision.start_lbn, decision.num_slots))

    def _prefetch(self, start_lbn: int, num_slots: int):
        lbns = [lbn for lbn in range(start_lbn, start_lbn + num_slots)
                if self.ftl.mapping.is_mapped(lbn)]
        if not lbns:
            return
        yield from self.ftl.read_slots(lbns, for_prefetch=True)
        for lbn in lbns:
            self.read_cache.insert(lbn)

    # -- writes ------------------------------------------------------------------------
    def _serve_write(self, request: IORequest):
        lbns = self._lbns(request)
        if self.read_cache is not None:
            for lbn in lbns:
                self.read_cache.invalidate(lbn)
        if self.write_buffer is None:
            yield from self.ftl.write_slots(list(lbns), WriteStream.HOST)
            return
        for lbn in lbns:
            while not self.write_buffer.has_room_for(lbn):
                yield self.write_buffer.wait_for_space()
            self.write_buffer.insert(lbn)

    def _flush_worker(self):
        """Background process draining the write buffer to flash."""
        buffer = self.write_buffer
        unit = self.config.program_unit_slots
        while True:
            batch = buffer.take_batch(unit)
            if not batch:
                yield buffer.wait_for_data()
                continue
            try:
                yield from self.ftl.write_slots(batch, WriteStream.HOST)
            finally:
                buffer.complete_flush(batch)

    def _serve_flush(self):
        if self.write_buffer is None:
            return
        while not self.write_buffer.is_empty():
            yield self.write_buffer.wait_for_space()

    # -- reporting ------------------------------------------------------------------------
    def describe(self) -> dict:
        """Summary of configuration and runtime statistics (for reports)."""
        stats = self.ftl.stats
        gc_stats = self.ftl.gc.stats
        return {
            "name": self.name,
            "kind": "local-ssd",
            "capacity_bytes": self.capacity_bytes,
            "geometry": self.config.geometry.describe(),
            "overprovisioning": round(self.config.overprovisioning_ratio, 4),
            "host_reads": self.stats.reads_completed,
            "host_writes": self.stats.writes_completed,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
            "write_amplification": round(stats.write_amplification, 3),
            "gc_blocks_erased": gc_stats.blocks_erased,
            "gc_slots_relocated": gc_stats.slots_relocated,
            "flash_programs": self.flash.stats.programs,
            "flash_reads": self.flash.stats.reads,
            "flash_erases": self.flash.stats.erases,
        }
