"""Flash operation timing parameters.

All latencies are in microseconds; bandwidths in bytes per microsecond
(i.e. MB/s divided by ~1.05e0 -- we simply use bytes/us).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlashTiming:
    """Latency model of a single flash die and its channel bus.

    Attributes
    ----------
    read_us:
        Array-to-register read time (tR) for one page.
    program_us:
        Register-to-array program time (tPROG) for one page.
    erase_us:
        Block erase time (tBERS).
    channel_bytes_per_us:
        Channel (ONFI bus) bandwidth in bytes per microsecond.  One channel is
        shared by all dies attached to it; transfers reserve the channel.
    command_overhead_us:
        Fixed per-command overhead (command/address cycles, ECC pipeline).
    """

    read_us: float = 45.0
    program_us: float = 380.0
    erase_us: float = 3000.0
    channel_bytes_per_us: float = 440.0
    command_overhead_us: float = 1.5

    def __post_init__(self) -> None:
        for name in ("read_us", "program_us", "erase_us",
                     "channel_bytes_per_us", "command_overhead_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.channel_bytes_per_us <= 0:
            raise ValueError("channel_bytes_per_us must be positive")

    def transfer_us(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` over the channel bus."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        return num_bytes / self.channel_bytes_per_us

    def read_latency_us(self, num_bytes: int) -> float:
        """End-to-end latency of a page read transferring ``num_bytes``."""
        return self.command_overhead_us + self.read_us + self.transfer_us(num_bytes)

    def program_latency_us(self, num_bytes: int) -> float:
        """End-to-end latency of a page program transferring ``num_bytes``."""
        return self.command_overhead_us + self.transfer_us(num_bytes) + self.program_us
