"""Benchmark: regenerate Figure 3 (sustained random writes, GC cliff vs hiding)."""

from benchmarks.conftest import run_once
from repro.experiments import DeviceKind, ExperimentScale, run_figure3


def test_bench_figure3_sustained_random_write(benchmark):
    from repro.host.io import KiB, MiB
    scale = ExperimentScale(ssd_capacity_bytes=512 * MiB, essd_capacity_bytes=512 * MiB)
    result = run_once(benchmark, run_figure3, scale,
                      capacity_factor=3.0, io_size=256 * KiB)
    ssd = result.results[DeviceKind.SSD]
    essd1 = result.results[DeviceKind.ESSD1]
    essd2 = result.results[DeviceKind.ESSD2]
    # Observation 2: the SSD collapses within ~1x capacity written; ESSD-1
    # only after its flow-limit threshold (~2.55x); ESSD-2 never.
    ssd_cliff = ssd.cliff_capacity_factor(drop_fraction=0.6)
    assert ssd_cliff is not None and ssd_cliff < 1.8
    essd1_cliff = essd1.cliff_capacity_factor(drop_fraction=0.6)
    assert essd1_cliff is None or essd1_cliff > 2.0
    assert essd2.cliff_capacity_factor(drop_fraction=0.6) is None
    assert essd1.flow_limited
    assert not essd2.flow_limited
    print("\n" + result.render())
