"""I/O request types shared by all device models."""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

#: Bytes in a kibibyte / mebibyte / gibibyte, used throughout the repo.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_next_request_id = itertools.count().__next__


class IOKind(enum.Enum):
    """The kind of a block I/O request."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    TRIM = "trim"

    @property
    def is_read(self) -> bool:
        return self is IOKind.READ

    @property
    def is_write(self) -> bool:
        return self is IOKind.WRITE


class IORequest:
    """A single block I/O request.

    Offsets and sizes are in bytes.  ``submit_time`` and ``complete_time``
    are filled in by the device (simulation microseconds), so a completed
    request carries its own latency.

    A slotted hand-written class rather than a dataclass: request creation
    sits on the device-model hot path (one per I/O round trip), and the
    dataclass ``__init__``/``__post_init__`` pair plus per-field descriptor
    machinery measurably shows up in the roundtrip profile
    (``benchmarks/profile_roundtrip.py``).
    """

    __slots__ = ("kind", "offset", "size", "request_id", "submit_time",
                 "complete_time", "tag", "shed")

    def __init__(self, kind: IOKind, offset: int, size: int,
                 request_id: Optional[int] = None,
                 submit_time: Optional[float] = None,
                 complete_time: Optional[float] = None,
                 tag: Any = None, shed: bool = False):
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if size < 0:
            raise ValueError(f"negative size: {size}")
        if size == 0 and (kind is IOKind.READ or kind is IOKind.WRITE):
            raise ValueError("read/write requests must have a positive size")
        self.kind = kind
        self.offset = offset
        self.size = size
        self.request_id = _next_request_id() if request_id is None else request_id
        self.submit_time = submit_time
        self.complete_time = complete_time
        #: Free-form annotation (e.g. the workload stream that issued it).
        self.tag = tag
        #: Set by :class:`repro.cluster.faults.FaultInjector` when the request
        #: was shed (refused fast) instead of served -- downstream hooks such
        #: as replication mirroring skip shed writes.
        self.shed = shed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IORequest(kind={self.kind!r}, offset={self.offset}, "
                f"size={self.size}, request_id={self.request_id}, "
                f"submit_time={self.submit_time}, "
                f"complete_time={self.complete_time}, tag={self.tag!r}, "
                f"shed={self.shed})")

    @property
    def end_offset(self) -> int:
        """First byte past the end of the request."""
        return self.offset + self.size

    @property
    def latency(self) -> float:
        """Completion latency in microseconds.

        Only valid once the device has completed the request.
        """
        if self.submit_time is None or self.complete_time is None:
            raise ValueError("request has not completed yet")
        return self.complete_time - self.submit_time

    @property
    def is_completed(self) -> bool:
        return self.complete_time is not None

    def overlaps(self, other: "IORequest") -> bool:
        """Whether the byte ranges of two requests intersect."""
        return self.offset < other.end_offset and other.offset < self.end_offset

    @classmethod
    def read(cls, offset: int, size: int, **kwargs: Any) -> "IORequest":
        """Convenience constructor for a read request."""
        return cls(IOKind.READ, offset, size, **kwargs)

    @classmethod
    def write(cls, offset: int, size: int, **kwargs: Any) -> "IORequest":
        """Convenience constructor for a write request."""
        return cls(IOKind.WRITE, offset, size, **kwargs)

    @classmethod
    def flush(cls, **kwargs: Any) -> "IORequest":
        """Convenience constructor for a flush (cache barrier) request."""
        return cls(IOKind.FLUSH, 0, 0, **kwargs)
