"""Property tests: config document round-trips are lossless.

The determinism contract of the config layer is that ``object -> document
-> object`` is an identity for *any* valid topology / scenario / cell --
including fault schedules, macro group modes, and device-profile overrides
-- and that the document side stays plain JSON (what a YAML file parses
to).  Hypothesis drives the converters across the whole shape space; the
JSON dump/load in the middle guarantees the round trip survives an actual
file, not just in-memory Python objects.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FaultEvent,
    FaultPolicy,
    FleetRunConfig,
    FleetTopology,
    edge,
    fleet,
    group,
    tenant,
)
from repro.config import (
    cell_from_document,
    cell_to_document,
    run_config_from_document,
    run_config_to_document,
    scenario_from_document,
    scenario_to_document,
    topology_from_document,
    topology_to_document,
)
from repro.experiments.scenarios import scenario
from repro.experiments.sweep import CellSpec

MINI_CAPACITY = 1 << 24

names = st.sampled_from(["alpha", "beta", "gamma", "delta"])

#: LOOP accepts arbitrary device_params; SSD gets its real op_ratio knob.
loop_params = st.dictionaries(
    st.sampled_from(["latency_us", "bandwidth_bpus"]),
    st.floats(min_value=0.5, max_value=8.0, allow_nan=False), max_size=2)
ssd_params = st.dictionaries(
    st.just("op_ratio"),
    st.floats(min_value=0.08, max_value=0.3, allow_nan=False), max_size=1)

workloads = st.fixed_dictionaries({
    "pattern": st.sampled_from(["randread", "randwrite", "randrw"]),
    "io_size": st.sampled_from([4096, 16384]),
    "queue_depth": st.integers(min_value=1, max_value=8),
    "io_count": st.integers(min_value=5, max_value=50),
})


@st.composite
def topologies(draw) -> FleetTopology:
    group_names = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    groups = []
    for name in group_names:
        device = draw(st.sampled_from(["LOOP", "SSD"]))
        params = draw(loop_params if device == "LOOP" else ssd_params)
        groups.append(group(
            name, device, draw(st.integers(min_value=1, max_value=4)),
            capacity_bytes=MINI_CAPACITY if device == "LOOP" else None,
            device_params=params,
            preload=draw(st.booleans()),
            mode=draw(st.sampled_from(["discrete", "macro"])),
        ))
    by_name = {entry.name: entry for entry in groups}
    tenants = [tenant(f"t-{name}", name, **draw(workloads))
               for name in draw(st.lists(st.sampled_from(group_names),
                                         max_size=2, unique=True))]
    edges = []
    if len(group_names) >= 2 and draw(st.booleans()):
        source, target = group_names[0], group_names[1]
        edges.append(edge(source, target, draw(st.integers(
            min_value=1, max_value=by_name[target].count))))
    faults = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        target = draw(st.sampled_from(group_names))
        faults.append(FaultEvent(
            kind=draw(st.sampled_from(["fail", "drain"])),
            group=target,
            at_us=draw(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False)),
            device=draw(st.one_of(st.none(), st.integers(
                min_value=0, max_value=by_name[target].count - 1))),
            repair_after_us=draw(st.one_of(st.none(), st.floats(
                min_value=1.0, max_value=1e5, allow_nan=False))),
        ))
    policy = FaultPolicy(
        rebuild_chunk_bytes=draw(st.sampled_from([262144, 524288])),
        rebuild_chunks_per_epoch=draw(st.integers(min_value=1, max_value=8)),
        shed_penalty_us=draw(st.floats(min_value=0.0, max_value=100.0,
                                       allow_nan=False)),
    )
    return fleet(
        draw(names), groups=groups, tenants=tenants, edges=edges,
        faults=faults, fault_policy=policy,
        epoch_us=draw(st.sampled_from([500.0, 1000.0, 2000.0])),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


@settings(max_examples=60, deadline=None)
@given(topology=topologies())
def test_topology_document_round_trip(topology):
    doc = json.loads(json.dumps(topology_to_document(topology)))
    rebuilt = topology_from_document(doc)
    assert rebuilt == topology
    assert rebuilt.canonical() == topology.canonical()


@st.composite
def run_configs(draw) -> FleetRunConfig:
    fields = {}
    if draw(st.booleans()):
        fields["shards"] = draw(st.integers(min_value=1, max_value=8))
    if draw(st.booleans()):
        fields["run_ahead"] = draw(st.integers(min_value=1, max_value=64))
    if draw(st.booleans()):
        fields["epoch_us"] = draw(st.sampled_from([250.0, 500.0, 1000.0]))
    if draw(st.booleans()):
        fields["transport"] = draw(st.sampled_from(
            ["auto", "local", "executor", "shm"]))
    if draw(st.booleans()):
        fields["spin_budget"] = draw(st.integers(min_value=0,
                                                 max_value=10_000))
    if draw(st.booleans()):
        fields["processes"] = draw(st.booleans())
    if draw(st.booleans()):
        fields["max_epochs"] = draw(st.integers(min_value=1_000,
                                                max_value=10**6))
    return FleetRunConfig(**fields)


@settings(max_examples=60, deadline=None)
@given(config=run_configs())
def test_run_config_document_round_trip(config):
    doc = json.loads(json.dumps(run_config_to_document(config)))
    assert run_config_from_document(doc) == config
    assert FleetRunConfig.from_document(doc) == config
    # The document carries exactly the non-default fields, so the default
    # config is the empty block and documents never pin incidental
    # defaults.
    assert sorted(doc) == [name for name, _ in config.to_pairs()]


@st.composite
def scenarios(draw):
    base = dict(draw(workloads))
    if draw(st.booleans()):
        base["preload"] = False
    grid = {}
    if draw(st.booleans()):
        grid["io_size"] = [4096, 8192]
    if draw(st.booleans()):
        grid["theta"] = [0.9, 1.2]  # pattern-param axis
    streams = {}
    if draw(st.booleans()):
        streams["noisy"] = {"pattern": "randwrite",
                            "queue_depth": draw(st.integers(min_value=1,
                                                            max_value=4))}
    topology = draw(st.one_of(st.none(), topologies()))
    run = draw(st.one_of(st.none(), run_configs())) \
        if topology is not None else None
    return scenario(
        draw(names), "property scenario",
        devices=("fleet",) if topology is not None else ("LOOP",),
        base=base, grid=grid, streams=streams, fleet=topology, run=run,
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        seed_mode=draw(st.sampled_from(["fixed", "derived"])),
        tags=tuple(draw(st.lists(st.sampled_from(["a", "b"]),
                                 max_size=2, unique=True))),
    )


@settings(max_examples=40, deadline=None)
@given(spec=scenarios())
def test_scenario_document_round_trip(spec):
    doc = json.loads(json.dumps(scenario_to_document(spec)))
    assert scenario_from_document(doc) == spec


@st.composite
def cells(draw) -> CellSpec:
    fields = dict(draw(workloads))
    fields["device"] = "LOOP"
    fields["seed"] = draw(st.integers(min_value=0, max_value=2**31 - 1))
    fields["preload"] = draw(st.booleans())
    fields["ramp_ios"] = draw(st.integers(min_value=0, max_value=8))
    fields["think_time_us"] = draw(st.floats(min_value=0.0, max_value=50.0,
                                             allow_nan=False))
    if draw(st.booleans()):
        fields["pattern_params"] = (("theta", draw(st.floats(
            min_value=0.5, max_value=1.5, allow_nan=False))),)
    if draw(st.booleans()):
        fields["device_params"] = (("latency_us", draw(st.floats(
            min_value=0.5, max_value=5.0, allow_nan=False))),)
    if draw(st.booleans()):
        fields["streams"] = (("noisy", (("pattern", "randwrite"),
                                        ("queue_depth", 2))),)
    if draw(st.booleans()):
        fields["fleet"] = draw(topologies()).canonical()
        fields["device"] = "fleet"
        if draw(st.booleans()):
            fields["fleet_run"] = draw(run_configs()).to_pairs()
    fields["labels"] = (("device", fields["device"]),)
    return CellSpec(**fields)


@settings(max_examples=40, deadline=None)
@given(cell=cells())
def test_cell_document_round_trip(cell):
    doc = json.loads(json.dumps(cell_to_document(cell)))
    rebuilt = cell_from_document(doc)
    assert rebuilt == cell
    assert rebuilt.cache_key() == cell.cache_key()
