"""Profile the per-I/O hot path of the simulator under cProfile.

Runs a closed-loop FIO job against one of the bundled device models and
prints the top-N functions by the chosen sort key -- the tool used to find
and verify the call-count reductions behind the kernel roundtrip speedup
(see ``benchmarks/test_bench_kernel.py``, metric
``request_roundtrips_per_sec``).

Usage::

    PYTHONPATH=src python benchmarks/profile_roundtrip.py
    PYTHONPATH=src python benchmarks/profile_roundtrip.py --device ssd --ios 20000
    PYTHONPATH=src python benchmarks/profile_roundtrip.py --legacy --sort cumtime

``--legacy`` profiles the ``fast_path=False`` pre-refactor frames (the
faithful baseline the roundtrip microbenchmark compares against), which is
how you see exactly which frames the flattened path removed.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def build_device(name: str, sim):
    """Construct one of the profiled device models on ``sim``."""
    if name == "loopback":
        from repro.devices.loopback import LoopbackDevice
        # Same shape as the roundtrip microbenchmark.
        return LoopbackDevice(sim, capacity_bytes=1 << 28,
                              service_time_us=2.0, service_slots=4)
    if name == "ssd":
        from repro.ssd.ssd import SsdDevice
        device = SsdDevice(sim)
        device.preload()
        return device
    if name == "essd":
        from repro.ebs.essd import EssdDevice
        return EssdDevice(sim)
    raise ValueError(f"unknown device {name!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--device", choices=("loopback", "ssd", "essd"),
                        default="loopback",
                        help="device model to drive (default: loopback, the "
                             "roundtrip-microbenchmark shape)")
    parser.add_argument("--ios", type=int, default=12000,
                        help="number of I/Os to issue (default: 12000)")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="closed-loop workers (default: 8)")
    parser.add_argument("--io-size", type=int, default=4096,
                        help="I/O size in bytes (default: 4096)")
    parser.add_argument("--pattern", default="randread",
                        help="access pattern (default: randread)")
    parser.add_argument("--top", type=int, default=25,
                        help="functions to print (default: 25)")
    parser.add_argument("--sort", choices=("tottime", "cumtime", "ncalls"),
                        default="tottime",
                        help="pstats sort key (default: tottime)")
    parser.add_argument("--legacy", action="store_true",
                        help="profile the fast_path=False pre-refactor frames "
                             "instead of the flattened hot path")
    args = parser.parse_args(argv)

    from repro.sim import Simulator
    from repro.workload.fio import FioJob, run_job

    sim = Simulator(fast_path=not args.legacy)
    device = build_device(args.device, sim)
    job = FioJob(pattern=args.pattern, io_size=args.io_size,
                 queue_depth=args.queue_depth, io_count=args.ios)

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_job(sim, device, job)
    profiler.disable()

    duration_s = result.duration_us / 1e6 if result.duration_us > 0 else 0.0
    path = "legacy (fast_path=False)" if args.legacy else "flattened fast path"
    print(f"# {args.device}: {result.ios_completed} I/Os "
          f"({args.pattern}, {args.io_size}B, qd={args.queue_depth}) "
          f"on the {path}; simulated {duration_s:.3f}s")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
