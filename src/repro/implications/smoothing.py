"""Implication 4: smooth I/O below the guaranteed throughput budget.

The throughput budget of an ESSD is paid for whether it is used or not, and
burst arrivals above it queue behind the provider's token bucket.  The
smoother computes, for a given arrival trace, the smallest budget that keeps
queueing delay within a tolerance once the arrival process is shaped -- and
the cost saving relative to provisioning for the unshaped peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workload.trace import Trace, TraceEvent


@dataclass(frozen=True)
class SmoothingPlan:
    """Result of sizing a shaped throughput budget for one trace."""

    #: Peak offered load of the unshaped trace (GB/s).
    unshaped_peak_gbps: float
    #: Long-run average load of the trace (GB/s).
    mean_load_gbps: float
    #: Budget required without shaping (provision for the peak).
    unshaped_budget_gbps: float
    #: Budget that suffices once the trace is shaped.
    shaped_budget_gbps: float
    #: Maximum delay any request incurs under the shaped budget (us).
    max_shaping_delay_us: float
    #: Delay tolerance the plan was sized for (us).
    delay_tolerance_us: float
    #: Relative budget (and hence cost, for budget-priced volumes) saving.
    @property
    def budget_saving(self) -> float:
        if self.unshaped_budget_gbps <= 0:
            return 0.0
        return 1.0 - self.shaped_budget_gbps / self.unshaped_budget_gbps

    def monthly_cost_saving(self, dollars_per_gbps_month: float) -> float:
        """Dollar saving per month at a linear budget price."""
        if dollars_per_gbps_month < 0:
            raise ValueError("price must be non-negative")
        return (self.unshaped_budget_gbps - self.shaped_budget_gbps) \
            * dollars_per_gbps_month


class IoSmoother:
    """Token-bucket shaping of an arrival trace against a throughput budget."""

    def __init__(self, delay_tolerance_us: float = 50_000.0,
                 headroom: float = 1.05, peak_bin_us: float = 1_000.0):
        """
        Parameters
        ----------
        delay_tolerance_us:
            Maximum extra delay shaping may add to any single request.
        headroom:
            Multiplier applied on top of the computed minimum rate (budgets
            are purchased in round numbers; a little slack avoids living at
            100% utilisation).
        peak_bin_us:
            Bin width used to estimate the unshaped peak load.
        """
        if delay_tolerance_us < 0:
            raise ValueError("delay_tolerance_us must be >= 0")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        self.delay_tolerance_us = delay_tolerance_us
        self.headroom = headroom
        self.peak_bin_us = peak_bin_us

    # -- shaping simulation (fluid model) --------------------------------------------
    def max_delay_at_rate(self, trace: Trace, rate_gbps: float) -> float:
        """Worst-case queueing delay (us) if the trace is served at a fixed rate."""
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        rate_bytes_per_us = rate_gbps * 1000.0
        virtual_finish = 0.0
        worst = 0.0
        for event in trace.events:
            start = max(event.timestamp_us, virtual_finish)
            virtual_finish = start + event.size / rate_bytes_per_us
            worst = max(worst, virtual_finish - event.timestamp_us)
        return worst

    def minimum_rate(self, trace: Trace, tolerance_us: Optional[float] = None) -> float:
        """Smallest service rate (GB/s) keeping shaping delay within tolerance."""
        if len(trace) == 0:
            return 0.0
        tolerance = self.delay_tolerance_us if tolerance_us is None else tolerance_us
        low = max(trace.mean_load_gbps(), 1e-6)
        high = max(trace.peak_load_gbps(self.peak_bin_us), low) * 1.05 + 1e-6
        if self.max_delay_at_rate(trace, low) <= tolerance:
            return low
        for _ in range(60):
            mid = (low + high) / 2
            if self.max_delay_at_rate(trace, mid) <= tolerance:
                high = mid
            else:
                low = mid
        return high

    def shape(self, trace: Trace, rate_gbps: float, name: Optional[str] = None) -> Trace:
        """Return a new trace whose arrivals are deferred to fit ``rate_gbps``."""
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        rate_bytes_per_us = rate_gbps * 1000.0
        shaped = Trace(name=name or f"{trace.name}-shaped")
        virtual_finish = 0.0
        for event in trace.events:
            start = max(event.timestamp_us, virtual_finish)
            virtual_finish = start + event.size / rate_bytes_per_us
            shaped.append(TraceEvent(start, event.kind, event.offset, event.size))
        return shaped

    # -- planning ------------------------------------------------------------------------
    def plan(self, trace: Trace,
             delay_tolerance_us: Optional[float] = None) -> SmoothingPlan:
        """Size the shaped budget for ``trace`` and quantify the saving."""
        tolerance = self.delay_tolerance_us if delay_tolerance_us is None \
            else delay_tolerance_us
        peak = trace.peak_load_gbps(self.peak_bin_us)
        mean = trace.mean_load_gbps()
        shaped_rate = self.minimum_rate(trace, tolerance) * self.headroom
        shaped_rate = max(shaped_rate, mean)
        unshaped_budget = peak * self.headroom
        max_delay = self.max_delay_at_rate(trace, shaped_rate) if len(trace) else 0.0
        return SmoothingPlan(
            unshaped_peak_gbps=peak,
            mean_load_gbps=mean,
            unshaped_budget_gbps=unshaped_budget,
            shaped_budget_gbps=min(shaped_rate, unshaped_budget),
            max_shaping_delay_us=max_delay,
            delay_tolerance_us=tolerance,
        )
