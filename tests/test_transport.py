"""Tests for the shard transport layer (repro.cluster.transport).

Three layers of coverage:

* The ``MessageRing`` wire format in isolation: wraparound, overflow
  spill accounting, torn/missing-write detection, and a hypothesis
  property that any interleaving of batched sends drains in the exact
  send order regardless of ring size.
* ``SharedMemoryTransport`` process machinery: forced overflow spills
  (one-slot rings), crashed-worker detection, and clean teardown.
* The cross-transport contract: serial, executor, and shared-memory
  runs of the same topology -- including faults, spares, and macro
  groups -- must produce bit-identical metrics payloads.
"""

import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FleetCoordinator,
    FleetRunConfig,
    SharedMemoryTransport,
    edge,
    fault,
    fleet,
    group,
    partition_topology,
    run_fleet,
    run_fleet_serial,
    tenant,
)
from repro.cluster.shard import ReplicaMessage
from repro.cluster.transport import (
    MessageRing,
    coupling_components,
    create_transport,
    decode_message,
    encode_message,
)

MINI_CAPACITY = 1 << 24


def mini_fleet(**changes):
    topology = fleet(
        "transport-under-test",
        groups=[
            group("web", "LOOP", 4, capacity_bytes=MINI_CAPACITY),
            group("db", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4096,
                   queue_depth=2, io_count=12),
            tenant("oltp", "db", pattern="randwrite", io_size=8192,
                   queue_depth=1, io_count=10),
        ],
        edges=[edge("db", "mirror", replication_factor=2)],
        epoch_us=200.0,
        seed=7,
    )
    return topology.scaled(**changes) if changes else topology


def faulted_fleet():
    return fleet(
        "transport-faults-under-test",
        groups=[
            group("db", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
            group("spare", "LOOP", 2, capacity_bytes=MINI_CAPACITY,
                  preload=False),
        ],
        tenants=[
            tenant("oltp", "db", pattern="randwrite", io_size=8192,
                   queue_depth=1, io_count=12),
        ],
        edges=[edge("db", "mirror", replication_factor=2)],
        faults=[fault("fail", "db", at_us=150.0, device=0,
                      repair_after_us=600.0, spare="spare")],
        epoch_us=200.0,
        seed=11,
    )


def macro_fleet():
    return fleet(
        "transport-macro-under-test",
        groups=[
            group("web", "LOOP", 4, capacity_bytes=MINI_CAPACITY,
                  mode="macro"),
            group("db", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4096,
                   queue_depth=2, io_count=12),
            tenant("oltp", "db", pattern="randwrite", io_size=8192,
                   queue_depth=1, io_count=10),
        ],
        epoch_us=200.0,
        seed=13,
    )


def strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


def message(seq: int, kind: str = "replica") -> ReplicaMessage:
    return ReplicaMessage(
        delivery_us=200.0 * (seq // 3 + 1), target_index=seq % 7,
        offset=seq * 4096, size=4096, origin_index=seq % 3, origin_seq=seq,
        delivery_epoch=seq // 3 + 1, kind=kind)


# ---------------------------------------------------------------------------
# Slot encoding
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["replica", "rebuild", "rebuild-read"])
def test_encode_decode_roundtrip(kind):
    original = message(41, kind=kind)
    assert decode_message(bytearray(encode_message(original))) == original


def test_encode_rejects_unknown_kind():
    with pytest.raises(KeyError):
        encode_message(message(0)._replace(kind="gossip"))


# ---------------------------------------------------------------------------
# MessageRing
# ---------------------------------------------------------------------------

def make_ring(slots: int) -> MessageRing:
    return MessageRing(bytearray(MessageRing.size_for(slots)), slots)


def test_ring_fifo_across_wraparound():
    ring = make_ring(4)
    sent = []
    received = []
    seq = 0
    # 4-slot ring, 3-message batches: the write pointer wraps every other
    # batch, exercising every slot alignment.
    for _ in range(10):
        batch = [message(seq + i) for i in range(3)]
        seq += 3
        assert ring.push(batch) == 3
        sent.extend(batch)
        received.extend(ring.drain(3))
    assert received == sent
    # head/tail are monotonic message counters, not wrapped offsets.
    assert ring.head == ring.tail == 30


def test_ring_overflow_reports_accepted_count():
    ring = make_ring(4)
    batch = [message(i) for i in range(7)]
    accepted = ring.push(batch)
    assert accepted == 4
    assert len(ring) == 4
    assert ring.drain(4) == batch[:4]
    # The spilled remainder re-enters on the next push, in order.
    assert ring.push(batch[accepted:]) == 3
    assert ring.drain(3) == batch[4:]


def test_ring_full_accepts_nothing():
    ring = make_ring(2)
    assert ring.push([message(0), message(1)]) == 2
    assert ring.push([message(2)]) == 0
    assert len(ring) == 2


def test_ring_drain_beyond_published_raises():
    ring = make_ring(4)
    ring.push([message(0)])
    with pytest.raises(RuntimeError, match="only 1 published"):
        ring.drain(2)
    # The failed drain consumed nothing.
    assert ring.drain(1) == [message(0)]


def test_ring_needs_a_slot():
    with pytest.raises(ValueError):
        make_ring(0)


@settings(max_examples=60, deadline=None)
@given(
    batch_sizes=st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                         max_size=12),
    slots=st.integers(min_value=1, max_value=8),
)
def test_ring_plus_spill_preserves_send_order(batch_sizes, slots):
    """The transport discipline -- push what fits, spill the rest, reader
    drains the ring part then appends the spill -- must hand every batch
    to the reader in exact send order for *any* ring size."""
    ring = make_ring(slots)
    seq = 0
    for size in batch_sizes:
        batch = [message(seq + i) for i in range(size)]
        seq += size
        pushed = ring.push(batch)
        spill = batch[pushed:]
        received = ring.drain(len(batch) - len(spill)) + spill
        assert received == batch


# ---------------------------------------------------------------------------
# FleetRunConfig
# ---------------------------------------------------------------------------

def test_run_config_validation():
    for bad in (dict(shards=0), dict(run_ahead=0), dict(epoch_us=0.0),
                dict(transport="carrier-pigeon"), dict(spin_budget=-1),
                dict(max_epochs=0)):
        with pytest.raises(ValueError):
            FleetRunConfig(**bad)


def test_run_config_merged_skips_none():
    config = FleetRunConfig(shards=4, run_ahead=8)
    assert config.merged(shards=None, transport=None) is config
    merged = config.merged(transport="shm", run_ahead=2)
    assert (merged.shards, merged.run_ahead, merged.transport) == (4, 2, "shm")


def test_run_config_transport_resolution():
    assert FleetRunConfig(shards=1).resolve_transport() == "local"
    assert FleetRunConfig(shards=4, processes=False) \
        .resolve_transport() == "local"
    # An explicit transport always wins over the processes alias.
    assert FleetRunConfig(shards=4, processes=False, transport="shm") \
        .resolve_transport() == "shm"
    resolved = FleetRunConfig(shards=4).resolve_transport()
    assert resolved == ("shm" if (os.cpu_count() or 1) > 1 else "executor")


def test_run_config_pairs_roundtrip():
    config = FleetRunConfig(shards=3, transport="executor", run_ahead=4)
    pairs = config.to_pairs()
    assert dict(pairs) == {"shards": 3, "transport": "executor",
                           "run_ahead": 4}
    assert FleetRunConfig.from_pairs(pairs) == config
    assert FleetRunConfig().to_pairs() == ()


def test_coordinator_kwargs_are_aliases_for_config():
    via_kwargs = FleetCoordinator(shards=2, processes=False, run_ahead=4)
    via_config = FleetCoordinator(
        config=FleetRunConfig(shards=2, processes=False, run_ahead=4))
    assert via_kwargs.config == via_config.config
    # Kwargs override the config they ride along with.
    assert FleetCoordinator(config=FleetRunConfig(shards=2),
                            shards=5).config.shards == 5


# ---------------------------------------------------------------------------
# Coupling components
# ---------------------------------------------------------------------------

def test_components_are_singletons_without_edges_or_faults():
    topology = mini_fleet().scaled(edges=())
    plans = partition_topology(topology, 3)
    owner = {i: p.shard_id for p in plans for i in p.device_indices}
    components = coupling_components(topology, owner, len(plans))
    assert components == [[0], [1], [2]]


def test_edge_couples_its_shards_only():
    topology = mini_fleet()
    plans = partition_topology(topology, 3)
    owner = {i: p.shard_id for p in plans for i in p.device_indices}
    components = coupling_components(topology, owner, len(plans))
    db_shards = {owner[i] for i in topology.group_indices("db")}
    mirror_shards = {owner[i] for i in topology.group_indices("mirror")}
    web_shards = {owner[i] for i in topology.group_indices("web")}
    coupled = db_shards | mirror_shards
    assert sorted(coupled) in components
    for sid in web_shards - coupled:
        assert [sid] in components


def test_fault_spare_pair_is_coupled():
    topology = faulted_fleet()
    plans = partition_topology(topology, len(topology.groups))
    owner = {i: p.shard_id for p in plans for i in p.device_indices}
    components = coupling_components(topology, owner, len(plans))
    touched = {owner[i] for i in topology.group_indices("db")}
    touched |= {owner[i] for i in topology.group_indices("spare")}
    component = next(c for c in components if touched <= set(c))
    assert len(component) >= len(touched)


# ---------------------------------------------------------------------------
# Cross-transport bit-identity (the non-negotiable contract)
# ---------------------------------------------------------------------------

#: Process transports spin-wait; on oversubscribed CI hosts a tiny spin
#: budget keeps workers sleeping instead of stealing the peer's core.
_TEST_SPIN = 50


@pytest.mark.parametrize("transport", ["local", "executor", "shm"])
@pytest.mark.parametrize("shards", [2, 3])
def test_transports_are_bit_identical_to_serial(transport, shards):
    reference = strip_runtime(run_fleet_serial(mini_fleet()))
    payload = run_fleet(mini_fleet(), shards=shards, transport=transport,
                        spin_budget=_TEST_SPIN)
    assert payload["runtime"]["transport"] == transport
    assert strip_runtime(payload) == reference


@pytest.mark.parametrize("transport", ["executor", "shm"])
def test_faulted_fleet_identical_across_transports(transport):
    reference = strip_runtime(run_fleet_serial(faulted_fleet()))
    payload = run_fleet(faulted_fleet(), shards=2, transport=transport,
                        spin_budget=_TEST_SPIN)
    assert strip_runtime(payload) == reference


def test_macro_fleet_identical_across_transports():
    reference = strip_runtime(run_fleet_serial(macro_fleet()))
    for transport in ("local", "shm"):
        payload = run_fleet(macro_fleet(), shards=2, transport=transport,
                            spin_budget=_TEST_SPIN)
        assert strip_runtime(payload) == reference


@pytest.mark.parametrize("run_ahead", [1, 4, 64])
def test_mixed_gear_run_ahead_is_bit_identical(run_ahead):
    """mini_fleet at 3 shards splits into one lockstep pair (db+mirror,
    coupled by the replication edge) and singleton web shards that keep
    batched run-ahead windows -- both gears in one run."""
    reference = strip_runtime(run_fleet_serial(mini_fleet()))
    payload = run_fleet(mini_fleet(), shards=3, transport="local",
                        run_ahead=run_ahead)
    runtime = payload["runtime"]
    assert runtime["components"] == 2
    assert runtime["lockstep_shards"] == 2
    assert strip_runtime(payload) == reference


# ---------------------------------------------------------------------------
# SharedMemoryTransport machinery
# ---------------------------------------------------------------------------

def test_shm_overflow_spills_to_side_channel(monkeypatch):
    """One-slot rings force every multi-message batch through the pipe
    side channel; the run must still be bit-identical to serial."""
    import repro.cluster.coordinator as coordinator_module

    def tiny_rings(kind, topology, plans, spin_budget):
        return create_transport(kind, topology, plans,
                                spin_budget=spin_budget, ring_slots=1)

    monkeypatch.setattr(coordinator_module, "create_transport", tiny_rings)
    reference = strip_runtime(run_fleet_serial(mini_fleet()))
    payload = run_fleet(mini_fleet(), shards=2, transport="shm",
                        spin_budget=_TEST_SPIN)
    assert strip_runtime(payload) == reference


def test_shm_crashed_worker_raises_cleanly():
    topology = mini_fleet()
    plans = partition_topology(topology, 2)
    transport = SharedMemoryTransport(topology, plans,
                                      spin_budget=_TEST_SPIN)
    try:
        victim = transport._shards[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        transport.post(0, topology.epoch_us, [])
        with pytest.raises(RuntimeError, match="died.*no torn data"):
            transport.wait(0)
    finally:
        transport.close()


def test_shm_worker_init_error_raises_cleanly():
    topology = mini_fleet()
    plans = partition_topology(topology, 2)
    bad = plans[1].to_payload()
    bad["device_indices"] = [10 ** 9]
    from repro.cluster.shard import ShardPlan

    with pytest.raises(RuntimeError, match="shard 1 worker failed"):
        SharedMemoryTransport(
            topology, [plans[0], ShardPlan.from_payload(bad)],
            spin_budget=_TEST_SPIN)


def test_shm_close_is_idempotent():
    topology = mini_fleet()
    plans = partition_topology(topology, 2)
    transport = SharedMemoryTransport(topology, plans,
                                      spin_budget=_TEST_SPIN)
    transport.close()
    transport.close()
    assert transport._shards == []
