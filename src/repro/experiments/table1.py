"""Table I: the configurations of the two ESSDs and the local SSD."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ebs import alibaba_pl3_profile, aws_io2_profile
from repro.experiments.common import DeviceKind, ExperimentScale, format_table
from repro.experiments.scenarios import register, scenario
from repro.host.io import GiB
from repro.ssd import samsung_970pro_profile


@dataclass(frozen=True)
class DeviceConfigRow:
    """One row of Table I."""

    device: str
    provider_and_type: str
    max_bandwidth_gbps: float
    max_iops: str
    capacity_bytes: int
    vm_type: str
    region: str


def run_table1(scale: ExperimentScale | None = None) -> list[DeviceConfigRow]:
    """Build the rows of Table I from the shipped device profiles."""
    scale = scale or ExperimentScale.default()
    essd1 = aws_io2_profile(scale.essd_capacity_bytes)
    essd2 = alibaba_pl3_profile(scale.essd_capacity_bytes)
    ssd = samsung_970pro_profile(scale.ssd_capacity_bytes)
    rows = [
        DeviceConfigRow(
            device=DeviceKind.ESSD1.value,
            provider_and_type=f"{essd1.provider} {essd1.volume_type}",
            max_bandwidth_gbps=round(essd1.max_throughput_gbps, 1),
            max_iops=_format_iops(essd1.advertised_max_iops or essd1.qos.max_iops),
            capacity_bytes=essd1.capacity_bytes,
            vm_type=essd1.vm_type,
            region=essd1.region,
        ),
        DeviceConfigRow(
            device=DeviceKind.ESSD2.value,
            provider_and_type=f"{essd2.provider} {essd2.volume_type}",
            max_bandwidth_gbps=round(essd2.max_throughput_gbps, 1),
            max_iops=_format_iops(essd2.advertised_max_iops or essd2.qos.max_iops),
            capacity_bytes=essd2.capacity_bytes,
            vm_type=essd2.vm_type,
            region=essd2.region,
        ),
        DeviceConfigRow(
            device=DeviceKind.SSD.value,
            provider_and_type="Samsung 970 Pro (simulated)",
            max_bandwidth_gbps=3.5,
            max_iops="500K",
            capacity_bytes=ssd.capacity_bytes,
            vm_type="-",
            region="-",
        ),
    ]
    return rows


def render_table1(rows: list[DeviceConfigRow]) -> str:
    """Plain-text rendering of Table I."""
    headers = ["Device", "Provider and Type", "Max BW (GB/s)", "Max IOPS",
               "Capacity", "VM Type", "Region"]
    body = [[row.device, row.provider_and_type, f"{row.max_bandwidth_gbps:.1f}",
             row.max_iops, _format_capacity(row.capacity_bytes), row.vm_type, row.region]
            for row in rows]
    return format_table(headers, body)


register(scenario(
    "table1",
    "Paper Table I: device configurations (static -- rendered from profiles, "
    "no simulation cells)",
    devices=("SSD", "ESSD-1", "ESSD-2"),
    tags=("paper", "static"),
    cell_builder=lambda: [],
))


def _format_iops(iops: float) -> str:
    if iops >= 1000:
        return f"{iops / 1000:.1f}K".replace(".0K", "K")
    return f"{iops:.0f}"


def _format_capacity(capacity: int) -> str:
    if capacity >= GiB:
        return f"{capacity / GiB:.1f} GiB (scaled)"
    return f"{capacity / (1 << 20):.0f} MiB (scaled)"
