"""Figure 2: latency of the ESSDs versus the local SSD (the latency gap).

The paper's Figure 2 is a grid over four access patterns, I/O sizes from
4 KiB to 256 KiB, and queue depths from 1 to 16, with two metrics (average
and P99.9 latency) per ESSD.  Each pixel shows the ESSD latency and its gap
(ESSD / SSD) relative to the local SSD at the same workload point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import DeviceKind, ExperimentScale, format_table
from repro.experiments.scenarios import register, scenario
from repro.experiments.sweep import CellSpec, SweepRunner
from repro.host.io import KiB
from repro.metrics.stats import latency_gap

#: The four access patterns of Figure 2, in paper order.
PATTERNS = ("randwrite", "write", "randread", "read")
PATTERN_LABELS = {
    "randwrite": "Random Write",
    "write": "Sequential Write",
    "randread": "Random Read",
    "read": "Sequential Read",
}
#: Full paper grid.
PAPER_IO_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB)
PAPER_QUEUE_DEPTHS = (1, 2, 4, 8, 16)
#: Reduced grid used by default to keep the benchmark harness quick.
DEFAULT_IO_SIZES = (4 * KiB, 64 * KiB, 256 * KiB)
DEFAULT_QUEUE_DEPTHS = (1, 4, 16)


@dataclass(frozen=True)
class LatencyCell:
    """One pixel of Figure 2."""

    device: DeviceKind
    pattern: str
    io_size: int
    queue_depth: int
    mean_us: float
    p999_us: float

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.pattern, self.io_size, self.queue_depth)


@dataclass
class Figure2Result:
    """All measured cells plus gap computation against the SSD baseline."""

    cells: list[LatencyCell] = field(default_factory=list)
    io_sizes: tuple[int, ...] = DEFAULT_IO_SIZES
    queue_depths: tuple[int, ...] = DEFAULT_QUEUE_DEPTHS

    def cell(self, device: DeviceKind, pattern: str, io_size: int,
             queue_depth: int) -> LatencyCell:
        for cell in self.cells:
            if (cell.device is device and cell.pattern == pattern
                    and cell.io_size == io_size and cell.queue_depth == queue_depth):
                return cell
        raise KeyError((device, pattern, io_size, queue_depth))

    def gap(self, device: DeviceKind, pattern: str, io_size: int,
            queue_depth: int, metric: str = "mean") -> float:
        """ESSD/SSD latency gap for one pixel (metric: 'mean' or 'p999')."""
        essd = self.cell(device, pattern, io_size, queue_depth)
        ssd = self.cell(DeviceKind.SSD, pattern, io_size, queue_depth)
        if metric == "mean":
            return latency_gap(essd.mean_us, ssd.mean_us)
        if metric == "p999":
            return latency_gap(essd.p999_us, ssd.p999_us)
        raise ValueError(f"unknown metric {metric!r}")

    def max_gap(self, device: DeviceKind, metric: str = "mean") -> float:
        """Largest gap over the whole grid for one ESSD."""
        gaps = [self.gap(device, cell.pattern, cell.io_size, cell.queue_depth, metric)
                for cell in self.cells if cell.device is device]
        return max(gaps) if gaps else 0.0

    def gap_by_pattern(self, device: DeviceKind, pattern: str,
                       metric: str = "mean") -> list[float]:
        return [self.gap(device, pattern, cell.io_size, cell.queue_depth, metric)
                for cell in self.cells
                if cell.device is device and cell.pattern == pattern]

    def render(self, device: DeviceKind, metric: str = "mean") -> str:
        """Text rendering of one panel (one ESSD, one metric), paper-style."""
        headers = ["Pattern", "QD"] + [f"{size // KiB}KiB" for size in self.io_sizes]
        rows = []
        for pattern in PATTERNS:
            for queue_depth in self.queue_depths:
                row = [PATTERN_LABELS[pattern], str(queue_depth)]
                for io_size in self.io_sizes:
                    gap = self.gap(device, pattern, io_size, queue_depth, metric)
                    cell = self.cell(device, pattern, io_size, queue_depth)
                    value = cell.mean_us if metric == "mean" else cell.p999_us
                    row.append(f"{gap:.1f}x ({_format_latency(value)})")
                rows.append(row)
        title = f"{metric.upper()} latency of {device.value} (gap vs SSD in parentheses: ESSD us)"
        return title + "\n" + format_table(headers, rows)


def _format_latency(value_us: float) -> str:
    if value_us >= 1000:
        return f"{value_us / 1000:.1f}m"
    return f"{value_us:.0f}u"


def figure2_cells(scale: Optional[ExperimentScale] = None,
                  io_sizes: Sequence[int] = DEFAULT_IO_SIZES,
                  queue_depths: Sequence[int] = DEFAULT_QUEUE_DEPTHS,
                  ios_per_cell: int = 250,
                  devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                   DeviceKind.ESSD2),
                  patterns: Sequence[str] = PATTERNS) -> list[CellSpec]:
    """The Figure 2 grid as independent sweep cells."""
    scale = scale or ExperimentScale.default()
    cells = []
    for device in devices:
        for pattern in patterns:
            for io_size in io_sizes:
                for queue_depth in queue_depths:
                    cells.append(CellSpec(
                        device=device.value,
                        pattern=pattern,
                        io_size=io_size,
                        queue_depth=queue_depth,
                        io_count=max(ios_per_cell, queue_depth * 20),
                        seed=17,
                        preload=pattern.endswith("read"),
                        ssd_capacity_bytes=scale.ssd_capacity_bytes,
                        essd_capacity_bytes=scale.essd_capacity_bytes,
                        labels=(("device", device.value), ("io_size", io_size),
                                ("pattern", pattern), ("queue_depth", queue_depth)),
                    ))
    return cells


def run_figure2(scale: Optional[ExperimentScale] = None,
                io_sizes: Sequence[int] = DEFAULT_IO_SIZES,
                queue_depths: Sequence[int] = DEFAULT_QUEUE_DEPTHS,
                ios_per_cell: int = 250,
                devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                 DeviceKind.ESSD2),
                patterns: Sequence[str] = PATTERNS,
                runner: Optional[SweepRunner] = None) -> Figure2Result:
    """Measure the Figure 2 latency grid through the sweep runner.

    The default grid is reduced relative to the paper's (3 sizes x 3 queue
    depths instead of 4 x 5) to keep the harness fast; pass
    ``io_sizes=PAPER_IO_SIZES, queue_depths=PAPER_QUEUE_DEPTHS`` for the full
    grid.  Pass a parallel :class:`SweepRunner` to spread cells over worker
    processes and/or cache results.
    """
    cells = figure2_cells(scale, io_sizes, queue_depths, ios_per_cell,
                          devices, patterns)
    sweep = (runner or SweepRunner()).run_cells("figure2", cells)
    result = Figure2Result(io_sizes=tuple(io_sizes), queue_depths=tuple(queue_depths))
    for outcome in sweep.outcomes:
        labels = outcome.params
        result.cells.append(LatencyCell(
            device=DeviceKind(labels["device"]),
            pattern=labels["pattern"],
            io_size=labels["io_size"],
            queue_depth=labels["queue_depth"],
            mean_us=outcome.metrics["mean_us"],
            p999_us=outcome.metrics["p999_us"],
        ))
    return result


register(scenario(
    "figure2",
    "Paper Figure 2: ESSD vs SSD latency grid (pattern x size x depth)",
    devices=("SSD", "ESSD-1", "ESSD-2"),
    tags=("paper", "latency"),
    cell_builder=lambda: figure2_cells(
        ExperimentScale.small(), io_sizes=(4 * KiB, 262144),
        queue_depths=(1, 8), ios_per_cell=80),
))
