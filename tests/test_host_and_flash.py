"""Tests for the host I/O abstractions and the flash substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.host.io import IOKind, IORequest, KiB
from repro.host.queue import SubmissionQueue
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.host.io import MiB


# ---------------------------------------------------------------------------
# IORequest
# ---------------------------------------------------------------------------

def test_iorequest_constructors_and_properties():
    read = IORequest.read(4096, 8192)
    write = IORequest.write(0, 4096)
    flush = IORequest.flush()
    assert read.kind is IOKind.READ and read.end_offset == 4096 + 8192
    assert write.kind.is_write and not write.kind.is_read
    assert flush.size == 0
    assert read.request_id != write.request_id


def test_iorequest_rejects_invalid_sizes():
    with pytest.raises(ValueError):
        IORequest.read(0, 0)
    with pytest.raises(ValueError):
        IORequest.read(-4096, 4096)
    with pytest.raises(ValueError):
        IORequest(IOKind.WRITE, 0, -1)


def test_iorequest_latency_requires_completion():
    request = IORequest.read(0, 4096)
    with pytest.raises(ValueError):
        _ = request.latency
    request.submit_time = 10.0
    request.complete_time = 60.0
    assert request.latency == 50.0
    assert request.is_completed


def test_iorequest_overlap_detection():
    a = IORequest.write(0, 8192)
    b = IORequest.write(4096, 8192)
    c = IORequest.write(8192, 4096)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


# ---------------------------------------------------------------------------
# BlockDevice validation (via the SSD implementation)
# ---------------------------------------------------------------------------

def test_device_rejects_unaligned_and_out_of_range_io():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(128 * MiB))
    with pytest.raises(ValueError):
        device.read(100, 4096)
    with pytest.raises(ValueError):
        device.read(0, 1000)
    with pytest.raises(ValueError):
        device.read(device.capacity_bytes, 4096)


def test_device_stats_accumulate():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(128 * MiB))

    def proc():
        yield device.write(0, 8192)
        yield device.read(0, 4096)
        yield device.flush()

    sim.process(proc())
    sim.run()
    assert device.stats.writes_completed == 1
    assert device.stats.reads_completed == 1
    assert device.stats.flushes_completed == 1
    assert device.stats.bytes_written == 8192
    assert device.stats.bytes_read == 4096


def test_submission_queue_bounds_outstanding_requests():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(128 * MiB))
    queue = SubmissionQueue(sim, device, depth=2)
    peaks = []

    def submitter(i):
        request = IORequest.read(i * 4096, 4096)
        peaks.append(queue.outstanding)
        yield sim.process(queue.submit(request))

    device.preload()
    for i in range(8):
        sim.process(submitter(i))
    sim.run()
    assert queue.completed == 8
    assert max(peaks) <= 2


def test_submission_queue_invalid_depth():
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(128 * MiB))
    with pytest.raises(ValueError):
        SubmissionQueue(sim, device, depth=0)


# ---------------------------------------------------------------------------
# Flash geometry / timing
# ---------------------------------------------------------------------------

def test_geometry_derived_quantities():
    geometry = FlashGeometry(channels=2, dies_per_channel=2, planes_per_die=2,
                             blocks_per_plane=4, pages_per_block=8, page_size=16 * KiB)
    assert geometry.total_dies == 4
    assert geometry.blocks_per_die == 8
    assert geometry.block_size == 8 * 16 * KiB
    assert geometry.physical_capacity == 4 * 2 * 4 * 8 * 16 * KiB
    assert geometry.die_index(1, 1) == 3
    assert geometry.channel_of_die(3) == 1
    assert "2ch" in geometry.describe()


def test_geometry_validation():
    with pytest.raises(ValueError):
        FlashGeometry(channels=0)
    geometry = FlashGeometry()
    with pytest.raises(ValueError):
        geometry.die_index(99, 0)
    with pytest.raises(ValueError):
        geometry.channel_of_die(10_000)


def test_timing_latency_components():
    timing = FlashTiming(read_us=50, program_us=300, erase_us=2000,
                         channel_bytes_per_us=500, command_overhead_us=2)
    assert timing.transfer_us(1000) == pytest.approx(2.0)
    assert timing.read_latency_us(1000) == pytest.approx(54.0)
    assert timing.program_latency_us(1000) == pytest.approx(304.0)
    with pytest.raises(ValueError):
        timing.transfer_us(-1)
    with pytest.raises(ValueError):
        FlashTiming(channel_bytes_per_us=0)


def test_flash_array_die_serialisation_and_channel_sharing():
    sim = Simulator()
    geometry = FlashGeometry(channels=1, dies_per_channel=2, planes_per_die=1,
                             blocks_per_plane=2, pages_per_block=4, page_size=16 * KiB)
    timing = FlashTiming(read_us=50, program_us=300, erase_us=1000,
                         channel_bytes_per_us=1600, command_overhead_us=0)
    array = FlashArray(sim, geometry, timing)
    finish = {}

    def reads_same_die():
        yield from array.read_page(0, 16 * KiB)
        yield from array.read_page(0, 16 * KiB)
        finish["same_die"] = sim.now

    sim.process(reads_same_die())
    sim.run()
    # Two serialized reads on one die: 2 * (50 + 10.24).
    assert finish["same_die"] == pytest.approx(2 * (50 + 16 * KiB / 1600), rel=1e-3)

    sim2 = Simulator()
    array2 = FlashArray(sim2, geometry, timing)
    done = []

    def one_read(die):
        yield from array2.read_page(die, 16 * KiB)
        done.append(sim2.now)

    sim2.process(one_read(0))
    sim2.process(one_read(1))
    sim2.run()
    # Different dies overlap their tR; only the channel transfer serialises.
    assert max(done) < 2 * (50 + 16 * KiB / 1600)


def test_flash_array_counters_and_bounds():
    sim = Simulator()
    geometry = FlashGeometry(channels=1, dies_per_channel=1, planes_per_die=2,
                             blocks_per_plane=2, pages_per_block=4, page_size=16 * KiB)
    array = FlashArray(sim, geometry, FlashTiming())

    def ops():
        yield from array.program_page(0, 32 * KiB, planes=2)
        yield from array.erase_block(0)

    sim.process(ops())
    sim.run()
    assert array.stats.programs == 1
    assert array.stats.erases == 1
    assert array.stats.bytes_programmed == 32 * KiB
    assert array.peak_read_bandwidth() > 0
    assert array.peak_program_bandwidth() > 0
    with pytest.raises(ValueError):
        list(array.program_page(0, 16 * KiB, planes=3))
    with pytest.raises(ValueError):
        array.die_queue_length(5)


@settings(max_examples=25, deadline=None)
@given(offset_blocks=st.integers(min_value=0, max_value=1000),
       size_blocks=st.integers(min_value=1, max_value=64))
def test_request_roundtrip_properties(offset_blocks, size_blocks):
    """Property: end_offset - offset == size and overlap is reflexive."""
    request = IORequest.write(offset_blocks * 4096, size_blocks * 4096)
    assert request.end_offset - request.offset == request.size
    assert request.overlaps(request)
