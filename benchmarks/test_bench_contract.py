"""Benchmark: run the full contract checker against both ESSD profiles."""

import pytest

from benchmarks.conftest import run_once
from repro.core import CheckerConfig, ContractChecker
from repro.ebs import alibaba_pl3_profile, aws_io2_profile
from repro.host.io import MiB


CONFIG = CheckerConfig(
    ssd_capacity_bytes=256 * MiB,
    essd_capacity_bytes=384 * MiB,
    latency_ios=150,
    gc_write_capacity_factor=1.6,
    throughput_window_us=80_000.0,
)


@pytest.mark.parametrize("profile_fn", [aws_io2_profile, alibaba_pl3_profile],
                         ids=["ESSD-1", "ESSD-2"])
def test_bench_contract_checker(benchmark, profile_fn):
    checker = ContractChecker(essd_profile=profile_fn(), config=CONFIG)
    report = run_once(benchmark, checker.run)
    assert report.holds, report.summary()
    print("\n" + report.summary())
