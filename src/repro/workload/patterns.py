"""Address-pattern generators for workloads.

A pattern produces ``(kind, offset)`` pairs given an I/O size and a target
address range.  The four FIO patterns the paper uses map to:

* ``randread`` / ``randwrite`` -- :class:`RandomPattern`
* ``read`` / ``write`` (sequential) -- :class:`SequentialPattern`
* ``randrw`` with a write percentage -- :class:`MixedPattern` wrapping a
  random pattern.

Beyond the paper's grid, the scenario-sweep subsystem
(:mod:`repro.experiments.scenarios`) exercises skewed and bursty workloads:

* :class:`ZipfianPattern` -- Zipf-skewed offsets (``zipfread`` /
  ``zipfwrite`` / ``zipfrw``);
* :class:`HotColdPattern` -- a hot set absorbing most accesses
  (``hotcoldread`` / ``hotcoldwrite`` / ``hotcoldrw``);
* :class:`BurstyPattern` -- on/off bursts with a configurable duty cycle
  (``bursty-<base>`` wrapping any base pattern), driven through the
  :meth:`AccessPattern.next_think_time_us` hook;
* :class:`MixedPattern` -- generalised: any base pattern can carry a write
  ratio (``randrw``, ``seqrw``, ``zipfrw``, ``hotcoldrw``), enabling
  read/write-ratio sweeps over arbitrary address distributions.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

import numpy as np

from repro.host.io import IOKind


class AccessPattern(abc.ABC):
    """Produces the offsets (and kinds) of a workload's requests."""

    def __init__(self, region_bytes: int, io_size: int, region_offset: int = 0):
        if io_size <= 0:
            raise ValueError("io_size must be positive")
        if region_bytes < io_size:
            raise ValueError("region must be at least one I/O in size")
        self.region_bytes = region_bytes
        self.io_size = io_size
        self.region_offset = region_offset
        self.slots = region_bytes // io_size

    @abc.abstractmethod
    def next_offset(self) -> int:
        """The byte offset of the next request."""

    def next_kind(self) -> IOKind:
        """The kind of the next request (patterns are single-kind by default)."""
        return IOKind.READ

    def next_think_time_us(self) -> float:
        """Extra delay the workload inserts *before* the next request.

        Most patterns issue back-to-back (0.0); bursty patterns use this hook
        to model off-phases.  ``run_job`` adds the value on top of the job's
        own ``think_time_us``.
        """
        return 0.0

    def next(self) -> tuple[IOKind, int]:
        """Convenience: (kind, offset) of the next request."""
        return self.next_kind(), self.next_offset()


class SequentialPattern(AccessPattern):
    """Strictly increasing offsets, wrapping at the end of the region."""

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, start_slot: int = 0):
        super().__init__(region_bytes, io_size, region_offset)
        self.kind = kind
        self._cursor = start_slot % self.slots

    def next_offset(self) -> int:
        offset = self.region_offset + self._cursor * self.io_size
        self._cursor = (self._cursor + 1) % self.slots
        return offset

    def next_kind(self) -> IOKind:
        return self.kind

    def next(self) -> tuple[IOKind, int]:
        # Hot-path inline of next_kind()/next_offset() (identical results).
        offset = self.region_offset + self._cursor * self.io_size
        self._cursor = (self._cursor + 1) % self.slots
        return self.kind, offset


class RandomPattern(AccessPattern):
    """Uniformly random aligned offsets."""

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, seed: int = 0):
        super().__init__(region_bytes, io_size, region_offset)
        self.kind = kind
        self._rng = random.Random(seed)

    def next_offset(self) -> int:
        return self.region_offset + self._rng.randrange(self.slots) * self.io_size

    def next_kind(self) -> IOKind:
        return self.kind

    def next(self) -> tuple[IOKind, int]:
        # Hot-path inline of next_kind()/next_offset(): one RNG draw in the
        # same order, two fewer method dispatches per I/O.
        return (self.kind,
                self.region_offset + self._rng.randrange(self.slots) * self.io_size)


class ZipfianPattern(AccessPattern):
    """Zipf-skewed offsets (hot spots), as produced by many real applications."""

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, seed: int = 0, theta: float = 1.1):
        super().__init__(region_bytes, io_size, region_offset)
        if theta <= 1.0:
            raise ValueError("theta must be > 1 for a proper Zipf distribution")
        self.kind = kind
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        # A fixed permutation decorrelates rank from address.
        self._permutation = np.random.default_rng(seed + 7).permutation(self.slots)

    def next_offset(self) -> int:
        rank = int(self._rng.zipf(self.theta))
        slot = self._permutation[(rank - 1) % self.slots]
        return self.region_offset + int(slot) * self.io_size

    def next_kind(self) -> IOKind:
        return self.kind


class HotColdPattern(AccessPattern):
    """Skewed random offsets: a small *hot set* absorbs most accesses.

    ``hot_fraction`` of the region (a contiguous-slot set scattered by a
    seeded permutation) receives ``hot_access_fraction`` of the requests; the
    remainder go uniformly to the cold set.  The classic 90/10 locality rule
    is the default.
    """

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, seed: int = 0,
                 hot_fraction: float = 0.1, hot_access_fraction: float = 0.9):
        super().__init__(region_bytes, io_size, region_offset)
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 <= hot_access_fraction <= 1.0:
            raise ValueError("hot_access_fraction must be in [0, 1]")
        self.kind = kind
        self.hot_fraction = hot_fraction
        self.hot_access_fraction = hot_access_fraction
        self._rng = random.Random(seed)
        self._hot_slots = max(1, int(self.slots * hot_fraction))
        # Scatter the hot set over the address space so it does not coincide
        # with a physically contiguous range.
        self._permutation = np.random.default_rng(seed + 13).permutation(self.slots)

    def next_offset(self) -> int:
        if self._rng.random() < self.hot_access_fraction:
            slot_rank = self._rng.randrange(self._hot_slots)
        else:
            cold_slots = self.slots - self._hot_slots
            if cold_slots <= 0:
                slot_rank = self._rng.randrange(self._hot_slots)
            else:
                slot_rank = self._hot_slots + self._rng.randrange(cold_slots)
        return self.region_offset + int(self._permutation[slot_rank]) * self.io_size

    def next_kind(self) -> IOKind:
        return self.kind


class BurstyPattern(AccessPattern):
    """On/off bursts: ``burst_ios`` back-to-back requests, then an idle gap.

    The off-phase is injected through :meth:`next_think_time_us` before the
    first request of each new burst.  ``duty_cycle`` (on-time fraction) can be
    given instead of an explicit ``idle_us``: with an estimated per-I/O
    service time the idle gap is ``burst_ios * service_estimate_us *
    (1 - duty_cycle) / duty_cycle``.

    Like FIO's ``thinktime``, the on/off phases are per worker *stream*: with
    ``queue_depth > 1`` the workers share this pattern's burst counter, only
    the worker that crosses the burst boundary pauses, and the device never
    goes fully idle.  Use ``queue_depth=1`` when the workload should produce
    true device-level on/off arrival bursts.
    """

    def __init__(self, base: AccessPattern, burst_ios: int = 64,
                 idle_us: Optional[float] = None,
                 duty_cycle: Optional[float] = None,
                 service_estimate_us: float = 100.0):
        super().__init__(base.region_bytes, base.io_size, base.region_offset)
        if burst_ios < 1:
            raise ValueError("burst_ios must be >= 1")
        if idle_us is None:
            if duty_cycle is None:
                raise ValueError("give either idle_us or duty_cycle")
            if not 0.0 < duty_cycle <= 1.0:
                raise ValueError("duty_cycle must be in (0, 1]")
            idle_us = burst_ios * service_estimate_us * (1.0 - duty_cycle) / duty_cycle
        if idle_us < 0:
            raise ValueError("idle_us must be non-negative")
        self.base = base
        self.burst_ios = burst_ios
        self.idle_us = float(idle_us)
        self._issued_in_burst = 0

    def next_think_time_us(self) -> float:
        if self._issued_in_burst >= self.burst_ios:
            self._issued_in_burst = 0
            return self.idle_us
        return 0.0

    def next_offset(self) -> int:
        self._issued_in_burst += 1
        return self.base.next_offset()

    def next_kind(self) -> IOKind:
        return self.base.next_kind()


class MixedPattern(AccessPattern):
    """Wraps a base pattern and flips each request to WRITE with a probability."""

    def __init__(self, base: AccessPattern, write_ratio: float, seed: int = 0):
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        super().__init__(base.region_bytes, base.io_size, base.region_offset)
        self.base = base
        self.write_ratio = write_ratio
        self._rng = random.Random(seed)

    def next_offset(self) -> int:
        return self.base.next_offset()

    def next_kind(self) -> IOKind:
        return IOKind.WRITE if self._rng.random() < self.write_ratio else IOKind.READ

    def next_think_time_us(self) -> float:
        return self.base.next_think_time_us()

    def next(self) -> tuple[IOKind, int]:
        # Hot-path inline preserving the kind-then-offset RNG draw order.
        kind = IOKind.WRITE if self._rng.random() < self.write_ratio else IOKind.READ
        return kind, self.base.next_offset()


#: (read name, write name, mixed name) -> base pattern class, for make_pattern.
_FAMILIES = {
    "read": ("read", "write", "seqrw"),
    "rand": ("randread", "randwrite", "randrw"),
    "zipf": ("zipfread", "zipfwrite", "zipfrw"),
    "hotcold": ("hotcoldread", "hotcoldwrite", "hotcoldrw"),
}


def make_pattern(name: str, region_bytes: int, io_size: int,
                 write_ratio: Optional[float] = None, seed: int = 0,
                 region_offset: int = 0, **params) -> AccessPattern:
    """Build a pattern from a FIO-style name.

    Supported names: ``read``, ``write``, ``randread``, ``randwrite``,
    ``zipfread``, ``zipfwrite``, ``hotcoldread``, ``hotcoldwrite``, and the
    mixed variants ``randrw``, ``seqrw``, ``zipfrw``, ``hotcoldrw`` (each
    requires ``write_ratio``).  Any name may be prefixed with ``bursty-`` to
    wrap the pattern in on/off bursts.  ``params`` forwards pattern-specific
    knobs (``theta`` for Zipfian, ``hot_fraction`` / ``hot_access_fraction``
    for hot/cold, ``burst_ios`` / ``idle_us`` / ``duty_cycle`` /
    ``service_estimate_us`` for bursty).
    """
    name = name.lower()
    if name.startswith("bursty-"):
        burst_keys = ("burst_ios", "idle_us", "duty_cycle", "service_estimate_us")
        burst_params = {key: params.pop(key) for key in burst_keys if key in params}
        base = make_pattern(name[len("bursty-"):], region_bytes, io_size,
                            write_ratio=write_ratio, seed=seed,
                            region_offset=region_offset, **params)
        return BurstyPattern(base, **burst_params)

    def build(kind: IOKind) -> AccessPattern:
        if name in ("read", "write", "seqrw"):
            return SequentialPattern(region_bytes, io_size, kind, region_offset,
                                     **params)
        if name in ("randread", "randwrite", "randrw"):
            return RandomPattern(region_bytes, io_size, kind, region_offset, seed)
        if name in ("zipfread", "zipfwrite", "zipfrw"):
            return ZipfianPattern(region_bytes, io_size, kind, region_offset, seed,
                                  **params)
        if name in ("hotcoldread", "hotcoldwrite", "hotcoldrw"):
            return HotColdPattern(region_bytes, io_size, kind, region_offset, seed,
                                  **params)
        raise ValueError(f"unknown pattern name: {name!r}")

    mixed_names = {family[2] for family in _FAMILIES.values()}
    if name in mixed_names:
        if write_ratio is None:
            raise ValueError(f"{name} requires a write_ratio")
        return MixedPattern(build(IOKind.READ), write_ratio, seed=seed + 1)
    kind = IOKind.WRITE if name.endswith("write") else IOKind.READ
    return build(kind)
