#!/usr/bin/env python3
"""Implications 1 and 5: batch your I/Os, and reconsider compression on ESSDs.

Part 1 measures the ESSD's latency at several I/O sizes, fits the advisor's
latency-cost model, and prints the recommended I/O size / queue depth for an
application currently doing 4 KiB synchronous writes.

Part 2 evaluates an lz4-like and a zstd-like compressor on both the local SSD
and the ESSD, showing that the CPU cost that hurts on the local SSD is
irrelevant on the ESSD -- where it also shrinks the throughput budget needed.

Usage::

    python examples/io_scaling_and_reduction.py
"""

from repro.ebs import EssdDevice, aws_io2_profile
from repro.host.io import KiB, MiB
from repro.implications import IoReductionEvaluator, IoScalingAdvisor
from repro.implications.reduction import (
    DENSE_COMPRESSION,
    FAST_COMPRESSION,
    DeviceLatencyModel,
)
from repro.sim import Simulator
from repro.workload import FioJob, run_job


def measure_latency_curve(profile, sizes):
    """Mean write latency (us) at each I/O size, measured on a fresh volume."""
    curve = []
    for io_size in sizes:
        sim = Simulator()
        device = EssdDevice(sim, profile)
        job = FioJob(name="curve", pattern="randwrite", io_size=io_size,
                     queue_depth=1, io_count=150)
        result = run_job(sim, device, job)
        curve.append((io_size, result.latency.mean()))
        print(f"  {io_size // KiB:>4d} KiB -> {result.latency.mean():7.1f} us")
    return curve


def main() -> None:
    profile = aws_io2_profile(512 * MiB)

    print("Part 1 -- Implication 1: scale I/Os up")
    print("Measured ESSD-1 write latency vs I/O size (QD1):")
    curve = measure_latency_curve(profile, (4 * KiB, 32 * KiB, 128 * KiB, 256 * KiB))
    advisor = IoScalingAdvisor.from_measurements(
        curve, throughput_budget_gbps=profile.max_throughput_gbps)
    recommendation = advisor.recommend(current_io_size=4 * KiB, current_queue_depth=1,
                                       target_efficiency=0.5,
                                       latency_ceiling_us=2_000.0)
    print(f"Fitted cost model: {advisor.model.fixed_us:.0f} us fixed + "
          f"{advisor.model.bytes_per_us:.0f} B/us streaming")
    print("Recommendation:", recommendation.describe())

    print("\nPart 2 -- Implication 5: re-evaluate I/O reduction")
    essd_eval = IoReductionEvaluator(
        DeviceLatencyModel("ESSD-1", base_latency_us=advisor.model.fixed_us,
                           per_kib_us=1024 / advisor.model.bytes_per_us,
                           throughput_budget_gbps=profile.max_throughput_gbps),
        io_size=16 * KiB)
    ssd_eval = IoReductionEvaluator(
        DeviceLatencyModel("local SSD", base_latency_us=9.0, per_kib_us=0.38),
        io_size=16 * KiB)

    for technique in (FAST_COMPRESSION, DENSE_COMPRESSION):
        essd_result, ssd_result = essd_eval.compare_devices(
            technique, ssd_eval, offered_load_gbps=2.0)
        print(f"\n  {technique.name} (ratio {technique.reduction_ratio:.2f}):")
        for outcome in (ssd_result, essd_result):
            verdict = "adopt" if outcome.recommended else "skip"
            budget = ("" if outcome.budget_saving_gbps is None
                      else f", budget saving {outcome.budget_saving_gbps:.2f} GB/s")
            print(f"    {outcome.device:10s} latency {outcome.baseline_latency_us:7.1f}"
                  f" -> {outcome.reduced_latency_us:7.1f} us "
                  f"({outcome.latency_change:+.1%}){budget}  => {verdict}")


if __name__ == "__main__":
    main()
