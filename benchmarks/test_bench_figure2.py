"""Benchmark: regenerate Figure 2 (latency and the ESSD/SSD latency gap)."""

from benchmarks.conftest import run_once
from repro.experiments import DeviceKind, ExperimentScale, run_figure2
from repro.host.io import KiB


def test_bench_figure2_latency_grid(benchmark):
    result = run_once(
        benchmark, run_figure2, ExperimentScale.default(),
        io_sizes=(4 * KiB, 64 * KiB, 256 * KiB),
        queue_depths=(1, 16),
        ios_per_cell=200,
    )
    # Observation 1: the gap is large when I/Os are small and shallow, and it
    # shrinks once I/Os are scaled up.
    for essd in (DeviceKind.ESSD1, DeviceKind.ESSD2):
        assert result.gap(essd, "randwrite", 4 * KiB, 1) > 8.0
        assert result.gap(essd, "randwrite", 256 * KiB, 1) \
            < result.gap(essd, "randwrite", 4 * KiB, 1)
        assert result.gap(essd, "randread", 4 * KiB, 1) \
            < result.gap(essd, "read", 4 * KiB, 1)
    for essd in (DeviceKind.ESSD1, DeviceKind.ESSD2):
        print("\n" + result.render(essd, "mean"))
        print("\n" + result.render(essd, "p999"))
