"""repro: reproduction of "The Unwritten Contract of Cloud-based Elastic SSDs".

The package contains:

* :mod:`repro.sim` -- the discrete-event simulation kernel.
* :mod:`repro.flash`, :mod:`repro.ssd` -- the local flash SSD substrate.
* :mod:`repro.ebs` -- the elastic block storage / ESSD substrate.
* :mod:`repro.host`, :mod:`repro.workload`, :mod:`repro.metrics` -- the host
  I/O stack, FIO-like workload generation, and measurement utilities.
* :mod:`repro.core` -- the unwritten contract and its checker (the paper's
  primary contribution).
* :mod:`repro.implications` -- advisors implementing the five implications.
* :mod:`repro.experiments` -- the harness regenerating Table I and
  Figures 2-5.
"""

from repro.core import UNWRITTEN_CONTRACT, ContractChecker
from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.host import BlockDevice, IOKind, IORequest
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.workload import FioJob, run_job

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "BlockDevice",
    "IOKind",
    "IORequest",
    "SsdDevice",
    "samsung_970pro_profile",
    "EssdDevice",
    "aws_io2_profile",
    "alibaba_pl3_profile",
    "FioJob",
    "run_job",
    "UNWRITTEN_CONTRACT",
    "ContractChecker",
]
