"""Benchmark: regenerate Figure 5 (mixed read/write throughput vs write ratio)."""

from benchmarks.conftest import run_once
from repro.experiments import DeviceKind, ExperimentScale, run_figure5


def test_bench_figure5_mixed_ratio_throughput(benchmark):
    result = run_once(benchmark, run_figure5, ExperimentScale.default(),
                      write_ratios=(0, 25, 50, 75, 100), ios_per_point=800)
    # Observation 4: the ESSDs sit flat at their budgets across every write
    # ratio, while the SSD's total throughput moves with the mix.
    for essd in (DeviceKind.ESSD1, DeviceKind.ESSD2):
        assert result.determinism_cv(essd) < 0.10
        assert result.within_budget(essd)
    assert result.determinism_cv(DeviceKind.SSD) > result.determinism_cv(DeviceKind.ESSD1)
    print("\n" + result.render())
