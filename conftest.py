"""Root pytest configuration: a per-test wall-clock timeout guard.

A simulator bug that stalls the event loop (e.g. a zero-delay wakeup cycle)
used to freeze the whole suite.  Per-test timeouts turn such hangs into
failures within seconds.  When the ``pytest-timeout`` plugin is installed
(``pip install .[test]``) it provides the enforcement; this module is a
dependency-free fallback for environments without it, implementing the same
``timeout`` ini option and ``@pytest.mark.timeout(seconds)`` marker with a
SIGALRM-based interrupt (POSIX main thread only -- exactly where this suite
runs).
"""

from __future__ import annotations

import importlib.util
import signal

import pytest

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


class SuiteTimeout(Exception):
    """Raised inside a test that exceeded its wall-clock budget."""


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addini(
            "timeout",
            "Per-test timeout in seconds (fallback implementation; install "
            "pytest-timeout for the full-featured plugin)",
            default="0",
        )


def pytest_configure(config):
    if not _HAVE_PYTEST_TIMEOUT:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): override the per-test wall-clock timeout",
        )


def _budget_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


# The legacy hookwrapper protocol keeps this fallback importable on old
# pytest versions (wrapper=True needs pytest >= 7.4, and minimal
# environments are exactly where this fallback runs).
@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _HAVE_PYTEST_TIMEOUT or not _HAVE_SIGALRM:
        # pytest-timeout enforces the budget itself; without SIGALRM
        # (non-POSIX) there is no safe interruption mechanism.
        yield
        return
    seconds = _budget_seconds(item)
    if seconds <= 0:
        yield
        return

    def _on_alarm(_signum, _frame):
        raise SuiteTimeout(
            f"{item.nodeid} exceeded the {seconds:.0f}s per-test timeout "
            "(fallback guard; see conftest.py)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
