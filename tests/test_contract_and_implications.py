"""Tests for the unwritten contract, its checker, and the implication advisors."""

import pytest

from repro.core import UNWRITTEN_CONTRACT, CheckerConfig, ContractChecker
from repro.core.contract import ObservationEvidence
from repro.host.io import KiB, MiB
from repro.implications import (
    GcAdaptationAdvisor,
    IoReductionEvaluator,
    IoScalingAdvisor,
    IoSmoother,
    LatencyCostModel,
    WritePatternAdvisor,
)
from repro.implications.gc_adaptation import WorkloadWriteProfile
from repro.implications.reduction import (
    DENSE_COMPRESSION,
    FAST_COMPRESSION,
    DeviceLatencyModel,
    ReductionTechnique,
)
from repro.workload import synthesize_bursty_trace, synthesize_uniform_trace


# ---------------------------------------------------------------------------
# Contract structure
# ---------------------------------------------------------------------------

def test_contract_has_four_observations_and_five_implications():
    assert len(UNWRITTEN_CONTRACT.observations) == 4
    assert len(UNWRITTEN_CONTRACT.implications) == 5
    assert UNWRITTEN_CONTRACT.observation(3).identifier == "O3"
    assert UNWRITTEN_CONTRACT.implication(5).identifier == "I5"
    with pytest.raises(KeyError):
        UNWRITTEN_CONTRACT.observation(9)
    with pytest.raises(KeyError):
        UNWRITTEN_CONTRACT.implication(0)


def test_every_implication_traces_back_to_an_observation():
    valid = {obs.number for obs in UNWRITTEN_CONTRACT.observations}
    for implication in UNWRITTEN_CONTRACT.implications:
        assert implication.derived_from
        assert set(implication.derived_from) <= valid
    assert UNWRITTEN_CONTRACT.implications_of(4)  # smoothing + reduction
    text = UNWRITTEN_CONTRACT.describe()
    assert "Observations" in text and "Implications" in text


def test_observation_evidence_truthiness():
    evidence = ObservationEvidence(UNWRITTEN_CONTRACT.observation(1), True, "ok")
    assert bool(evidence)
    assert not ObservationEvidence(UNWRITTEN_CONTRACT.observation(1), False, "nope")


# ---------------------------------------------------------------------------
# Contract checker (small scale so it stays fast)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def quick_checker():
    config = CheckerConfig(
        ssd_capacity_bytes=96 * MiB,
        essd_capacity_bytes=192 * MiB,
        latency_ios=120,
        gc_write_capacity_factor=1.5,
        throughput_window_us=60_000.0,
    )
    return ContractChecker(config=config)


def test_checker_observation_1_latency_gap(quick_checker):
    evidence = quick_checker.check_observation_1()
    assert evidence.holds
    assert evidence.metrics["small_4k_qd1"] > 10
    assert evidence.metrics["scaled_256k_qd1"] < evidence.metrics["small_4k_qd1"]


def test_checker_observation_3_write_pattern(quick_checker):
    evidence = quick_checker.check_observation_3()
    assert evidence.holds
    assert evidence.metrics["essd_gain"] > 1.15
    assert evidence.metrics["ssd_gain"] < 1.15


def test_checker_observation_4_determinism(quick_checker):
    evidence = quick_checker.check_observation_4()
    assert evidence.holds
    assert evidence.metrics["essd_cv"] < evidence.metrics["ssd_cv"]


def test_checker_report_aggregation(quick_checker):
    report = quick_checker.run(observations=[1, 3])
    assert len(report.evidence) == 2
    assert report.holds
    assert "O1" in report.summary()
    with pytest.raises(KeyError):
        report.evidence_for(4)
    with pytest.raises(ValueError):
        quick_checker.run(observations=[7])


# ---------------------------------------------------------------------------
# Implication 1: I/O scaling
# ---------------------------------------------------------------------------

def test_latency_cost_model_fit_and_efficiency():
    model = LatencyCostModel.fit([4 * KiB, 64 * KiB, 256 * KiB], [310.0, 500.0, 950.0])
    assert model.fixed_us > 200
    assert model.latency_us(4 * KiB) < model.latency_us(256 * KiB)
    assert 0 < model.efficiency(4 * KiB) < model.efficiency(256 * KiB) < 1
    size = model.size_for_efficiency(0.5)
    assert model.efficiency(size) == pytest.approx(0.5, rel=0.05)
    with pytest.raises(ValueError):
        LatencyCostModel(fixed_us=-1, bytes_per_us=1)
    with pytest.raises(ValueError):
        LatencyCostModel.fit([4096], [100.0])


def test_io_scaling_advisor_recommends_larger_ios():
    advisor = IoScalingAdvisor.from_measurements(
        [(4 * KiB, 330.0), (64 * KiB, 500.0), (256 * KiB, 950.0)],
        throughput_budget_gbps=3.0)
    rec = advisor.recommend(current_io_size=4 * KiB, current_queue_depth=1,
                            target_efficiency=0.5)
    assert rec.recommended_io_size > 4 * KiB
    assert rec.recommended_queue_depth >= 1
    assert rec.recommended_efficiency > rec.current_efficiency
    assert rec.throughput_speedup >= 1.0
    assert "scale I/O" in rec.describe()


def test_io_scaling_advisor_honours_latency_ceiling():
    advisor = IoScalingAdvisor(LatencyCostModel(fixed_us=300, bytes_per_us=400))
    rec = advisor.recommend(4 * KiB, 1, target_efficiency=0.9,
                            latency_ceiling_us=500.0)
    assert advisor.model.latency_us(rec.recommended_io_size) <= 500.0
    with pytest.raises(ValueError):
        advisor.recommend(4 * KiB, 1, target_efficiency=1.5)


# ---------------------------------------------------------------------------
# Implication 2: GC adaptation
# ---------------------------------------------------------------------------

def test_gc_advisor_drops_mitigation_when_no_cliff():
    advisor = GcAdaptationAdvisor(cliff_capacity_factor=None)
    advice = advisor.advise(WorkloadWriteProfile(daily_write_capacity_factor=0.5))
    assert not advice.keep_mitigation
    assert advice.estimated_gain_from_dropping > 0


def test_gc_advisor_keeps_mitigation_under_heavy_writes_on_local_ssd():
    advisor = GcAdaptationAdvisor(cliff_capacity_factor=0.9,
                                  post_cliff_throughput_fraction=0.3)
    heavy = WorkloadWriteProfile(daily_write_capacity_factor=1.0,
                                 overwrite_fraction=1.0, mitigation_overhead=0.05)
    advice = advisor.advise(heavy, planning_horizon_days=30)
    assert advice.keep_mitigation
    assert advice.days_to_cliff == pytest.approx(0.9, rel=0.01)


def test_gc_advisor_far_cliff_treated_like_none():
    advisor = GcAdaptationAdvisor(cliff_capacity_factor=2.55)
    light = WorkloadWriteProfile(daily_write_capacity_factor=0.01)
    advice = advisor.advise(light, planning_horizon_days=30)
    assert not advice.keep_mitigation
    with pytest.raises(ValueError):
        GcAdaptationAdvisor(cliff_capacity_factor=0)
    with pytest.raises(ValueError):
        WorkloadWriteProfile(daily_write_capacity_factor=-1)


# ---------------------------------------------------------------------------
# Implication 3: write pattern
# ---------------------------------------------------------------------------

def test_write_pattern_advisor_prefers_in_place_on_essd2_numbers():
    advisor = WritePatternAdvisor(random_gbps=1.05, sequential_gbps=0.38)
    advice = advisor.advise(sequentialization_write_amplification=1.3)
    assert not advice.keep_sequentializing
    assert advice.device_gain == pytest.approx(2.76, rel=0.01)
    assert advice.in_place_advantage > 3.0
    assert advisor.proactive_random_write_benefit(0.5) > 1.5


def test_write_pattern_advisor_keeps_log_structure_on_gc_sensitive_ssd():
    advisor = WritePatternAdvisor(random_gbps=2.4, sequential_gbps=2.4)
    advice = advisor.advise(gc_sensitive_device=True)
    assert advice.keep_sequentializing
    no_gain = advisor.advise(sequentialization_write_amplification=1.0)
    assert no_gain.keep_sequentializing  # 1.0x advantage is below the threshold
    with pytest.raises(ValueError):
        advisor.advise(sequentialization_write_amplification=0.5)
    with pytest.raises(KeyError):
        WritePatternAdvisor.from_gain_grid({}, 4096, 1)


# ---------------------------------------------------------------------------
# Implication 4: smoothing
# ---------------------------------------------------------------------------

def test_smoother_cuts_required_budget_for_bursty_traces():
    trace = synthesize_bursty_trace(duration_us=500_000, mean_load_gbps=0.4,
                                    burst_factor=8.0, burst_fraction=0.1, seed=7)
    smoother = IoSmoother(delay_tolerance_us=50_000.0)
    plan = smoother.plan(trace)
    assert plan.unshaped_peak_gbps > 2.0
    assert plan.shaped_budget_gbps < plan.unshaped_budget_gbps / 2
    assert plan.budget_saving > 0.5
    assert plan.max_shaping_delay_us <= plan.delay_tolerance_us * 1.05
    assert plan.monthly_cost_saving(100.0) > 0


def test_smoother_uniform_trace_needs_no_extra_budget():
    trace = synthesize_uniform_trace(duration_us=200_000, load_gbps=0.5, seed=8)
    plan = IoSmoother(delay_tolerance_us=20_000.0).plan(trace)
    assert plan.shaped_budget_gbps == pytest.approx(plan.mean_load_gbps, rel=0.2)
    assert plan.budget_saving >= 0.0


def test_smoother_shape_preserves_volume_and_respects_rate():
    trace = synthesize_bursty_trace(duration_us=300_000, mean_load_gbps=0.3,
                                    burst_factor=6.0, burst_fraction=0.1, seed=9)
    smoother = IoSmoother()
    shaped = smoother.shape(trace, rate_gbps=0.5)
    assert len(shaped) == len(trace)
    assert shaped.total_bytes == trace.total_bytes
    assert shaped.peak_load_gbps(5_000.0) <= 0.65  # ~rate plus binning noise
    with pytest.raises(ValueError):
        smoother.shape(trace, rate_gbps=0)
    with pytest.raises(ValueError):
        IoSmoother(headroom=0.5)


# ---------------------------------------------------------------------------
# Implication 5: I/O reduction
# ---------------------------------------------------------------------------

def essd_model():
    return DeviceLatencyModel("essd", base_latency_us=300.0, per_kib_us=2.0,
                              throughput_budget_gbps=3.0)


def ssd_model():
    return DeviceLatencyModel("ssd", base_latency_us=8.0, per_kib_us=0.4,
                              throughput_budget_gbps=None)


def test_reduction_beneficial_on_essd_but_not_on_fast_local_ssd():
    essd = IoReductionEvaluator(essd_model(), io_size=16 * KiB)
    ssd = IoReductionEvaluator(ssd_model(), io_size=16 * KiB)
    essd_result, ssd_result = essd.compare_devices(DENSE_COMPRESSION, ssd,
                                                   offered_load_gbps=2.0)
    assert essd_result.beneficial_for_performance
    assert essd_result.recommended
    assert essd_result.budget_saving_gbps > 0
    assert not ssd_result.beneficial_for_performance
    assert ssd_result.latency_change > essd_result.latency_change


def test_reduction_fast_compression_is_cheap_everywhere_but_saves_less():
    essd = IoReductionEvaluator(essd_model(), io_size=16 * KiB)
    fast = essd.assess(FAST_COMPRESSION, offered_load_gbps=2.0)
    dense = essd.assess(DENSE_COMPRESSION, offered_load_gbps=2.0)
    assert fast.budget_saving_gbps < dense.budget_saving_gbps
    assert fast.bandwidth_reduction < dense.bandwidth_reduction


def test_reduction_validation():
    with pytest.raises(ValueError):
        ReductionTechnique("bad", 0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        ReductionTechnique("bad", 1.5, 1.0, 1.0)
    with pytest.raises(ValueError):
        IoReductionEvaluator(essd_model(), io_size=0)
