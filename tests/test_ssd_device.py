"""End-to-end tests of the local SSD device model."""

import random

import pytest

from repro.host.io import KiB, MiB
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.ssd.config import SsdConfig
from repro.workload.fio import FioJob, run_job


def make_device(capacity=128 * MiB):
    sim = Simulator()
    device = SsdDevice(sim, samsung_970pro_profile(capacity))
    return sim, device


def test_profile_scaling_preserves_overprovisioning_band():
    for capacity in (128 * MiB, 512 * MiB, 2 * 1024 * MiB):
        config = samsung_970pro_profile(capacity)
        assert config.capacity_bytes == capacity
        assert 0.05 <= config.overprovisioning_ratio <= 0.40
        assert config.geometry.physical_capacity > capacity


def test_config_validation_rejects_nonsense():
    good = samsung_970pro_profile(128 * MiB)
    with pytest.raises(ValueError):
        SsdConfig(capacity_bytes=good.geometry.physical_capacity * 2,
                  geometry=good.geometry)
    with pytest.raises(ValueError):
        SsdConfig(capacity_bytes=-1)


def test_buffered_write_latency_is_order_of_magnitude_below_read():
    sim, device = make_device()
    device.preload()
    rng = random.Random(3)
    write_lat, read_lat = [], []

    def proc():
        for _ in range(100):
            offset = rng.randrange(device.capacity_bytes // 4096) * 4096
            request = yield device.write(offset, 4 * KiB)
            write_lat.append(request.latency)
        for _ in range(100):
            offset = rng.randrange(device.capacity_bytes // 4096) * 4096
            request = yield device.read(offset, 4 * KiB)
            read_lat.append(request.latency)

    sim.process(proc())
    sim.run()
    mean_write = sum(write_lat) / len(write_lat)
    mean_read = sum(read_lat) / len(read_lat)
    assert mean_write < 25.0          # buffered DRAM write, ~10 us
    assert 40.0 < mean_read < 110.0   # one flash read, ~60 us
    assert mean_read > 3 * mean_write


def test_sequential_reads_hit_the_prefetch_cache():
    sim, device = make_device()
    device.preload()
    latencies = []

    def proc():
        for index in range(200):
            request = yield device.read(index * 4 * KiB, 4 * KiB)
            latencies.append(request.latency)

    sim.process(proc())
    sim.run()
    warm = latencies[20:]
    assert sum(warm) / len(warm) < 30.0
    assert device.read_cache.hits > 100


def test_unmapped_reads_cost_no_flash_access():
    sim, device = make_device()
    flash_reads_before = device.flash.stats.reads

    def proc():
        yield device.read(0, 64 * KiB)

    sim.process(proc())
    sim.run()
    assert device.flash.stats.reads == flash_reads_before
    assert device.ftl.stats.unmapped_reads > 0


def test_flush_drains_the_write_buffer():
    sim, device = make_device()

    def proc():
        for index in range(64):
            yield device.write(index * 4096, 4096)
        yield device.flush()

    sim.process(proc())
    sim.run()
    assert device.write_buffer.is_empty()
    assert device.flash.stats.programs > 0


def test_trim_unmaps_blocks():
    sim, device = make_device()

    def proc():
        yield device.write(0, 64 * KiB)
        yield device.flush()
        from repro.host.io import IORequest, IOKind
        yield device.submit(IORequest(IOKind.TRIM, 0, 64 * KiB))
        yield device.read(0, 64 * KiB)

    sim.process(proc())
    sim.run()
    assert device.ftl.stats.unmapped_reads >= 16


def test_sustained_random_writes_trigger_gc_and_wa_above_one():
    sim, device = make_device(192 * MiB)
    job = FioJob(name="hammer", pattern="randwrite", io_size=64 * KiB,
                 queue_depth=16, total_bytes=int(1.6 * device.capacity_bytes), seed=5)
    result = run_job(sim, device, job)
    assert result.ios_completed == job.total_bytes // job.io_size
    assert device.ftl.gc.stats.blocks_erased > 0
    assert device.write_amplification > 1.0
    # Mapping invariant: valid slots never exceed logical capacity.
    assert device.ftl.mapping.mapped_blocks <= device.config.logical_blocks


def test_gc_throughput_cliff_appears_before_writing_full_capacity_twice():
    sim, device = make_device(256 * MiB)
    job = FioJob(name="cliff", pattern="randwrite", io_size=128 * KiB,
                 queue_depth=32, total_bytes=2 * device.capacity_bytes, seed=6)
    result = run_job(sim, device, job)
    samples = result.timeline.binned(20_000.0)
    peak = max(s.gigabytes_per_second for s in samples)
    trough = min(s.gigabytes_per_second for s in samples[2:])
    assert peak > 1.0          # starts near flash bandwidth
    assert trough < 0.7 * peak  # and collapses once GC kicks in


def test_write_amplification_definition():
    sim, device = make_device()
    assert device.write_amplification == 1.0  # no writes yet

    def proc():
        yield device.write(0, 256 * KiB)
        yield device.flush()

    sim.process(proc())
    sim.run()
    assert device.write_amplification == pytest.approx(1.0, abs=0.01)


def test_describe_reports_key_statistics():
    sim, device = make_device()

    def proc():
        yield device.write(0, 4096)
        yield device.read(0, 4096)

    sim.process(proc())
    sim.run()
    info = device.describe()
    assert info["kind"] == "local-ssd"
    assert info["host_writes"] == 1
    assert info["host_reads"] == 1
    assert "write_amplification" in info


def test_preload_rejects_unaligned_ranges():
    _, device = make_device()
    with pytest.raises(ValueError):
        device.preload(offset=100, size=4096)
