"""Host-side I/O stack: block-device abstraction, requests, and queues.

Both device models (:class:`repro.ssd.SsdDevice` and
:class:`repro.ebs.EssdDevice`) implement the :class:`BlockDevice` interface
defined here, so workloads, experiments, and the contract checker are written
once against the abstraction.
"""

from repro.host.device import BlockDevice, DeviceStats
from repro.host.io import IOKind, IORequest
from repro.host.queue import SubmissionQueue

__all__ = [
    "BlockDevice",
    "DeviceStats",
    "IOKind",
    "IORequest",
    "SubmissionQueue",
]
