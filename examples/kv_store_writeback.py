#!/usr/bin/env python3
"""Implication 3 in practice: should a key-value store sequentialize its writes?

A miniature write-back storage engine is modelled two ways:

* **log-structured**: user updates are appended sequentially and a background
  compactor rewrites data (write amplification ~1.3) -- the classic design
  that protects a local SSD from GC.
* **in-place**: user updates are written back at their (random) home
  locations with no compaction.

Both are run on the local SSD and on the Alibaba-PL3-like ESSD, and the
measured throughputs are handed to the WritePatternAdvisor, which issues the
Implication-3 recommendation per device.

Usage::

    python examples/kv_store_writeback.py
"""

from repro.ebs import EssdDevice, alibaba_pl3_profile
from repro.host.io import KiB, MiB
from repro.implications import WritePatternAdvisor
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.workload import FioJob, run_job

#: Extra bytes the log-structured engine writes per user byte (compaction).
LOG_STRUCTURED_WA = 1.3
IO_SIZE = 32 * KiB
QUEUE_DEPTH = 32
IOS = 1500


def make_ssd(sim):
    return SsdDevice(sim, samsung_970pro_profile(256 * MiB))


def make_essd(sim):
    return EssdDevice(sim, alibaba_pl3_profile(512 * MiB))


def measure_pattern(make_device, pattern: str) -> float:
    """Device throughput (GB/s) for one write pattern."""
    sim = Simulator()
    device = make_device(sim)
    job = FioJob(name=pattern, pattern=pattern, io_size=IO_SIZE,
                 queue_depth=QUEUE_DEPTH, io_count=IOS, ramp_ios=QUEUE_DEPTH)
    return run_job(sim, device, job).throughput_gbps


def evaluate(device_name: str, make_device, gc_sensitive: bool) -> None:
    random_gbps = measure_pattern(make_device, "randwrite")
    sequential_gbps = measure_pattern(make_device, "write")
    advisor = WritePatternAdvisor(random_gbps, sequential_gbps)
    advice = advisor.advise(sequentialization_write_amplification=LOG_STRUCTURED_WA,
                            gc_sensitive_device=gc_sensitive)

    user_visible_log = sequential_gbps / LOG_STRUCTURED_WA
    user_visible_in_place = random_gbps
    print(f"\n{device_name}")
    print(f"  device throughput      : random {random_gbps:.2f} GB/s, "
          f"sequential {sequential_gbps:.2f} GB/s "
          f"(gain {advisor.device_gain:.2f}x)")
    print(f"  user-visible throughput: log-structured {user_visible_log:.2f} GB/s, "
          f"in-place {user_visible_in_place:.2f} GB/s")
    verdict = "keep the log-structured engine" if advice.keep_sequentializing \
        else "switch to in-place (random) writes"
    print(f"  advisor (Implication 3): {verdict}")
    print(f"    {advice.rationale}")


def main() -> None:
    print("Write-back engine design study at "
          f"{IO_SIZE // KiB} KiB, QD{QUEUE_DEPTH} (compaction WA {LOG_STRUCTURED_WA})")
    # The local SSD is GC-sensitive under sustained random writes, so the
    # advisor is told to weigh the long-term GC cost, not just the instant gain.
    evaluate("Local SSD (Samsung-970-Pro-like)", make_ssd, gc_sensitive=True)
    evaluate("ESSD-2 (Alibaba-PL3-like)", make_essd, gc_sensitive=False)


if __name__ == "__main__":
    main()
