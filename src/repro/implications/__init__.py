"""Advisors implementing the contract's five implications.

Each advisor turns one implication into a quantitative recommendation for a
concrete workload or deployment:

* :class:`IoScalingAdvisor` (Implication 1) -- how much latency/efficiency is
  recovered by batching I/Os and raising queue depth.
* :class:`GcAdaptationAdvisor` (Implication 2) -- whether GC-mitigation
  machinery designed for local SSDs still pays off.
* :class:`WritePatternAdvisor` (Implication 3) -- whether sequentializing
  writes (log-structuring) is still worthwhile.
* :class:`IoSmoother` (Implication 4) -- how to shape a bursty arrival
  process under a throughput budget and what it saves.
* :class:`IoReductionEvaluator` (Implication 5) -- whether compression or
  deduplication now improves both cost and performance.
"""

from repro.implications.io_scaling import IoScalingAdvisor, LatencyCostModel, ScalingRecommendation
from repro.implications.gc_adaptation import GcAdaptationAdvisor, GcAdaptationAdvice
from repro.implications.write_pattern import WritePatternAdvisor, WritePatternAdvice
from repro.implications.smoothing import IoSmoother, SmoothingPlan
from repro.implications.reduction import IoReductionEvaluator, ReductionAssessment

__all__ = [
    "IoScalingAdvisor",
    "LatencyCostModel",
    "ScalingRecommendation",
    "GcAdaptationAdvisor",
    "GcAdaptationAdvice",
    "WritePatternAdvisor",
    "WritePatternAdvice",
    "IoSmoother",
    "SmoothingPlan",
    "IoReductionEvaluator",
    "ReductionAssessment",
]
