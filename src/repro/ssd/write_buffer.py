"""DRAM write buffer.

Host writes land in the buffer at DRAM speed and are acknowledged
immediately; background flusher workers (owned by the FTL) drain dirty
logical blocks to flash.  This is the mechanism behind the paper's
Observation 1 asymmetry: buffered writes are an order of magnitude faster
than random reads on the local SSD, so the relative ESSD penalty is much
larger for writes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Event, Simulator


class WriteBuffer:
    """Tracks dirty logical blocks awaiting flush, with bounded capacity."""

    def __init__(self, sim: "Simulator", capacity_slots: int):
        if capacity_slots <= 0:
            raise ValueError("capacity_slots must be positive")
        self.sim = sim
        self.capacity_slots = capacity_slots
        #: Dirty blocks in FIFO order; value is unused (ordered-set semantics).
        self._dirty: OrderedDict[int, None] = OrderedDict()
        #: Blocks currently being programmed by a flusher (still readable).
        self._in_flight: set[int] = set()
        self._space_waiters: list["Event"] = []
        self._data_waiters: list["Event"] = []
        self.total_absorbed = 0
        self.overwrite_hits = 0

    # -- state -------------------------------------------------------------------
    @property
    def used_slots(self) -> int:
        return len(self._dirty) + len(self._in_flight)

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - self.used_slots

    @property
    def dirty_slots(self) -> int:
        return len(self._dirty)

    def contains(self, lbn: int) -> bool:
        """Whether a read of ``lbn`` can be served from the buffer."""
        return lbn in self._dirty or lbn in self._in_flight

    def is_empty(self) -> bool:
        return not self._dirty and not self._in_flight

    # -- host side -----------------------------------------------------------------
    def has_room_for(self, lbn: int) -> bool:
        """Whether inserting ``lbn`` needs no new space (overwrite) or fits."""
        return lbn in self._dirty or self.free_slots > 0

    def insert(self, lbn: int) -> None:
        """Mark ``lbn`` dirty.  Caller must have checked :meth:`has_room_for`."""
        self.total_absorbed += 1
        if lbn in self._dirty:
            self.overwrite_hits += 1
            self._dirty.move_to_end(lbn)
            return
        if self.free_slots <= 0:
            raise RuntimeError("write buffer overflow - caller must wait for space")
        self._dirty[lbn] = None
        self._notify_one(self._data_waiters)

    def wait_for_space(self) -> "Event":
        """Event that fires the next time flushing frees buffer space."""
        event = self.sim.event()
        self._space_waiters.append(event)
        return event

    def wait_for_data(self) -> "Event":
        """Event that fires the next time a dirty block is inserted."""
        event = self.sim.event()
        self._data_waiters.append(event)
        return event

    # -- flusher side -----------------------------------------------------------------
    def take_batch(self, max_slots: int) -> list[int]:
        """Move up to ``max_slots`` dirty blocks to the in-flight set."""
        if max_slots <= 0:
            raise ValueError("max_slots must be positive")
        batch: list[int] = []
        while self._dirty and len(batch) < max_slots:
            lbn, _ = self._dirty.popitem(last=False)
            self._in_flight.add(lbn)
            batch.append(lbn)
        return batch

    def complete_flush(self, lbns: list[int]) -> None:
        """Drop flushed blocks from the buffer and wake space waiters."""
        for lbn in lbns:
            self._in_flight.discard(lbn)
        self._notify(self._space_waiters)

    def requeue(self, lbns: list[int]) -> None:
        """Return an in-flight batch to the dirty set (flush aborted)."""
        for lbn in lbns:
            if lbn in self._in_flight:
                self._in_flight.discard(lbn)
                self._dirty[lbn] = None
        self._notify(self._data_waiters)

    # -- internals -----------------------------------------------------------------
    def _notify(self, waiters: list["Event"]) -> None:
        pending, waiters[:] = waiters[:], []
        for event in pending:
            if not event.triggered:
                event.succeed(None)

    def _notify_one(self, waiters: list["Event"]) -> None:
        while waiters:
            event = waiters.pop(0)
            if not event.triggered:
                event.succeed(None)
                return
