"""Sequential-read detection and a read (prefetch) cache.

Modern SSD firmware detects sequential read streams and reads ahead into
controller DRAM.  This is why, in the paper, the local SSD's sequential-read
latency at small I/O sizes is an order of magnitude lower than its
random-read latency -- and consequently why the ESSD/SSD latency *gap* is
largest for sequential reads (Observation 1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


class ReadCache:
    """A block-granular LRU cache of prefetched (or recently read) data."""

    def __init__(self, capacity_slots: int):
        if capacity_slots <= 0:
            raise ValueError("capacity_slots must be positive")
        self.capacity_slots = capacity_slots
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, lbn: int) -> bool:
        return lbn in self._entries

    def lookup(self, lbn: int) -> bool:
        """Check for ``lbn``; updates LRU order and hit/miss counters."""
        if lbn in self._entries:
            self._entries.move_to_end(lbn)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, lbn: int) -> None:
        """Insert ``lbn``, evicting the least recently used entry if full."""
        if lbn in self._entries:
            self._entries.move_to_end(lbn)
            return
        if len(self._entries) >= self.capacity_slots:
            self._entries.popitem(last=False)
        self._entries[lbn] = None

    def invalidate(self, lbn: int) -> None:
        """Drop ``lbn`` (called when the host overwrites it)."""
        self._entries.pop(lbn, None)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PrefetchDecision:
    """What the prefetcher wants fetched after observing a read."""

    start_lbn: int
    num_slots: int

    @property
    def lbns(self) -> range:
        return range(self.start_lbn, self.start_lbn + self.num_slots)


class SequentialPrefetcher:
    """Detects sequential streams and issues readahead decisions.

    The detector keeps a small table of recent stream heads.  A read that
    continues a known stream increments its score; once the score reaches
    ``trigger`` the prefetcher asks for ``window_slots`` blocks starting just
    past the stream head (bounded to the device).
    """

    def __init__(self, trigger: int, window_slots: int, logical_blocks: int,
                 max_streams: int = 8):
        if trigger < 1:
            raise ValueError("trigger must be >= 1")
        if window_slots < 1:
            raise ValueError("window_slots must be >= 1")
        self.trigger = trigger
        self.window_slots = window_slots
        self.logical_blocks = logical_blocks
        self.max_streams = max_streams
        #: stream head lbn -> (score, prefetched_up_to_lbn)
        self._streams: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self.prefetches_issued = 0

    def observe(self, start_lbn: int, num_slots: int) -> PrefetchDecision | None:
        """Record a host read and return a prefetch decision if warranted."""
        end_lbn = start_lbn + num_slots
        score, prefetched_to = self._streams.pop(start_lbn, (0, start_lbn))
        score += 1
        decision = None
        if score >= self.trigger:
            prefetch_start = max(end_lbn, prefetched_to)
            prefetch_end = min(self.logical_blocks, prefetch_start + self.window_slots)
            # Only fetch when the stream is getting close to the prefetched
            # frontier, to avoid re-fetching the same window on every read.
            if prefetch_end > prefetch_start and prefetched_to - end_lbn < self.window_slots // 2:
                decision = PrefetchDecision(prefetch_start, prefetch_end - prefetch_start)
                prefetched_to = prefetch_end
                self.prefetches_issued += 1
        self._streams[end_lbn] = (score, prefetched_to)
        while len(self._streams) > self.max_streams:
            self._streams.popitem(last=False)
        return decision

    def reset(self) -> None:
        """Forget all tracked streams (e.g. after a TRIM of the whole device)."""
        self._streams.clear()
