"""Measurement utilities: latency recording, throughput timelines, statistics."""

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.throughput import ThroughputTimeline, ThroughputSample
from repro.metrics.stats import (
    coefficient_of_variation,
    latency_gap,
    percentile,
    throughput_gain,
)

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "ThroughputTimeline",
    "ThroughputSample",
    "latency_gap",
    "throughput_gain",
    "coefficient_of_variation",
    "percentile",
]
