"""Implication 1: scale I/O sizes and queue depths up.

The advisor fits a simple affine latency-cost model to measurements of a
device (``latency = fixed + size / bandwidth``), from which it derives how
much of every request is pure overhead at a given I/O size and how much
batching recovers.  It then recommends a target I/O size and queue depth to
reach a desired efficiency while respecting a latency ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.host.io import KiB, MiB


@dataclass(frozen=True)
class LatencyCostModel:
    """Affine model of request latency: ``fixed_us + size_bytes / bytes_per_us``."""

    fixed_us: float
    bytes_per_us: float

    def __post_init__(self) -> None:
        if self.fixed_us < 0 or self.bytes_per_us <= 0:
            raise ValueError("fixed_us must be >= 0 and bytes_per_us > 0")

    def latency_us(self, size_bytes: int) -> float:
        """Predicted single-request latency at the given size."""
        return self.fixed_us + size_bytes / self.bytes_per_us

    def efficiency(self, size_bytes: int) -> float:
        """Fraction of the request's latency spent moving data (0-1)."""
        total = self.latency_us(size_bytes)
        return (size_bytes / self.bytes_per_us) / total if total > 0 else 0.0

    def size_for_efficiency(self, target: float) -> int:
        """Smallest I/O size whose efficiency reaches ``target``."""
        if not 0 < target < 1:
            raise ValueError("target efficiency must be in (0, 1)")
        # efficiency = s/B / (F + s/B)  =>  s = F*B*target/(1-target)
        size = self.fixed_us * self.bytes_per_us * target / (1.0 - target)
        return int(size)

    def throughput_gbps(self, size_bytes: int, queue_depth: int) -> float:
        """Closed-loop throughput estimate at the given size and queue depth."""
        per_request = self.latency_us(size_bytes)
        return queue_depth * size_bytes / per_request / 1000.0

    @classmethod
    def fit(cls, sizes: Sequence[int], latencies_us: Sequence[float]) -> "LatencyCostModel":
        """Least-squares fit of the affine model to (size, latency) samples."""
        if len(sizes) != len(latencies_us) or len(sizes) < 2:
            raise ValueError("need at least two (size, latency) samples")
        x = np.asarray(sizes, dtype=np.float64)
        y = np.asarray(latencies_us, dtype=np.float64)
        slope, intercept = np.polyfit(x, y, 1)
        if slope <= 0:
            # Latency did not grow with size in the sampled range; treat the
            # device as bandwidth-unlimited within it.
            slope = 1e-9
        return cls(fixed_us=max(0.0, float(intercept)), bytes_per_us=float(1.0 / slope))


@dataclass(frozen=True)
class ScalingRecommendation:
    """What the advisor suggests for one workload on one device."""

    current_io_size: int
    current_queue_depth: int
    recommended_io_size: int
    recommended_queue_depth: int
    current_efficiency: float
    recommended_efficiency: float
    current_throughput_gbps: float
    recommended_throughput_gbps: float
    latency_ceiling_us: Optional[float]

    @property
    def throughput_speedup(self) -> float:
        if self.current_throughput_gbps <= 0:
            return float("inf")
        return self.recommended_throughput_gbps / self.current_throughput_gbps

    def describe(self) -> str:
        return (f"scale I/O from {self.current_io_size // KiB}KiB/QD"
                f"{self.current_queue_depth} to {self.recommended_io_size // KiB}KiB/QD"
                f"{self.recommended_queue_depth}: efficiency "
                f"{self.current_efficiency:.0%} -> {self.recommended_efficiency:.0%}, "
                f"throughput x{self.throughput_speedup:.1f}")


class IoScalingAdvisor:
    """Derives batching/queue-depth recommendations from a latency-cost model."""

    #: Candidate I/O sizes considered by the advisor.
    CANDIDATE_SIZES = (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB,
                       128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB)
    #: Candidate queue depths considered by the advisor.
    CANDIDATE_DEPTHS = (1, 2, 4, 8, 16, 32, 64)

    def __init__(self, model: LatencyCostModel,
                 throughput_budget_gbps: Optional[float] = None):
        self.model = model
        self.throughput_budget_gbps = throughput_budget_gbps

    @classmethod
    def from_measurements(cls, measurements: Iterable[tuple[int, float]],
                          throughput_budget_gbps: Optional[float] = None) -> "IoScalingAdvisor":
        """Build an advisor from (io_size, mean latency) measurements."""
        pairs = list(measurements)
        sizes = [size for size, _ in pairs]
        latencies = [latency for _, latency in pairs]
        return cls(LatencyCostModel.fit(sizes, latencies), throughput_budget_gbps)

    def recommend(self, current_io_size: int, current_queue_depth: int,
                  target_efficiency: float = 0.5,
                  latency_ceiling_us: Optional[float] = None) -> ScalingRecommendation:
        """Pick the smallest (size, depth) meeting the efficiency target.

        The recommendation never exceeds ``latency_ceiling_us`` for a single
        request and never recommends *smaller* I/Os or *lower* depth than the
        current configuration.
        """
        if not 0 < target_efficiency < 1:
            raise ValueError("target_efficiency must be in (0, 1)")
        best_size = current_io_size
        for size in self.CANDIDATE_SIZES:
            if size < current_io_size:
                continue
            if latency_ceiling_us is not None and self.model.latency_us(size) > latency_ceiling_us:
                break
            best_size = size
            if self.model.efficiency(size) >= target_efficiency:
                break
        best_depth = current_queue_depth
        for depth in self.CANDIDATE_DEPTHS:
            if depth < current_queue_depth:
                continue
            best_depth = depth
            throughput = self.model.throughput_gbps(best_size, depth)
            if self.throughput_budget_gbps is not None \
                    and throughput >= self.throughput_budget_gbps:
                break
        current_tp = self.model.throughput_gbps(current_io_size, current_queue_depth)
        recommended_tp = self.model.throughput_gbps(best_size, best_depth)
        if self.throughput_budget_gbps is not None:
            current_tp = min(current_tp, self.throughput_budget_gbps)
            recommended_tp = min(recommended_tp, self.throughput_budget_gbps)
        return ScalingRecommendation(
            current_io_size=current_io_size,
            current_queue_depth=current_queue_depth,
            recommended_io_size=best_size,
            recommended_queue_depth=best_depth,
            current_efficiency=self.model.efficiency(current_io_size),
            recommended_efficiency=self.model.efficiency(best_size),
            current_throughput_gbps=current_tp,
            recommended_throughput_gbps=recommended_tp,
            latency_ceiling_us=latency_ceiling_us,
        )
