"""Mean-field macro model: whole device groups as one aggregate process.

The discrete fleet path gives every device its own event-loop citizenship,
which tops out at hundreds of devices.  A :class:`MacroGroup` replaces an
entire *untraced* device group with a vectorized queueing approximation
(numpy over per-epoch arrays) whose cost per epoch is independent of the
group's ``count`` -- fleet size becomes a constant-cost parameter, so one
topology can hold 100k+ simulated devices next to a handful of discrete
"microscope" groups under one clock.

The model is **calibrated, not invented**: for every (device profile,
workload shape) pair, :func:`calibrate_workload` runs the real discrete
:class:`~repro.devices.Device` once -- the tenant's exact FIO job at its
exact queue depth (I/O count capped), plus a queue-depth-1 probe -- and
records the observed completion rate, the latency quantile sketch, and an
effective parallelism ``c_eff = rate * s1`` (the M/G/k-style service
knob).  Calibrations are cached like sweep results: an in-process memo
plus an optional on-disk JSON cache (``$REPRO_MACRO_CACHE``) keyed on the
workload signature and the model fingerprint, so any device-model edit
invalidates them automatically.

Runtime semantics (all **epoch-barrier quantized**, exactly like replica
deliveries and fault flips in the discrete path):

* closed-loop tenants drain their per-device I/O budget at the calibrated
  rate; latency samples are the calibrated quantiles scaled by the
  window's contention slowdown;
* open-loop trace tenants bucket one representative synthesized trace
  into per-epoch arrivals (times ``count`` -- the mean-field step) and
  serve them through a backlog queue at the calibrated saturation rate,
  charging a queueing wait on top of the base quantiles;
* replica/rebuild bytes arriving over replication edges join a per-group
  backlog served from the headroom the tenants leave; sustained inflow
  slows the tenants down (closed-loop coupling);
* faults flip an *offline device count* at their barriers: offline
  devices shed at the policy's ``shed_penalty_us`` pace, failures emit
  paced rebuild traffic onto the spare or the surviving peers.

Every metric a macro group reports is flagged ``approximate: True`` --
the validation harness (``tests/test_macro_validation.py``,
``benchmarks/test_bench_macro.py``) holds the approximation inside
declared tolerance bands against the discrete model on matched small
fleets.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.cluster.faults import FaultEvent, fault_epoch, repair_epoch
from repro.cluster.topology import DeviceGroup, FleetTopology
from repro.determinism import derive_seed, spec_hash

__all__ = [
    "MacroCalibration",
    "MacroGroup",
    "calibrate_workload",
    "clear_calibration_memo",
]

#: Calibration-run cap: a tenant's stop condition is honoured exactly up
#: to this many I/Os, beyond it the observed rate is extrapolated.
CAL_MAX_IOS = 2048
#: Queue-depth-1 probe length (service-time floor for the M/G/k knob).
CAL_QD1_IOS = 256
#: Probe depth used when a tenant has no natural queue depth (traces).
CAL_TRACE_DEPTH = 8
#: Points in the calibrated latency quantile sketch.
CAL_QUANTILES = 65
#: Cap on latency samples emitted per (tenant, macro group) payload --
#: evenly spaced quantile draws, weighted per epoch, so merged
#: percentiles stay meaningful without shipping 100k-device sample sets.
LATENCY_SAMPLE_CAP = 512
#: Cap on replica-latency samples kept per message kind.
REPLICA_SAMPLE_CAP = 256
#: Cap on timeline entries per payload (byte totals stay exact).
TIMELINE_CAP = 512
#: Bump to invalidate every cached calibration.
CALIBRATION_VERSION = 1
#: Environment variable naming the on-disk calibration cache directory.
MACRO_CACHE_ENV = "REPRO_MACRO_CACHE"
#: Safety bound on macro windows stepped in one drain.
MAX_MACRO_EPOCHS = 10_000_000

#: Utilisation ceiling for the contention coupling (keeps the slowdown
#: factor finite when replica inflow saturates a group).
_RHO_CAP = 0.8


@dataclass(frozen=True)
class MacroCalibration:
    """What one discrete calibration run measured (JSON round-trippable)."""

    io_size: int
    queue_depth: int
    #: Recorded (post-ramp) I/Os and the read share of them.
    ios_recorded: int
    read_ios: int
    #: Recorded I/Os completed per microsecond per device at the tenant's
    #: queue depth (ramp time included in the denominator, exactly like
    #: the discrete job's duration).
    rate_per_us: float
    mean_us: float
    #: Queue-depth-1 mean response (the service-time floor).
    s1_us: float
    #: Effective parallelism ``rate * s1`` clamped to [1, queue_depth]:
    #: the ``k`` of the M/G/k-style response curve.
    c_eff: float
    #: Latency quantiles at the calibrated depth (CAL_QUANTILES points,
    #: evenly spaced in probability).
    quantiles: tuple
    #: Latency quantiles of the queue-depth-1 probe (open-loop base).
    base_quantiles: tuple
    duration_us: float

    @property
    def read_fraction(self) -> float:
        return self.read_ios / self.ios_recorded if self.ios_recorded else 0.0

    @property
    def bytes_per_us(self) -> float:
        """Saturation byte bandwidth per device (the replica-service rate)."""
        if self.s1_us <= 0:
            return float("inf")
        return self.c_eff * self.io_size / self.s1_us

    def response_us(self, depth: float) -> float:
        """M/G/k-style closed-loop response at queue depth ``depth``:
        exact at the calibrated anchors, linear beyond ``c_eff``."""
        return self.s1_us * max(1.0, depth / self.c_eff)

    def sample_quantiles(self, count: int, scale: float = 1.0,
                         base: bool = False) -> np.ndarray:
        """``count`` evenly spaced draws from the calibrated distribution."""
        table = np.asarray(self.base_quantiles if base else self.quantiles)
        probs = (np.arange(count) + 0.5) / count * 100.0
        grid = np.linspace(0.0, 100.0, len(table))
        return np.interp(probs, grid, table) * scale

    def to_payload(self) -> dict[str, Any]:
        return {
            "io_size": self.io_size,
            "queue_depth": self.queue_depth,
            "ios_recorded": self.ios_recorded,
            "read_ios": self.read_ios,
            "rate_per_us": self.rate_per_us,
            "mean_us": self.mean_us,
            "s1_us": self.s1_us,
            "c_eff": self.c_eff,
            "quantiles": list(self.quantiles),
            "base_quantiles": list(self.base_quantiles),
            "duration_us": self.duration_us,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MacroCalibration":
        data = dict(payload)
        data["quantiles"] = tuple(data["quantiles"])
        data["base_quantiles"] = tuple(data["base_quantiles"])
        return cls(**data)


# ---------------------------------------------------------------------------
# Calibration (cached like the sweep cache)
# ---------------------------------------------------------------------------

_CAL_MEMO: dict[str, MacroCalibration] = {}


def clear_calibration_memo() -> None:
    """Drop the in-process calibration memo (tests)."""
    _CAL_MEMO.clear()


def _calibration_key(group: DeviceGroup, capacity_bytes: int,
                     workload: Mapping[str, Any], seed: int) -> str:
    # Local import: sweep imports cluster lazily, so the reverse edge must
    # be lazy too (the fingerprint hashes cluster/ source, including this
    # file -- any macro-model edit invalidates cached calibrations).
    from repro.experiments.sweep import model_fingerprint

    return spec_hash({
        "version": CALIBRATION_VERSION,
        "models": model_fingerprint(),
        "device": group.device,
        "device_params": [list(pair) for pair in group.device_params],
        "capacity_bytes": capacity_bytes,
        "preload": group.preload,
        "workload": dict(workload),
        "seed": seed,
    })


def _proxy_job_fields(workload: Mapping[str, Any]) -> dict[str, Any]:
    """The closed-loop FIO shape used to calibrate a workload.

    Closed-loop tenants calibrate as themselves (stop condition capped);
    trace tenants calibrate through a random-access proxy job matching
    their I/O size and read/write mix at :data:`CAL_TRACE_DEPTH`.
    """
    fields = dict(workload)
    if "trace" not in fields:
        ramp = int(fields.get("ramp_ios", 0) or 0)
        if fields.get("io_count") is not None:
            issued = int(fields["io_count"])
        elif fields.get("total_bytes") is not None:
            issued = int(fields["total_bytes"]) // int(
                fields.get("io_size", 4096))
        else:  # runtime-bounded: probe a bounded window
            issued = CAL_MAX_IOS
        cal_ios = min(max(issued, 1), max(CAL_MAX_IOS, ramp + 64))
        fields.pop("total_bytes", None)
        fields.pop("runtime_us", None)
        fields["io_count"] = cal_ios
        return fields
    write_ratio = float(fields.get("write_ratio", 1.0))
    if write_ratio >= 1.0:
        pattern, ratio = "randwrite", None
    elif write_ratio <= 0.0:
        pattern, ratio = "randread", None
    else:
        pattern, ratio = "randrw", write_ratio
    return {
        "pattern": pattern,
        "io_size": int(fields.get("io_size", 64 * 1024)),
        "write_ratio": ratio,
        "queue_depth": CAL_TRACE_DEPTH,
        "io_count": CAL_MAX_IOS // 2,
    }


def _run_probe(group: DeviceGroup, capacity_bytes: int,
               job_fields: Mapping[str, Any], seed: int):
    from repro.devices import create_device
    from repro.sim import Simulator
    from repro.workload.fio import FioJob, run_job

    sim = Simulator()
    device = create_device(sim, group.device, capacity_bytes=capacity_bytes,
                           name=f"macro-cal-{group.device}",
                           **dict(group.device_params))
    if group.preload:
        device.preload()
    job = FioJob(name="macro-cal", seed=seed, **job_fields)
    return run_job(sim, device, job)


def calibrate_workload(group: DeviceGroup, capacity_bytes: int,
                       workload: Mapping[str, Any], seed: int,
                       ) -> MacroCalibration:
    """Measure the discrete device once and return the macro parameters.

    The calibration seed derives from logical identities only (never the
    shard layout), so every shard -- and every layout -- computes the
    identical calibration; the memo/disk cache is purely an optimisation.
    """
    key = _calibration_key(group, capacity_bytes, workload, seed)
    cached = _CAL_MEMO.get(key)
    if cached is not None:
        return cached
    cache_dir = os.environ.get(MACRO_CACHE_ENV)
    cache_path = Path(cache_dir) / f"{key}.json" if cache_dir else None
    if cache_path is not None and cache_path.is_file():
        try:
            cal = MacroCalibration.from_payload(
                json.loads(cache_path.read_text()))
            _CAL_MEMO[key] = cal
            return cal
        except (json.JSONDecodeError, KeyError, TypeError):
            pass  # unreadable cache entry: recalibrate and overwrite

    fields = _proxy_job_fields(workload)
    result = _run_probe(group, capacity_bytes, fields, seed)
    probe = _run_probe(group, capacity_bytes,
                       {**fields, "queue_depth": 1,
                        "io_count": min(CAL_QD1_IOS,
                                        int(fields["io_count"]))},
                       seed)
    samples = result.latency.samples
    base_samples = probe.latency.samples
    duration = max(result.duration_us, 1e-9)
    rate = result.ios_completed / duration
    s1 = float(base_samples.mean()) if len(base_samples) else 1.0
    depth = int(fields.get("queue_depth", 1))
    c_eff = min(float(depth), max(1.0, rate * s1))
    grid = np.linspace(0.0, 100.0, CAL_QUANTILES)
    cal = MacroCalibration(
        io_size=int(fields.get("io_size", 4096)),
        queue_depth=depth,
        ios_recorded=result.ios_completed,
        read_ios=result.bytes_read // int(fields.get("io_size", 4096)),
        rate_per_us=rate,
        mean_us=float(samples.mean()) if len(samples) else 0.0,
        s1_us=max(s1, 1e-9),
        c_eff=c_eff,
        quantiles=tuple(float(q) for q in np.percentile(samples, grid))
        if len(samples) else (0.0,) * CAL_QUANTILES,
        base_quantiles=tuple(float(q)
                             for q in np.percentile(base_samples, grid))
        if len(base_samples) else (0.0,) * CAL_QUANTILES,
        duration_us=duration,
    )
    _CAL_MEMO[key] = cal
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(cal.to_payload(), sort_keys=True))
        tmp.replace(cache_path)
    return cal


# ---------------------------------------------------------------------------
# Per-tenant mean-field state
# ---------------------------------------------------------------------------

class _WindowRecord:
    """One epoch window's completions for a tenant (latency bookkeeping)."""

    __slots__ = ("end_us", "served", "scale", "shed", "base_wait")

    def __init__(self, end_us: float, served: float, scale: float,
                 shed: float = 0.0, base_wait: Optional[float] = None):
        self.end_us = end_us
        self.served = served      # mean-field I/O count served normally
        self.scale = scale        # latency multiplier on the quantile sketch
        self.shed = shed          # I/Os shed by offline devices
        self.base_wait = base_wait  # additive wait (open-loop), else None


class _ClosedLoopTenant:
    """A closed-loop FIO tenant across every device of a macro group."""

    is_trace = False

    def __init__(self, name: str, cal: MacroCalibration, count: int,
                 workload: Mapping[str, Any], shed_penalty_us: float):
        self.name = name
        self.cal = cal
        self.count = count
        self.io_size = int(workload.get("io_size", 4096))
        self.queue_depth = int(workload.get("queue_depth", 1))
        self.think_us = float(workload.get("think_time_us", 0.0) or 0.0)
        ramp = int(workload.get("ramp_ios", 0) or 0)
        if workload.get("io_count") is not None:
            issued = int(workload["io_count"])
        elif workload.get("total_bytes") is not None:
            issued = int(workload["total_bytes"]) // self.io_size
        else:
            issued = int(round(cal.rate_per_us
                               * float(workload["runtime_us"])))
        per_device = max(0, issued - ramp)
        #: Mean-field budget: recorded I/Os still to complete, pooled over
        #: the whole group (offline devices consume it by shedding).
        self.remaining = float(per_device * count)
        self.total_target = per_device * count
        self.shed_penalty_us = shed_penalty_us
        self.records: list[_WindowRecord] = []
        self.finished_us = 0.0
        self.shed_total = 0.0

    @property
    def active(self) -> bool:
        return self.remaining > 1e-9

    def demand_utilisation(self) -> float:
        """Fraction of a device's effective parallelism this tenant uses."""
        if not self.active:
            return 0.0
        return min(1.0, self.cal.rate_per_us * self.cal.s1_us
                   / self.cal.c_eff)

    def step(self, start_us: float, dt: float, online: int, offline: int,
             slowdown: float) -> tuple[float, float]:
        """Advance one window; return (served ios, shed ios)."""
        if not self.active:
            return 0.0, 0.0
        rate_online = self.cal.rate_per_us / slowdown * online
        shed_each = self.queue_depth / (self.shed_penalty_us + self.think_us) \
            if self.shed_penalty_us + self.think_us > 0 else 0.0
        rate_shed = shed_each * offline
        total_rate = rate_online + rate_shed
        if total_rate <= 0:
            return 0.0, 0.0
        budget = total_rate * dt
        if budget >= self.remaining:
            # Sub-epoch finish: the exact instant the budget drains.
            dt = self.remaining / total_rate
            budget = self.remaining
        served = budget * (rate_online / total_rate)
        shed = budget - served
        self.remaining -= budget
        self.shed_total += shed
        self.records.append(_WindowRecord(start_us + dt, served,
                                          slowdown, shed))
        if not self.active:
            self.finished_us = start_us + dt
        return served, shed

    def write_fraction(self) -> float:
        return 1.0 - self.cal.read_fraction


class _TraceTenant:
    """An open-loop trace tenant: per-epoch arrivals through a backlog."""

    is_trace = True

    def __init__(self, name: str, cal: MacroCalibration, count: int,
                 workload: Mapping[str, Any], epoch_us: float, seed: int,
                 shed_penalty_us: float):
        from repro.workload.trace import synthesize_trace

        self.name = name
        self.cal = cal
        self.count = count
        fields = dict(workload)
        family = fields.pop("trace")
        self.io_size = int(fields.get("io_size", 64 * 1024))
        self._write_ratio = float(fields.get("write_ratio", 1.0))
        trace = synthesize_trace(family, seed=seed, name=name, **fields)
        # Mean-field: one representative arrival process, scaled by count.
        times = np.asarray([event.timestamp_us for event in trace])
        windows = np.floor(times / epoch_us).astype(int) + 1
        self.arrivals = np.bincount(windows) * count \
            if len(windows) else np.zeros(1, dtype=int)
        self.total_target = len(trace) * count
        self.queue = 0.0
        self.injected = 0
        self.shed_penalty_us = shed_penalty_us
        self.records: list[_WindowRecord] = []
        self.finished_us = 0.0
        self.shed_total = 0.0

    @property
    def active(self) -> bool:
        return self.queue > 1e-9 or self.injected < len(self.arrivals)

    def next_arrival_window(self) -> Optional[int]:
        for window in range(self.injected, len(self.arrivals)):
            if self.arrivals[window]:
                return window
        return None

    def demand_utilisation(self) -> float:
        return 1.0 if self.queue > 0 else 0.0

    def step(self, window: int, start_us: float, dt: float, online: int,
             offline: int, slowdown: float) -> tuple[float, float]:
        arrivals = float(self.arrivals[window]) \
            if window < len(self.arrivals) else 0.0
        self.injected = max(self.injected, min(window + 1,
                                               len(self.arrivals)))
        shed = 0.0
        if offline and self.count:
            shed = arrivals * offline / self.count
            arrivals -= shed
            self.shed_total += shed
        waiting = self.queue
        self.queue += arrivals
        service_rate = online * self.cal.c_eff / self.cal.s1_us / slowdown
        served = min(self.queue, service_rate * dt)
        self.queue -= served
        wait = waiting / service_rate if service_rate > 0 else 0.0
        if served > 0 or shed > 0:
            self.records.append(_WindowRecord(start_us + dt, served,
                                              slowdown, shed, wait))
        if not self.active:
            self.finished_us = start_us + dt
        return served, shed

    def write_fraction(self) -> float:
        return self._write_ratio


# ---------------------------------------------------------------------------
# The macro group aggregate
# ---------------------------------------------------------------------------

class _Route:
    """One replication edge leaving the macro group (pre-resolved)."""

    __slots__ = ("target_indices", "factor", "carry", "cursor")

    def __init__(self, target_indices: tuple, factor: int):
        self.target_indices = target_indices
        self.factor = factor
        self.carry = 0.0          # fractional bytes awaiting emission
        self.cursor = 0           # rotating write offset (bytes)


#: Emission callback: (target_index, offset, size, kind, delivery_epoch).
EmitFn = Callable[[int, int, int, str, int], None]


class MacroGroup:
    """One ``mode="macro"`` device group inside a :class:`ShardWorker`.

    The shard owns the whole group (partitioning keeps macro groups
    atomic); the group advances window-by-window at epoch barriers and
    never schedules simulator events, so its cost is independent of
    ``count``.
    """

    def __init__(self, topology: FleetTopology, group: DeviceGroup,
                 capacity_bytes: int):
        self.topology = topology
        self.group = group
        self.count = group.count
        self.capacity_bytes = capacity_bytes
        self.epoch_us = topology.epoch_us
        self.indices = tuple(topology.group_indices(group.name))
        self.first_index = self.indices[0]
        self.epoch = 0
        policy = topology.fault_policy
        self._policy = policy

        base_seed = topology.seed
        self.tenants: list[Any] = []
        for tenant in topology.tenants:
            if tenant.group != group.name:
                continue
            fields = tenant.workload_dict()
            seed = derive_seed(fields.pop("seed", base_seed),
                               {"tenant": tenant.name, "group": group.name,
                                "device": 0})
            cal = calibrate_workload(group, capacity_bytes, fields, seed)
            if "trace" in fields:
                run = _TraceTenant(tenant.name, cal, group.count, fields,
                                   self.epoch_us, seed,
                                   policy.shed_penalty_us)
            else:
                run = _ClosedLoopTenant(tenant.name, cal, group.count,
                                        fields, policy.shed_penalty_us)
            self.tenants.append(run)

        self.routes = [
            _Route(tuple(topology.group_indices(edge.target)),
                   edge.policy().replication_factor)
            for edge in topology.edges_from(group.name)
        ]

        # Fault schedule projected onto this group, at barrier granularity.
        self._flip_epochs: list[int] = []
        self._fail_triggers: list[tuple[int, int, FaultEvent]] = []
        for event in topology.faults:
            if event.group != group.name:
                continue
            down = fault_epoch(event.at_us, self.epoch_us)
            back = repair_epoch(event, self.epoch_us)
            self._flip_epochs.append(down)
            if back is not None:
                self._flip_epochs.append(back)
            if event.kind == "fail":
                local = 0 if event.device is None else event.device
                self._fail_triggers.append((down, local, event))
        self._flip_epochs.sort()
        self._fail_triggers.sort(key=lambda item: (item[0], item[1]))
        self._triggered = 0

        #: Replica/rebuild inflow waiting for a window: epoch -> per-kind
        #: (count, bytes) aggregates.
        self._pending: dict[int, dict[str, list]] = {}
        self.backlog_bytes = 0.0
        self._backlog_counts: dict[str, float] = {}
        #: Served-inflow stats (what ``collect`` reports per kind).
        self._inflow_stats: dict[str, dict[str, Any]] = {}
        self._fault_windows: list[dict[str, Any]] = []
        self._written_bytes = 0.0  # cumulative tenant write bytes (group)

    # -- fault schedule helpers -------------------------------------------
    def _offline_count(self, epoch: int) -> int:
        """Devices of this group offline at barrier ``epoch`` (declared
        schedule only -- layout-independent by construction)."""
        offline: set[int] = set()
        for event in self.topology.faults:
            if event.group != self.group.name:
                continue
            down = fault_epoch(event.at_us, self.epoch_us)
            back = repair_epoch(event, self.epoch_us)
            if down <= epoch and (back is None or back > epoch):
                if event.device is None:
                    return self.count
                offline.add(event.device)
        return len(offline)

    # -- inflow ------------------------------------------------------------
    def absorb(self, message) -> None:
        """Fold an inbound :class:`ReplicaMessage` into the next window."""
        window = message.delivery_epoch + 1
        bucket = self._pending.setdefault(window, {})
        entry = bucket.setdefault(message.kind, [0, 0])
        entry[0] += 1
        entry[1] += message.size
        stats = self._inflow_stats.setdefault(
            message.kind, {"count": 0, "bytes": 0, "latency": []})
        stats["count"] += 1
        stats["bytes"] += message.size

    # -- activity scan -----------------------------------------------------
    def next_activity_epoch(self) -> Optional[int]:
        """The earliest barrier index > ``self.epoch`` with work to do."""
        candidates: list[int] = []
        if any(tenant.active for tenant in self.tenants):
            candidates.append(self.epoch + 1)
        if self.backlog_bytes > 1e-9:
            candidates.append(self.epoch + 1)
        pending = [window for window in self._pending if window > self.epoch]
        if pending:
            candidates.append(min(pending))
        for trace in self.tenants:
            if trace.is_trace and trace.active:
                window = trace.next_arrival_window()
                if window is not None:
                    candidates.append(max(self.epoch + 1, window))
        for flip in self._flip_epochs:
            if flip > self.epoch:
                candidates.append(flip + 1)
                break
        return min(candidates) if candidates else None

    def next_activity_us(self) -> float:
        epoch = self.next_activity_epoch()
        return math.inf if epoch is None else epoch * self.epoch_us

    # -- advancing ---------------------------------------------------------
    def advance_to(self, target_epoch: int, emit: EmitFn) -> None:
        """Step windows up to barrier ``target_epoch`` (idle ones skipped)."""
        guard = 0
        while self.epoch < target_epoch:
            nxt = self.next_activity_epoch()
            if nxt is None or nxt > target_epoch:
                break
            self._step_window(nxt, emit)
            self.epoch = nxt
            guard += 1
            if guard > MAX_MACRO_EPOCHS:  # pragma: no cover - safety bound
                raise RuntimeError(
                    f"macro group {self.group.name!r} exceeded "
                    f"{MAX_MACRO_EPOCHS} windows")
        self.epoch = max(self.epoch, target_epoch)

    def drain(self, emit: EmitFn) -> None:
        """Run to quiescence (the no-edges/no-faults fast path)."""
        guard = 0
        while True:
            nxt = self.next_activity_epoch()
            if nxt is None:
                return
            self.advance_to(nxt, emit)
            guard += 1
            if guard > MAX_MACRO_EPOCHS:  # pragma: no cover - safety bound
                raise RuntimeError(
                    f"macro group {self.group.name!r} failed to drain")

    def _step_window(self, window: int, emit: EmitFn) -> None:
        """Advance the whole group across window ``(window-1, window]``."""
        dt = self.epoch_us
        start_us = (window - 1) * self.epoch_us
        offline = min(self.count, self._offline_count(window - 1))
        online = self.count - offline

        # Rebuild storms triggered at barriers inside the skipped gap.
        while self._triggered < len(self._fail_triggers) and \
                self._fail_triggers[self._triggered][0] <= window - 1:
            self._emit_rebuild(*self._fail_triggers[self._triggered], emit)
            self._triggered += 1

        # Replica/rebuild inflow joining this window.
        arrivals = self._pending.pop(window, None)
        arrived_bytes = 0
        if arrivals:
            for kind, (count, size) in sorted(arrivals.items()):
                arrived_bytes += size
                self._backlog_counts[kind] = \
                    self._backlog_counts.get(kind, 0.0) + count
        waiting_before = self.backlog_bytes
        inflow = waiting_before + arrived_bytes

        # Contention: tenants consume their calibrated share of the
        # effective parallelism; inflow is served from the headroom, and
        # sustained inflow slows the tenants down in return.
        util = min(0.95, sum(t.demand_utilisation() for t in self.tenants))
        base_bw = max(cal.bytes_per_us for cal in
                      [t.cal for t in self.tenants]) \
            if self.tenants else self._fallback_bw()
        capacity = online * base_bw * max(0.05, 1.0 - util) * dt
        served_bytes = min(inflow, capacity)
        self.backlog_bytes = inflow - served_bytes
        rho = served_bytes / (online * base_bw * dt) \
            if online and base_bw > 0 and dt > 0 else 0.0
        slowdown = 1.0 / (1.0 - min(_RHO_CAP, rho))

        if served_bytes > 0:
            self._record_inflow_latency(window, served_bytes,
                                        waiting_before, capacity / dt
                                        if dt > 0 else 0.0)

        # Tenants.
        for tenant in self.tenants:
            if tenant.is_trace:
                served, _shed = tenant.step(window, start_us, dt, online,
                                            offline, slowdown)
            else:
                served, _shed = tenant.step(start_us, dt, online, offline,
                                            slowdown)
            if served > 0:
                write_bytes = served * tenant.io_size \
                    * tenant.write_fraction()
                self._written_bytes += write_bytes
                if write_bytes > 0 and self.routes:
                    self._emit_replicas(window, write_bytes, emit)

    def _fallback_bw(self) -> float:
        """Byte bandwidth for a tenant-less macro group (pure replica
        sink): calibrate a generic sequential-write probe once."""
        cal = calibrate_workload(
            self.group, self.capacity_bytes,
            {"pattern": "write", "io_size": 64 * 1024, "queue_depth": 8,
             "io_count": 512},
            derive_seed(self.topology.seed,
                        {"group": self.group.name, "probe": "sink"}))
        return cal.bytes_per_us

    def _record_inflow_latency(self, window: int, served_bytes: float,
                               waiting_before: float,
                               service_rate: float) -> None:
        """Charge this window's served inflow a queueing-wait estimate."""
        base = self.tenants[0].cal if self.tenants else None
        s_byte = (base.s1_us / base.io_size) if base else 0.001
        wait = waiting_before / service_rate if service_rate > 0 else 0.0
        served_share = served_bytes / max(1.0, served_bytes
                                          + self.backlog_bytes)
        for kind in sorted(self._backlog_counts):
            count = self._backlog_counts[kind]
            served_count = count * served_share
            if served_count < 0.5 and self.backlog_bytes > 1e-9:
                continue
            self._backlog_counts[kind] = count - served_count
            stats = self._inflow_stats.setdefault(
                kind, {"count": 0, "bytes": 0, "latency": []})
            if len(stats["latency"]) < REPLICA_SAMPLE_CAP:
                avg = served_bytes / max(served_count, 1.0)
                stats["latency"].append(float(wait + s_byte * avg))
        if self.backlog_bytes <= 1e-9:
            self._backlog_counts.clear()

    # -- emissions ---------------------------------------------------------
    def _emit_replicas(self, window: int, write_bytes: float,
                       emit: EmitFn) -> None:
        """Mirror this window's tenant writes along the out-edges.

        Macro targets receive one aggregate message per edge; discrete
        targets receive one message per device (its even share), sizes
        rounded to 4 KiB with the remainder carried to the next window.
        """
        macro_names = {g.name for g in self.topology.groups
                       if g.mode == "macro"}
        for route, edge in zip(self.routes,
                               self.topology.edges_from(self.group.name)):
            route.carry += write_bytes * route.factor
            if self.topology.group(edge.target).name in macro_names:
                size = int(route.carry) - int(route.carry) % 4096
                if size >= 4096:
                    route.carry -= size
                    emit(route.target_indices[0], route.cursor, size,
                         "replica", window)
                    route.cursor += size
                continue
            share = route.carry / len(route.target_indices)
            size = int(share) - int(share) % 4096
            if size < 4096:
                continue
            for target in route.target_indices:
                emit(target, route.cursor, size, "replica", window)
            route.carry -= size * len(route.target_indices)
            route.cursor += size

    def _emit_rebuild(self, down_epoch: int, local: int, event: FaultEvent,
                      emit: EmitFn) -> None:
        """Paced re-replication of a failed macro device's absorbed bytes."""
        policy = self._policy
        written_per_device = self._written_bytes / self.count \
            if self.count else 0.0
        rebuilt = min(written_per_device, float(self.capacity_bytes))
        rebuilt = int(rebuilt) - int(rebuilt) % 4096
        chunks = 0
        if rebuilt > 0:
            if event.spare is not None:
                spare_indices = self.topology.group_indices(event.spare)
                targets = [spare_indices[local % len(spare_indices)]]
            else:
                # Surviving peers of the macro group itself: the traffic is
                # internal, so it joins this group's own backlog.
                targets = [self.first_index]
            chunk = min(policy.rebuild_chunk_bytes, rebuilt)
            chunks = math.ceil(rebuilt / chunk)
            for j in range(chunks):
                size = min(chunk, rebuilt - j * chunk)
                size += (-size) % 4096
                delivery = down_epoch + 1 + j // policy.rebuild_chunks_per_epoch
                target = targets[j % len(targets)]
                if target in self.indices:
                    bucket = self._pending.setdefault(delivery + 1, {})
                    entry = bucket.setdefault("rebuild", [0, 0])
                    entry[0] += 1
                    entry[1] += size
                    stats = self._inflow_stats.setdefault(
                        "rebuild", {"count": 0, "bytes": 0, "latency": []})
                    stats["count"] += 1
                    stats["bytes"] += size
                else:
                    emit(target, j * chunk, size, "rebuild", delivery)
        back = repair_epoch(event, self.epoch_us)
        repair_us = back * self.epoch_us if back is not None else None
        end = repair_us
        if chunks:
            last = down_epoch + 1 + (chunks - 1) // policy.rebuild_chunks_per_epoch
            storm_end = (last + 1) * self.epoch_us
            end = storm_end if end is None else max(end, storm_end)
        self._fault_windows.append({
            "kind": event.kind,
            "group": self.group.name,
            "device": local,
            "index": self.indices[local],
            "start_us": down_epoch * self.epoch_us,
            "end_us": end,
            "repair_us": repair_us,
            "spare": event.spare,
            "rebuild_chunks": chunks,
            "rebuild_bytes": rebuilt if chunks else 0,
            "approximate": True,
        })

    # -- collection --------------------------------------------------------
    def collect_tenants(self) -> dict[str, dict[str, Any]]:
        """Per-tenant payloads in the discrete per-device schema, plus
        ``approximate: True`` and the aggregated ``devices`` count."""
        payloads: dict[str, dict[str, Any]] = {}
        faulted = bool(self.topology.faults)
        for tenant in self.tenants:
            payloads[tenant.name] = _tenant_payload(tenant, faulted)
        return payloads

    def collect_inflow(self) -> dict[str, dict[str, Any]]:
        """Served replica/rebuild stats keyed by message kind."""
        return {kind: {"count": stats["count"], "bytes": stats["bytes"],
                       "latency": list(stats["latency"])}
                for kind, stats in sorted(self._inflow_stats.items())}

    def collect_fault_windows(self) -> list[dict[str, Any]]:
        return list(self._fault_windows)

    def collect_shed(self) -> dict[str, int]:
        ios = int(round(sum(t.shed_total for t in self.tenants)))
        sizes = sum(t.shed_total * t.io_size for t in self.tenants)
        return {"ios": ios, "bytes": int(round(sizes))}


def _integerize(values: np.ndarray, total: int) -> np.ndarray:
    """Round a nonnegative float series to ints preserving the exact sum."""
    if len(values) == 0:
        return values.astype(int)
    scale = total / values.sum() if values.sum() > 0 else 0.0
    cumulative = np.round(np.cumsum(values * scale)).astype(np.int64)
    out = np.diff(np.concatenate(([0], cumulative)))
    out[-1] += total - out.sum()
    return np.maximum(out, 0)


def _tenant_payload(tenant, faulted: bool) -> dict[str, Any]:
    """Build the per-(tenant, macro group) payload from window records."""
    records = tenant.records
    served = np.asarray([record.served for record in records])
    shed = np.asarray([record.shed for record in records])
    ends = [record.end_us for record in records]
    total = int(round(served.sum() + shed.sum()))
    total = min(total, tenant.total_target) if tenant.total_target else total
    served_total = int(round(served.sum()))
    shed_total = total - served_total
    served_int = _integerize(served, served_total)
    shed_int = _integerize(shed, shed_total)
    ios = int(served_int.sum() + shed_int.sum())

    read_fraction = 1.0 - tenant.write_fraction()
    total_bytes = ios * tenant.io_size
    bytes_read = int(round(total_bytes * read_fraction))
    bytes_written = total_bytes - bytes_read

    # Latency samples: per-window quantile draws weighted by completions.
    sample_budget = min(LATENCY_SAMPLE_CAP, max(ios, 0))
    counts = served_int + shed_int
    alloc = _integerize(counts.astype(float), sample_budget) \
        if counts.sum() else np.zeros(0, dtype=int)
    latency: list[float] = []
    completion_times: list[float] = []
    for idx, record in enumerate(records):
        take = int(alloc[idx]) if idx < len(alloc) else 0
        if take <= 0:
            continue
        window_total = counts[idx]
        shed_take = int(round(take * (shed_int[idx] / window_total))) \
            if window_total else 0
        scaled_take = take - shed_take
        if scaled_take > 0:
            draws = tenant.cal.sample_quantiles(
                scaled_take, scale=record.scale,
                base=record.base_wait is not None)
            if record.base_wait is not None:
                draws = draws + record.base_wait
            latency.extend(float(value) for value in draws)
            completion_times.extend([record.end_us] * scaled_take)
        if shed_take > 0:
            latency.extend([float(tenant.shed_penalty_us)] * shed_take)
            completion_times.extend([record.end_us] * shed_take)

    # Timeline: per-window byte totals (exact), capped via re-binning.
    window_bytes = counts.astype(float) * tenant.io_size
    byte_ints = _integerize(window_bytes, total_bytes)
    timeline = [[end, int(num)] for end, num in zip(ends, byte_ints) if num]
    if len(timeline) > TIMELINE_CAP:
        stride = math.ceil(len(timeline) / TIMELINE_CAP)
        rebinned = []
        for i in range(0, len(timeline), stride):
            chunk = timeline[i:i + stride]
            rebinned.append([chunk[-1][0], sum(entry[1] for entry in chunk)])
        timeline = rebinned

    payload = {
        "ios_completed": ios,
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "started_us": 0.0,
        "finished_us": tenant.finished_us if tenant.finished_us
        else (ends[-1] if ends else 0.0),
        "latency": latency,
        "timeline": timeline,
        "approximate": True,
        "devices": tenant.count,
    }
    if faulted:
        payload["completion_times"] = completion_times
    return payload
