"""One shard of a fleet simulation: a Simulator owning a device slice.

A :class:`ShardWorker` instantiates the devices named by its
:class:`ShardPlan`, binds every tenant workload that targets those devices
(closed-loop FIO jobs or open-loop trace replays, each with a seed derived
from the tenant/device identity so the shard layout cannot change any RNG
stream), and then advances in **bounded time epochs**:

* :meth:`ShardWorker.advance` first injects the inbound replica messages
  handed over by the coordinator (each exactly at its delivery barrier),
  then runs its simulator up to the epoch barrier, and returns the replica
  messages its own tenants emitted during the window.
* Replica deliveries are quantized to the *next* ``epoch_us`` boundary
  after the originating write completes (``delivery_epoch`` carries the
  boundary as an exact integer index), so a message emitted inside epoch
  ``k`` is always deliverable at or after the barrier ``(k+1) * epoch_us``
  where the coordinator collects it -- the conservative-synchronization
  invariant that lets shards run an epoch in parallel without ever sending
  a message into another shard's past.
* Every message is *injected* exactly when its shard's clock sits on the
  delivery barrier, sorted by the layout-independent
  :func:`inbox_order` key.  Injection timing therefore never depends on
  which windows the coordinator happened to grant, which is what lets a
  **self-delivering** shard (``advance(..., self_deliver=True)``) consume
  its own intra-shard replica traffic across a multi-epoch run-ahead
  window and still stay bit-identical to the coordinator-mediated path.

The module-level ``_worker_*`` functions are the process-pool entry points:
the coordinator gives each shard a dedicated single-worker
``ProcessPoolExecutor``, so the worker process keeps the ``ShardWorker``
(simulator, devices, half-run generators) resident in a module global
between epoch tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, NamedTuple, Optional

from repro.cluster.topology import (
    DEFAULT_FLEET_ESSD_CAPACITY,
    DEFAULT_FLEET_SSD_CAPACITY,
    FleetTopology,
    Tenant,
)
from repro.determinism import derive_seed
from repro.host.io import IOKind, IORequest

__all__ = ["ReplicaMessage", "ShardPlan", "ShardWorker", "inbox_order"]


class ReplicaMessage(NamedTuple):
    """One cross-group replica write travelling between (or within) shards.

    ``(origin_index, origin_seq)`` is a layout-independent identity: the
    per-origin-device emission counter advances identically no matter which
    shard the device lands on, so sorting inbound messages by
    ``(delivery_us, origin_index, origin_seq)`` yields the same submission
    order in every layout -- the key to bit-identical sharded runs.

    ``delivery_epoch`` is the delivery barrier as an exact integer epoch
    index (``delivery_us == delivery_epoch * epoch_us``): barrier
    comparisons stay integral instead of trusting float equality.
    """

    delivery_us: float
    target_index: int
    offset: int
    size: int
    origin_index: int
    origin_seq: int
    delivery_epoch: int


def inbox_order(message: ReplicaMessage) -> tuple:
    """Injection order for same-barrier messages: the documented
    layout-independent identity key (see :class:`ReplicaMessage`)."""
    return (message.delivery_us, message.origin_index, message.origin_seq)


@dataclass(frozen=True)
class ShardPlan:
    """The device slice (global indices) one shard owns."""

    shard_id: int
    device_indices: tuple[int, ...]

    def to_payload(self) -> dict[str, Any]:
        return {"shard_id": self.shard_id,
                "device_indices": list(self.device_indices)}

    @classmethod
    def from_payload(cls, payload) -> "ShardPlan":
        return cls(shard_id=payload["shard_id"],
                   device_indices=tuple(payload["device_indices"]))


def _default_capacity(device_name: str) -> int:
    return DEFAULT_FLEET_SSD_CAPACITY if device_name == "SSD" \
        else DEFAULT_FLEET_ESSD_CAPACITY


class ShardWorker:
    """Owns one :class:`~repro.sim.Simulator` plus its fleet slice."""

    def __init__(self, topology: FleetTopology, plan: ShardPlan):
        from repro.devices import create_device
        from repro.sim import Simulator

        self.topology = topology
        self.plan = plan
        self.sim = Simulator()
        table = topology.device_table()
        #: global index -> device instance (construction in index order keeps
        #: the shard deterministic).
        self.devices: dict[int, Any] = {}
        #: global index -> (group name, local index)
        self._placement: dict[int, tuple[str, int]] = {}
        self._outbound: list[ReplicaMessage] = []
        self._origin_seq: dict[int, int] = {}
        #: Intra-shard replica messages waiting for their delivery barrier
        #: (self-delivery mode); persists across advance() calls.
        self._held: list[ReplicaMessage] = []
        #: The epoch barrier index this shard's clock sits on (self-delivery
        #: mode runs the simulator barrier-to-barrier, so ``sim.now ==
        #: _position * epoch_us`` between windows).
        self._position = 0
        #: target device global index (as str) -> inbound replica stats.
        #: Keyed per *device*, not per group: a split target group would
        #: otherwise pool samples in shard order and break the bit-identical
        #: merge (the fleet merge re-pools in global-index order).
        self._replica_stats: dict[str, dict[str, Any]] = {}
        #: (tenant name, global index, result object, byte accumulator)
        self._runs: list[tuple[str, int, Any, Optional[dict]]] = []

        for index in sorted(plan.device_indices):
            group_name, local_index = table[index]
            group = topology.group(group_name)
            capacity = group.capacity_bytes or _default_capacity(group.device)
            device = create_device(self.sim, group.device,
                                   capacity_bytes=capacity,
                                   name=f"{group_name}[{local_index}]",
                                   **dict(group.device_params))
            if group.preload:
                device.preload()
            self.devices[index] = device
            self._placement[index] = (group_name, local_index)

        for tenant in topology.tenants:
            for index in topology.group_indices(tenant.group):
                if index in self.devices:
                    self._bind_tenant(tenant, index)

    # -- workload binding --------------------------------------------------
    def _bind_tenant(self, tenant: Tenant, index: int) -> None:
        from repro.workload.fio import FioJob, run_job
        from repro.workload.trace import replay_trace, synthesize_trace

        device = self.devices[index]
        group_name, local_index = self._placement[index]
        fields = tenant.workload_dict()
        base_seed = fields.pop("seed", self.topology.seed)
        seed = derive_seed(base_seed, {"tenant": tenant.name,
                                       "group": group_name,
                                       "device": local_index})
        replicate = self._replication_hook(group_name, local_index, index)

        if tenant.is_trace:
            family = fields.pop("trace")
            fields.setdefault("region_bytes", device.capacity_bytes)
            trace = synthesize_trace(family, seed=seed,
                                     name=f"{tenant.name}@{device.name}",
                                     **fields)
            accumulator = {"bytes_read": 0, "bytes_written": 0}

            def hook(request, now, _acc=accumulator, _rep=replicate):
                if request.kind is IOKind.READ:
                    _acc["bytes_read"] += request.size
                else:
                    _acc["bytes_written"] += request.size
                if _rep is not None:
                    _rep(request, now)

            result = replay_trace(self.sim, device, trace, run=False,
                                  on_complete=hook)
            self._runs.append((tenant.name, index, result, accumulator))
        else:
            job = FioJob(name=tenant.name, seed=seed, **fields)
            result = run_job(self.sim, device, job, run=False,
                             on_complete=replicate)
            self._runs.append((tenant.name, index, result, None))

    def _replication_hook(self, group_name: str, local_index: int,
                          origin_index: int):
        """Per-(device) hook mirroring completed writes along out-edges."""
        routes = []
        for edge in self.topology.edges_from(group_name):
            indices = self.topology.group_indices(edge.target)
            routes.append((indices, edge.policy().replication_factor))
        if not routes:
            return None
        epoch_us = self.topology.epoch_us

        def hook(request, _now):
            if request.kind is not IOKind.WRITE:
                return
            now = self.sim.now
            epoch = math.floor(now / epoch_us) + 1
            delivery = epoch * epoch_us
            for indices, factor in routes:
                for replica in range(factor):
                    target = indices[(local_index + replica) % len(indices)]
                    seq = self._origin_seq.get(origin_index, 0)
                    self._origin_seq[origin_index] = seq + 1
                    # Append through self: advance() drains this buffer at
                    # every barrier, and a reference captured at bind time
                    # would go stale.
                    self._outbound.append(ReplicaMessage(
                        delivery_us=delivery, target_index=target,
                        offset=request.offset, size=request.size,
                        origin_index=origin_index, origin_seq=seq,
                        delivery_epoch=epoch))
        return hook

    # -- epoch stepping ----------------------------------------------------
    def deliver(self, messages: list[ReplicaMessage]) -> None:
        """Schedule inbound replica writes (pre-sorted by the coordinator)."""
        for message in messages:
            self.sim.process(self._apply(message))

    def _apply(self, message: ReplicaMessage):
        delay = message.delivery_us - self.sim.now
        yield self.sim.timeout(delay)
        device = self.devices[message.target_index]
        offset = message.offset % max(device.logical_block_size,
                                      device.capacity_bytes - message.size)
        offset -= offset % device.logical_block_size
        request = yield device.submit(IORequest(
            IOKind.WRITE, offset, message.size, tag="replica"))
        stats = self._replica_stats.setdefault(
            str(message.target_index), {"count": 0, "bytes": 0, "latency": []})
        stats["count"] += 1
        stats["bytes"] += request.size
        stats["latency"].append(float(request.latency))

    def advance(self, until_us: Optional[float],
                inbound: Optional[list[ReplicaMessage]] = None,
                self_deliver: bool = False,
                ) -> tuple[list[ReplicaMessage], float, int]:
        """Deliver ``inbound``, run up to ``until_us``; return
        ``(outbound, peek, epochs)``.

        ``until_us=None`` drains the schedule completely (the no-edges fast
        path).  ``peek`` is the time of the next still-pending event or
        held delivery (``inf`` when the shard is idle) -- the coordinator
        uses the fleet minimum to skip over empty epochs.

        With ``self_deliver=True`` the shard advances **barrier to
        barrier** inside the granted window, injecting its own intra-shard
        replica messages exactly at their delivery barriers (sorted by
        :func:`inbox_order`) and skipping idle epochs, so a self-contained
        shard needs one coordinator task per run-ahead window instead of
        one per busy epoch.  Messages for foreign devices are returned
        (the coordinator only grants run-ahead windows to shards that can
        never emit one).  ``epochs`` counts the barrier windows executed.
        """
        if inbound:
            self.deliver(inbound)
        if not self_deliver:
            self.sim.run(until=until_us)
            outbound = list(self._outbound)
            self._outbound.clear()
            return outbound, self.sim.peek(), (0 if until_us is None else 1)

        epoch_us = self.topology.epoch_us
        executed = 0
        foreign: list[ReplicaMessage] = []
        while True:
            due = [message for message in self._held
                   if message.delivery_epoch == self._position]
            if due:
                self._held = [message for message in self._held
                              if message.delivery_epoch != self._position]
                due.sort(key=inbox_order)
                self.deliver(due)
            targets = []
            if due:
                targets.append(self._position + 1)
            if self._held:
                targets.append(min(message.delivery_epoch
                                   for message in self._held))
            peek = self.sim.peek()
            if peek != math.inf:
                # Jump straight past idle epochs, but never span more than
                # one epoch of activity (emissions must stay deliverable at
                # a future barrier).
                targets.append(max(self._position + 1,
                                   math.floor(peek / epoch_us) + 1))
            if not targets:
                break
            next_index = min(targets)
            barrier = next_index * epoch_us
            if until_us is not None and barrier > until_us:
                break  # run-ahead window exhausted; resume next task
            self.sim.run(until=barrier)
            self._position = next_index
            executed += 1
            for message in self._outbound:
                if message.target_index in self.devices:
                    self._held.append(message)
                else:
                    foreign.append(message)
            self._outbound.clear()
        peek = self.sim.peek()
        for message in self._held:
            peek = min(peek, message.delivery_us)
        return foreign, peek, executed

    # -- collection --------------------------------------------------------
    def collect(self) -> dict[str, Any]:
        """Serialize the shard's measurements (JSON/pickle-safe payload)."""
        tenants: dict[str, dict[str, Any]] = {}
        for tenant_name, index, result, accumulator in self._runs:
            tenants.setdefault(tenant_name, {})[str(index)] = \
                _result_payload(result, accumulator)
        return {
            "shard_id": self.plan.shard_id,
            "scheduled_events": self.sim.scheduled_events,
            "tenants": tenants,
            "replicas": self._replica_stats,
        }


def _result_payload(result, accumulator: Optional[dict]) -> dict[str, Any]:
    """Uniform per-(tenant, device) payload for Job- and Replay-results."""
    events = result.timeline.events()
    if accumulator is None:  # JobResult
        started = result.started_us
        finished = result.finished_us
        if finished <= started:
            # Defensive: a job that recorded nothing keeps duration 0; never
            # fall back to sim.now, which depends on the shard layout.
            finished = events[-1][0] if events else started
        bytes_read = result.bytes_read
        bytes_written = result.bytes_written
        ios = result.ios_completed
    else:  # ReplayResult (open loop starts at time 0)
        started = 0.0
        finished = events[-1][0] if events else 0.0
        bytes_read = accumulator["bytes_read"]
        bytes_written = accumulator["bytes_written"]
        ios = result.ios_completed
    return {
        "ios_completed": ios,
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "started_us": started,
        "finished_us": finished,
        "latency": result.latency.samples.tolist(),
        "timeline": [[time_us, num_bytes] for time_us, num_bytes in events],
    }


# ---------------------------------------------------------------------------
# Process-pool entry points (one dedicated worker process per shard)
# ---------------------------------------------------------------------------

_WORKER: Optional[ShardWorker] = None


def _worker_init(topology_json: str, plan_payload: dict) -> int:
    """Build the resident ShardWorker inside the dedicated worker process."""
    global _WORKER
    _WORKER = ShardWorker(FleetTopology.from_json(topology_json),
                          ShardPlan.from_payload(plan_payload))
    return _WORKER.plan.shard_id


def _worker_advance(until_us: Optional[float],
                    inbound: list[ReplicaMessage],
                    self_deliver: bool = False,
                    ) -> tuple[list[ReplicaMessage], float, int]:
    assert _WORKER is not None, "shard worker not initialised"
    return _WORKER.advance(until_us, inbound, self_deliver)


def _worker_collect() -> dict[str, Any]:
    assert _WORKER is not None, "shard worker not initialised"
    return _WORKER.collect()
