"""Shared infrastructure for the paper-reproduction experiments.

Every experiment builds its devices through :class:`ExperimentScale`, which
fixes the (scaled) capacities and keeps the paper's 1:2 SSD:ESSD capacity
ratio, and measures workloads with :func:`measure_cell` -- one FIO-style job
with a bounded I/O count, so experiment cost stays predictable regardless of
how fast a configuration happens to be.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.host.io import GiB, MiB
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.workload.fio import FioJob, JobResult, run_job


class DeviceKind(enum.Enum):
    """The three devices of the paper's Table I."""

    SSD = "SSD"
    ESSD1 = "ESSD-1"
    ESSD2 = "ESSD-2"


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled device capacities (paper: SSD 1 TB, ESSDs 2 TB -- ratio kept)."""

    ssd_capacity_bytes: int = 512 * MiB
    essd_capacity_bytes: int = 1 * GiB

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Fast scale for unit tests."""
        return cls(ssd_capacity_bytes=256 * MiB, essd_capacity_bytes=512 * MiB)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Default scale used by the benchmark harness."""
        return cls()

    @classmethod
    def large(cls) -> "ExperimentScale":
        """Closer-to-paper scale (slower; used for Figure 3's GC study)."""
        return cls(ssd_capacity_bytes=1 * GiB, essd_capacity_bytes=2 * GiB)

    def capacity_of(self, kind: DeviceKind) -> int:
        return self.ssd_capacity_bytes if kind is DeviceKind.SSD \
            else self.essd_capacity_bytes


def build_device(sim: Simulator, kind: DeviceKind,
                 scale: Optional[ExperimentScale] = None):
    """Instantiate one of the paper's three devices on ``sim``."""
    scale = scale or ExperimentScale.default()
    if kind is DeviceKind.SSD:
        return SsdDevice(sim, samsung_970pro_profile(scale.ssd_capacity_bytes), name="SSD")
    if kind is DeviceKind.ESSD1:
        return EssdDevice(sim, aws_io2_profile(scale.essd_capacity_bytes))
    if kind is DeviceKind.ESSD2:
        return EssdDevice(sim, alibaba_pl3_profile(scale.essd_capacity_bytes))
    raise ValueError(f"unknown device kind: {kind}")


def measure_cell(kind: DeviceKind, job: FioJob,
                 scale: Optional[ExperimentScale] = None,
                 preload: bool = True, return_device: bool = False):
    """Run one (device, job) cell on a fresh simulator and return its result.

    With ``return_device=True`` the ``(result, device)`` pair is returned so
    callers can read device statistics (write amplification, flow-limit
    state) after the run.
    """
    sim = Simulator()
    device = build_device(sim, kind, scale)
    if preload:
        device.preload()
    result = run_job(sim, device, job)
    return (result, device) if return_device else result


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a plain-text table (used by every experiment's ``render``)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells):
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
