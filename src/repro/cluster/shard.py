"""One shard of a fleet simulation: a Simulator owning a device slice.

A :class:`ShardWorker` instantiates the devices named by its
:class:`ShardPlan`, binds every tenant workload that targets those devices
(closed-loop FIO jobs or open-loop trace replays, each with a seed derived
from the tenant/device identity so the shard layout cannot change any RNG
stream), and then advances in **bounded time epochs**:

* :meth:`ShardWorker.advance` first injects the inbound replica messages
  handed over by the coordinator (each exactly at its delivery barrier),
  then runs its simulator up to the epoch barrier, and returns the replica
  messages its own tenants emitted during the window.
* Replica deliveries are quantized to the *next* ``epoch_us`` boundary
  after the originating write completes (``delivery_epoch`` carries the
  boundary as an exact integer index), so a message emitted inside epoch
  ``k`` is always deliverable at or after the barrier ``(k+1) * epoch_us``
  where the coordinator collects it -- the conservative-synchronization
  invariant that lets shards run an epoch in parallel without ever sending
  a message into another shard's past.
* Every message is *injected* exactly when its shard's clock sits on the
  delivery barrier, sorted by the layout-independent
  :func:`inbox_order` key.  Injection timing therefore never depends on
  which windows the coordinator happened to grant, which is what lets a
  **self-delivering** shard (``advance(..., self_deliver=True)``) consume
  its own intra-shard replica traffic across a multi-epoch run-ahead
  window and still stay bit-identical to the coordinator-mediated path.

The module-level ``_worker_*`` functions are the process-pool entry points:
the coordinator gives each shard a dedicated single-worker
``ProcessPoolExecutor``, so the worker process keeps the ``ShardWorker``
(simulator, devices, half-run generators) resident in a module global
between epoch tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, NamedTuple, Optional

from repro.cluster.faults import (
    FaultEvent,
    FaultInjector,
    fault_epoch,
    repair_epoch,
)
from repro.cluster.topology import (
    DEFAULT_FLEET_ESSD_CAPACITY,
    DEFAULT_FLEET_SSD_CAPACITY,
    DeviceGroup,
    FleetTopology,
    Tenant,
)
from repro.determinism import derive_seed
from repro.host.io import IOKind, IORequest

__all__ = ["ReplicaMessage", "ShardPlan", "ShardWorker", "inbox_order"]


class ReplicaMessage(NamedTuple):
    """One cross-group replica write travelling between (or within) shards.

    ``(origin_index, origin_seq)`` is a layout-independent identity: the
    per-origin-device emission counter advances identically no matter which
    shard the device lands on, so sorting inbound messages by
    ``(delivery_us, origin_index, origin_seq)`` yields the same submission
    order in every layout -- the key to bit-identical sharded runs.

    ``delivery_epoch`` is the delivery barrier as an exact integer epoch
    index (``delivery_us == delivery_epoch * epoch_us``): barrier
    comparisons stay integral instead of trusting float equality.
    """

    delivery_us: float
    target_index: int
    offset: int
    size: int
    origin_index: int
    origin_seq: int
    delivery_epoch: int
    #: ``"replica"`` for tenant-write mirroring, ``"rebuild"`` for the
    #: re-replication storm after a device failure.  Rebuild messages ride
    #: the exact same barrier machinery (and the same per-origin sequence
    #: counter), so faulted runs inherit the layout-independence proof.
    kind: str = "replica"


def inbox_order(message: ReplicaMessage) -> tuple:
    """Injection order for same-barrier messages: the documented
    layout-independent identity key (see :class:`ReplicaMessage`)."""
    return (message.delivery_us, message.origin_index, message.origin_seq)


@dataclass(frozen=True)
class ShardPlan:
    """The device slice (global indices) one shard owns."""

    shard_id: int
    device_indices: tuple[int, ...]

    def to_payload(self) -> dict[str, Any]:
        return {"shard_id": self.shard_id,
                "device_indices": list(self.device_indices)}

    @classmethod
    def from_payload(cls, payload) -> "ShardPlan":
        return cls(shard_id=payload["shard_id"],
                   device_indices=tuple(payload["device_indices"]))


def _default_capacity(device_name: str) -> int:
    return DEFAULT_FLEET_SSD_CAPACITY if device_name == "SSD" \
        else DEFAULT_FLEET_ESSD_CAPACITY


def _group_capacity(group: DeviceGroup) -> int:
    return group.capacity_bytes or _default_capacity(group.device)


class _FaultFlip(NamedTuple):
    """One scheduled device-state flip, pinned to an epoch barrier."""

    epoch: int
    order: int   # declaration order of the originating FaultEvent
    index: int   # global device index
    action: str  # "offline" | "online"
    event: FaultEvent


class ShardWorker:
    """Owns one :class:`~repro.sim.Simulator` plus its fleet slice."""

    def __init__(self, topology: FleetTopology, plan: ShardPlan):
        from repro.devices import create_device
        from repro.sim import Simulator

        self.topology = topology
        self.plan = plan
        self.sim = Simulator()
        table = topology.device_table()
        #: Macro (mean-field) groups resident on this shard, by name and by
        #: every global index they cover.  A macro group is a zero-device
        #: aggregate: it owns its index range for partitioning/routing but
        #: schedules no simulator events (see :mod:`repro.cluster.macro`).
        self._macro: dict[str, Any] = {}
        self._macro_index: dict[int, Any] = {}
        macro_indices: set[int] = set()
        owned = set(plan.device_indices)
        for macro_group in topology.macro_groups():
            indices = topology.group_indices(macro_group.name)
            if not owned.intersection(indices):
                continue
            if not owned.issuperset(indices):
                raise ValueError(
                    f"macro group {macro_group.name!r} split across shards: "
                    "partition_topology must keep macro groups atomic")
            from repro.cluster.macro import MacroGroup
            aggregate = MacroGroup(topology, macro_group,
                                   _group_capacity(macro_group))
            self._macro[macro_group.name] = aggregate
            for index in indices:
                self._macro_index[index] = aggregate
            macro_indices.update(indices)
        #: global index -> device instance (construction in index order keeps
        #: the shard deterministic).
        self.devices: dict[int, Any] = {}
        #: global index -> (group name, local index)
        self._placement: dict[int, tuple[str, int]] = {}
        self._outbound: list[ReplicaMessage] = []
        self._origin_seq: dict[int, int] = {}
        #: Intra-shard replica messages waiting for their delivery barrier
        #: (self-delivery mode); persists across advance() calls.
        self._held: list[ReplicaMessage] = []
        #: The epoch barrier index this shard's clock sits on (self-delivery
        #: mode runs the simulator barrier-to-barrier, so ``sim.now ==
        #: _position * epoch_us`` between windows).
        self._position = 0
        #: target device global index (as str) -> inbound replica stats.
        #: Keyed per *device*, not per group: a split target group would
        #: otherwise pool samples in shard order and break the bit-identical
        #: merge (the fleet merge re-pools in global-index order).
        self._replica_stats: dict[str, dict[str, Any]] = {}
        #: Same shape as ``_replica_stats`` but for rebuild-storm writes.
        self._rebuild_stats: dict[str, dict[str, Any]] = {}
        #: ... and for the rebuild's source reads on surviving replicas.
        self._rebuild_read_stats: dict[str, dict[str, Any]] = {}
        #: (tenant name, global index, result, byte accumulator,
        #:  completion-time record used for during-rebuild classification)
        self._runs: list[tuple[str, int, Any, Optional[dict],
                               Optional[list]]] = []
        #: Fault flips for *owned* devices, sorted by barrier then
        #: declaration order; ``_flip_index`` is the applied prefix.
        self._flips: list[_FaultFlip] = []
        self._flip_index = 0
        self._fault_proxies: dict[int, FaultInjector] = {}
        self._fault_windows: list[dict[str, Any]] = []

        affected: set[int] = set()
        for event in topology.faults:
            affected.update(self._fault_indices(event))
        wrap_all = topology.fault_policy.max_inflight is not None

        for index in sorted(plan.device_indices):
            if index in macro_indices:
                continue
            group_name, local_index = table[index]
            group = topology.group(group_name)
            device = create_device(self.sim, group.device,
                                   capacity_bytes=_group_capacity(group),
                                   name=f"{group_name}[{local_index}]",
                                   **dict(group.device_params))
            if group.preload:
                device.preload()
            if topology.faults and (index in affected or wrap_all):
                device = FaultInjector(self.sim, device,
                                       topology.fault_policy)
                self._fault_proxies[index] = device
            self.devices[index] = device
            self._placement[index] = (group_name, local_index)

        for order, event in enumerate(topology.faults):
            down = fault_epoch(event.at_us, topology.epoch_us)
            back = repair_epoch(event, topology.epoch_us)
            for index in self._fault_indices(event):
                if index not in self.devices:
                    continue
                self._flips.append(_FaultFlip(down, order, index,
                                              "offline", event))
                if back is not None:
                    self._flips.append(_FaultFlip(back, order, index,
                                                  "online", event))
        self._flips.sort(key=lambda flip: (flip.epoch, flip.order, flip.index))

        for tenant in topology.tenants:
            for index in topology.group_indices(tenant.group):
                if index in self.devices:
                    self._bind_tenant(tenant, index)

    def _fault_indices(self, event: FaultEvent) -> list[int]:
        """Global indices the event takes offline (layout-independent)."""
        indices = self.topology.group_indices(event.group)
        return indices if event.device is None else [indices[event.device]]

    def _macro_emit(self, origin_index: int):
        """Emission callback a macro group uses to send replica/rebuild
        messages: the same per-origin sequence counter and barrier framing
        the discrete replication hook uses."""
        epoch_us = self.topology.epoch_us

        def emit(target: int, offset: int, size: int, kind: str,
                 delivery_epoch: int) -> None:
            seq = self._origin_seq.get(origin_index, 0)
            self._origin_seq[origin_index] = seq + 1
            self._outbound.append(ReplicaMessage(
                delivery_us=delivery_epoch * epoch_us, target_index=target,
                offset=offset, size=size, origin_index=origin_index,
                origin_seq=seq, delivery_epoch=delivery_epoch, kind=kind))
        return emit

    def _advance_macro(self, target_epoch: Optional[int]) -> None:
        """Step every resident macro group to ``target_epoch`` (``None`` =
        drain to quiescence), in group-declaration order."""
        for name in sorted(self._macro,
                           key=lambda n: self._macro[n].first_index):
            aggregate = self._macro[name]
            emit = self._macro_emit(aggregate.first_index)
            if target_epoch is None:
                aggregate.drain(emit)
            else:
                aggregate.advance_to(target_epoch, emit)

    # -- workload binding --------------------------------------------------
    def _bind_tenant(self, tenant: Tenant, index: int) -> None:
        from repro.workload.fio import FioJob, run_job
        from repro.workload.trace import replay_trace, synthesize_trace

        device = self.devices[index]
        group_name, local_index = self._placement[index]
        fields = tenant.workload_dict()
        base_seed = fields.pop("seed", self.topology.seed)
        seed = derive_seed(base_seed, {"tenant": tenant.name,
                                       "group": group_name,
                                       "device": local_index})
        replicate = self._replication_hook(group_name, local_index, index)
        #: With faults active every post-ramp completion time is recorded,
        #: aligned 1:1 with the result's latency samples, so the merge can
        #: split tail latency into during-rebuild vs steady windows.
        record: Optional[list] = [] if self.topology.faults else None

        if tenant.is_trace:
            family = fields.pop("trace")
            fields.setdefault("region_bytes", device.capacity_bytes)
            trace = synthesize_trace(family, seed=seed,
                                     name=f"{tenant.name}@{device.name}",
                                     **fields)
            accumulator = {"bytes_read": 0, "bytes_written": 0}

            def hook(request, now, _acc=accumulator, _rep=replicate,
                     _rec=record):
                if request.kind is IOKind.READ:
                    _acc["bytes_read"] += request.size
                else:
                    _acc["bytes_written"] += request.size
                if _rep is not None:
                    _rep(request, now)
                if _rec is not None:
                    _rec.append(now)

            result = replay_trace(self.sim, device, trace, run=False,
                                  on_complete=hook)
            self._runs.append((tenant.name, index, result, accumulator,
                               record))
        else:
            job = FioJob(name=tenant.name, seed=seed, **fields)
            if record is None:
                hook = replicate
            else:
                # run_job fires on_complete before its ramp check, so
                # skipping the first ramp_ios completions keeps the record
                # aligned with the recorded latency samples.
                state = {"ramp": job.ramp_ios}

                def hook(request, now, _rep=replicate, _state=state,
                         _rec=record):
                    if _rep is not None:
                        _rep(request, now)
                    if _state["ramp"] > 0:
                        _state["ramp"] -= 1
                    else:
                        _rec.append(now)

            result = run_job(self.sim, device, job, run=False,
                             on_complete=hook)
            self._runs.append((tenant.name, index, result, None, record))

    def _replication_hook(self, group_name: str, local_index: int,
                          origin_index: int):
        """Per-(device) hook mirroring completed writes along out-edges."""
        routes = []
        for edge in self.topology.edges_from(group_name):
            indices = self.topology.group_indices(edge.target)
            routes.append((indices, edge.policy().replication_factor))
        if not routes:
            return None
        epoch_us = self.topology.epoch_us

        def hook(request, _now):
            if request.kind is not IOKind.WRITE or request.shed:
                return  # shed writes never landed, so they never mirror
            now = self.sim.now
            epoch = math.floor(now / epoch_us) + 1
            delivery = epoch * epoch_us
            for indices, factor in routes:
                for replica in range(factor):
                    target = indices[(local_index + replica) % len(indices)]
                    seq = self._origin_seq.get(origin_index, 0)
                    self._origin_seq[origin_index] = seq + 1
                    # Append through self: advance() drains this buffer at
                    # every barrier, and a reference captured at bind time
                    # would go stale.
                    self._outbound.append(ReplicaMessage(
                        delivery_us=delivery, target_index=target,
                        offset=request.offset, size=request.size,
                        origin_index=origin_index, origin_seq=seq,
                        delivery_epoch=epoch))
        return hook

    # -- epoch stepping ----------------------------------------------------
    def deliver(self, messages: list[ReplicaMessage]) -> None:
        """Schedule inbound replica writes (pre-sorted by the coordinator).

        Messages targeting a macro-group index never touch the simulator:
        the aggregate absorbs them into the window after their delivery
        barrier, which is exactly when a discrete device would start
        serving a write applied *at* the barrier.
        """
        for message in messages:
            aggregate = self._macro_index.get(message.target_index)
            if aggregate is not None:
                aggregate.absorb(message)
            else:
                self.sim.process(self._apply(message))

    def _apply(self, message: ReplicaMessage):
        delay = message.delivery_us - self.sim.now
        yield self.sim.timeout(delay)
        device = self.devices[message.target_index]
        offset = message.offset % max(device.logical_block_size,
                                      device.capacity_bytes - message.size)
        offset -= offset % device.logical_block_size
        kind = IOKind.READ if message.kind == "rebuild-read" else IOKind.WRITE
        request = yield device.submit(IORequest(
            kind, offset, message.size, tag=message.kind))
        if message.kind == "rebuild":
            bucket = self._rebuild_stats
        elif message.kind == "rebuild-read":
            bucket = self._rebuild_read_stats
        else:
            bucket = self._replica_stats
        stats = bucket.setdefault(
            str(message.target_index), {"count": 0, "bytes": 0, "latency": []})
        stats["count"] += 1
        stats["bytes"] += request.size
        stats["latency"].append(float(request.latency))

    def advance(self, until_us: Optional[float],
                inbound: Optional[list[ReplicaMessage]] = None,
                self_deliver: bool = False,
                ) -> tuple[list[ReplicaMessage], float, int]:
        """Deliver ``inbound``, run up to ``until_us``; return
        ``(outbound, peek, epochs)``.

        ``until_us=None`` drains the schedule completely (the no-edges fast
        path).  ``peek`` is the time of the next still-pending event or
        held delivery (``inf`` when the shard is idle) -- the coordinator
        uses the fleet minimum to skip over empty epochs.

        With ``self_deliver=True`` the shard advances **barrier to
        barrier** inside the granted window, injecting its own intra-shard
        replica messages exactly at their delivery barriers (sorted by
        :func:`inbox_order`) and skipping idle epochs, so a self-contained
        shard needs one coordinator task per run-ahead window instead of
        one per busy epoch.  Messages for foreign devices are returned
        (the coordinator only grants run-ahead windows to shards that can
        never emit one).  ``epochs`` counts the barrier windows executed.
        """
        if self._flips:
            # Flips whose barrier the clock already sits on (e.g. the very
            # first advance with a fault at t=0, or a lockstep barrier that
            # ended the previous window) apply *before* this barrier's
            # deliveries -- the same flip-then-deliver order the
            # self-delivering loop uses, so both gears agree.
            self._apply_due_faults()
        if inbound:
            self.deliver(inbound)
        if not self_deliver:
            self._run_to(until_us)
            if self._macro:
                target = None if until_us is None else \
                    int(round(until_us / self.topology.epoch_us))
                self._advance_macro(target)
            outbound = list(self._outbound)
            self._outbound.clear()
            return outbound, self._peek(), (0 if until_us is None else 1)

        epoch_us = self.topology.epoch_us
        executed = 0
        foreign: list[ReplicaMessage] = []
        while True:
            if self._flips and self._apply_due_faults():
                # A failure flip emits its rebuild storm synchronously;
                # route the chunks before computing this barrier's
                # deliveries so none strand in the outbound buffer.
                self._route_outbound(foreign)
            due = [message for message in self._held
                   if message.delivery_epoch == self._position]
            if due:
                self._held = [message for message in self._held
                              if message.delivery_epoch != self._position]
                due.sort(key=inbox_order)
                self.deliver(due)
            targets = []
            if due:
                targets.append(self._position + 1)
            if self._held:
                targets.append(min(message.delivery_epoch
                                   for message in self._held))
            peek = self.sim.peek()
            if peek != math.inf:
                # Jump straight past idle epochs, but never span more than
                # one epoch of activity (emissions must stay deliverable at
                # a future barrier).
                targets.append(max(self._position + 1,
                                   math.floor(peek / epoch_us) + 1))
            for aggregate in self._macro.values():
                # A macro group's next busy window bounds the jump the same
                # way a pending simulator event does: stepping straight to
                # it keeps every macro emission deliverable at the barrier
                # the shard lands on.
                nxt = aggregate.next_activity_epoch()
                if nxt is not None:
                    targets.append(max(self._position + 1, nxt))
            if self._flip_index < len(self._flips):
                # Stop exactly on the next fault barrier: flips apply with
                # the clock sitting on it, never mid-window.
                targets.append(self._flips[self._flip_index].epoch)
            if not targets:
                break
            next_index = min(targets)
            barrier = next_index * epoch_us
            if until_us is not None and barrier > until_us:
                break  # run-ahead window exhausted; resume next task
            self.sim.run(until=barrier)
            self._position = next_index
            executed += 1
            self._advance_macro(next_index)
            self._route_outbound(foreign)
        peek = self._peek()
        for message in self._held:
            peek = min(peek, message.delivery_us)
        return foreign, peek, executed

    def _route_outbound(self, foreign: list[ReplicaMessage]) -> None:
        """Move emitted messages to the intra-shard hold queue or the
        coordinator-bound list (self-delivery mode)."""
        for message in self._outbound:
            if message.target_index in self.devices or \
                    message.target_index in self._macro_index:
                self._held.append(message)
            else:
                foreign.append(message)
        self._outbound.clear()

    def _run_to(self, until_us: Optional[float]) -> None:
        """``sim.run`` segmented at fault barriers (lockstep/drain path).

        A granted window may span a fault barrier (the coordinator windows
        over the fleet-wide minimum); stopping at each pending barrier and
        applying the flips there reproduces exactly the event ordering the
        self-delivering path produces: events at the barrier first, then
        the flips, then everything beyond.
        """
        epoch_us = self.topology.epoch_us
        while self._flip_index < len(self._flips):
            barrier = self._flips[self._flip_index].epoch * epoch_us
            if until_us is not None and barrier > until_us:
                break
            self.sim.run(until=barrier)
            self._apply_due_faults()
        self.sim.run(until=until_us)

    def _peek(self) -> float:
        """Next pending event time, folding in pending fault barriers (a
        fault must wake an otherwise idle fleet) and the start of every
        resident macro group's next busy window (its work happens inside
        that window, so the coordinator must not grant a window past it)."""
        peek = self.sim.peek()
        if self._flip_index < len(self._flips):
            peek = min(peek, self._flips[self._flip_index].epoch
                       * self.topology.epoch_us)
        for aggregate in self._macro.values():
            nxt = aggregate.next_activity_epoch()
            if nxt is not None:
                peek = min(peek, (nxt - 1) * self.topology.epoch_us)
        return peek

    # -- fault application -------------------------------------------------
    def _apply_due_faults(self) -> bool:
        """Apply every scheduled flip whose barrier time has been reached.

        Flips are synchronous state changes, never simulator events: event
        identity (heap sequence numbers) depends on the shard layout, so
        scheduling flips as events would perturb same-timestamp ordering
        and break the bit-identical guarantee.
        """
        applied = False
        epoch_us = self.topology.epoch_us
        while self._flip_index < len(self._flips):
            flip = self._flips[self._flip_index]
            if flip.epoch * epoch_us > self.sim.now:
                break
            self._flip_index += 1
            applied = True
            proxy = self._fault_proxies[flip.index]
            if flip.action == "online":
                proxy.offline = False
                continue
            proxy.offline = True
            self._record_failure(flip)
        return applied

    def _record_failure(self, flip: _FaultFlip) -> None:
        """Emit the rebuild storm (``kind="fail"``) and log the window."""
        topology = self.topology
        epoch_us = topology.epoch_us
        event = flip.event
        chunks = emitted = 0
        end: Optional[float] = None
        if event.kind == "fail":
            chunks, emitted, last_epoch = self._emit_rebuild(flip)
            if chunks:
                # Chunks delivered at epoch e land within (e, e+1].
                end = (last_epoch + 1) * epoch_us
        back = repair_epoch(event, epoch_us)
        repair_us = back * epoch_us if back is not None else None
        if repair_us is not None:
            end = repair_us if end is None else max(end, repair_us)
        group_name, local_index = self._placement[flip.index]
        self._fault_windows.append({
            "kind": event.kind,
            "group": group_name,
            "device": local_index,
            "index": flip.index,
            "start_us": flip.epoch * epoch_us,
            "end_us": end,  # None = degraded until the end of the run
            "repair_us": repair_us,
            "spare": event.spare,
            "rebuild_chunks": chunks,
            "rebuild_bytes": emitted,
        })

    def _emit_rebuild(self, flip: _FaultFlip) -> tuple[int, int, int]:
        """Queue the re-replication storm for a failed device.

        The data to rebuild is what the device had absorbed (host-visible
        bytes written, capped at its capacity); it is re-written in paced
        chunks onto the promoted hot spare, or round-robin across the
        surviving peers of the failed group.  Every chunk additionally
        issues a paced *source read* against a surviving replica holder
        (the targets of the failed group's replication edges, using the
        same local-index mapping the mirroring hook uses) -- a
        re-replication storm loads both ends of the copy.  Chunks ride the
        ordinary :class:`ReplicaMessage` barrier machinery starting one
        epoch after the failure, so rebuild traffic contends with
        foreground tenants through the normal device submission path.

        Returns ``(chunks, bytes, last delivery epoch)``.
        """
        topology = self.topology
        policy = topology.fault_policy
        event = flip.event
        origin = flip.index
        device = self.devices[origin]
        rebuilt = min(device.stats.bytes_written, device.capacity_bytes)
        if rebuilt <= 0:
            return 0, 0, flip.epoch
        offline = self._offline_at_epoch(flip.epoch)
        local_index = self._placement[origin][1]
        if event.spare is not None:
            spare_indices = topology.group_indices(event.spare)
            targets = [spare_indices[local_index % len(spare_indices)]]
            target_group = topology.group(event.spare)
        else:
            targets = [index
                       for index in topology.group_indices(event.group)
                       if index != origin and index not in offline]
            target_group = topology.group(event.group)
        if not targets:
            return 0, 0, flip.epoch
        # Surviving holders of the lost data: the replica devices the
        # mirroring hook would have written (edge targets, same mapping).
        sources = []
        for edge in topology.edges_from(event.group):
            indices = topology.group_indices(edge.target)
            for replica in range(edge.policy().replication_factor):
                source = indices[(local_index + replica) % len(indices)]
                if source not in offline and source not in sources:
                    sources.append(source)
        capacity = _group_capacity(target_group)
        half = (capacity // 2) - (capacity // 2) % 4096
        chunk = min(policy.rebuild_chunk_bytes, max(4096, half))
        chunks = math.ceil(rebuilt / chunk)
        epoch_us = topology.epoch_us
        emitted = 0
        last_epoch = flip.epoch

        def emit(target: int, kind: str, offset: int, size: int,
                 delivery_epoch: int) -> None:
            seq = self._origin_seq.get(origin, 0)
            self._origin_seq[origin] = seq + 1
            self._outbound.append(ReplicaMessage(
                delivery_us=delivery_epoch * epoch_us, target_index=target,
                offset=offset, size=size, origin_index=origin,
                origin_seq=seq, delivery_epoch=delivery_epoch, kind=kind))

        for j in range(chunks):
            size = min(chunk, rebuilt - j * chunk)
            size += (-size) % 4096
            delivery_epoch = flip.epoch + 1 + j // policy.rebuild_chunks_per_epoch
            if sources:
                emit(sources[j % len(sources)], "rebuild-read",
                     j * chunk, size, delivery_epoch)
            emit(targets[j % len(targets)], "rebuild",
                 j * chunk, size, delivery_epoch)
            emitted += size
            last_epoch = delivery_epoch
        return chunks, emitted, last_epoch

    def _offline_at_epoch(self, epoch: int) -> set[int]:
        """Global indices offline at barrier ``epoch`` per the *declared*
        schedule -- computed from the topology alone so survivor selection
        is identical in every shard layout.  Devices failing at the same
        barrier conservatively see each other as offline."""
        epoch_us = self.topology.epoch_us
        offline: set[int] = set()
        for event in self.topology.faults:
            down = fault_epoch(event.at_us, epoch_us)
            back = repair_epoch(event, epoch_us)
            if down <= epoch and (back is None or back > epoch):
                offline.update(self._fault_indices(event))
        return offline

    # -- collection --------------------------------------------------------
    def collect(self) -> dict[str, Any]:
        """Serialize the shard's measurements (JSON/pickle-safe payload)."""
        tenants: dict[str, dict[str, Any]] = {}
        for tenant_name, index, result, accumulator, record in self._runs:
            tenants.setdefault(tenant_name, {})[str(index)] = \
                _result_payload(result, accumulator, record)
        replica_stats = dict(self._replica_stats)
        rebuild_stats = dict(self._rebuild_stats)
        fault_windows = list(self._fault_windows)
        shed: dict[str, dict[str, int]] = {
            str(index): {"ios": proxy.shed_ios, "bytes": proxy.shed_bytes}
            for index, proxy in sorted(self._fault_proxies.items())
            if proxy.shed_ios
        }
        # A macro group reports through the exact same schema at its first
        # global index: one aggregate per-tenant payload (carrying its own
        # ``devices`` count and ``approximate: True``) plus pooled
        # replica/rebuild/shed stats.
        for name in sorted(self._macro,
                           key=lambda n: self._macro[n].first_index):
            aggregate = self._macro[name]
            anchor = str(aggregate.first_index)
            for tenant_name, payload in aggregate.collect_tenants().items():
                tenants.setdefault(tenant_name, {})[anchor] = payload
            for kind, stats in aggregate.collect_inflow().items():
                bucket = rebuild_stats if kind == "rebuild" else replica_stats
                bucket[anchor] = stats
            fault_windows.extend(aggregate.collect_fault_windows())
            macro_shed = aggregate.collect_shed()
            if macro_shed["ios"]:
                shed[anchor] = macro_shed
        payload = {
            "shard_id": self.plan.shard_id,
            "scheduled_events": self.sim.scheduled_events,
            "tenants": tenants,
            "replicas": replica_stats,
        }
        if self.topology.faults:
            payload["rebuilds"] = rebuild_stats
            payload["rebuild_reads"] = self._rebuild_read_stats
            payload["fault_windows"] = fault_windows
            payload["shed"] = shed
        return payload


def _result_payload(result, accumulator: Optional[dict],
                    record: Optional[list] = None) -> dict[str, Any]:
    """Uniform per-(tenant, device) payload for Job- and Replay-results."""
    events = result.timeline.events()
    if accumulator is None:  # JobResult
        started = result.started_us
        finished = result.finished_us
        if finished <= started:
            # Defensive: a job that recorded nothing keeps duration 0; never
            # fall back to sim.now, which depends on the shard layout.
            finished = events[-1][0] if events else started
        bytes_read = result.bytes_read
        bytes_written = result.bytes_written
        ios = result.ios_completed
    else:  # ReplayResult (open loop starts at time 0)
        started = 0.0
        finished = events[-1][0] if events else 0.0
        bytes_read = accumulator["bytes_read"]
        bytes_written = accumulator["bytes_written"]
        ios = result.ios_completed
    payload = {
        "ios_completed": ios,
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "started_us": started,
        "finished_us": finished,
        "latency": result.latency.samples.tolist(),
        "timeline": [[time_us, num_bytes] for time_us, num_bytes in events],
    }
    if record is not None:
        payload["completion_times"] = record
    return payload


# ---------------------------------------------------------------------------
# Process-pool entry points (one dedicated worker process per shard)
# ---------------------------------------------------------------------------

_WORKER: Optional[ShardWorker] = None


def _worker_init(topology_json: str, plan_payload: dict) -> int:
    """Build the resident ShardWorker inside the dedicated worker process."""
    global _WORKER
    _WORKER = ShardWorker(FleetTopology.from_json(topology_json),
                          ShardPlan.from_payload(plan_payload))
    return _WORKER.plan.shard_id


def _worker_advance(until_us: Optional[float],
                    inbound: list[ReplicaMessage],
                    self_deliver: bool = False,
                    ) -> tuple[list[ReplicaMessage], float, int]:
    assert _WORKER is not None, "shard worker not initialised"
    return _WORKER.advance(until_us, inbound, self_deliver)


def _worker_collect() -> dict[str, Any]:
    assert _WORKER is not None, "shard worker not initialised"
    return _WORKER.collect()
