"""Figure 3: runtime throughput under a sustained random-write flood.

The paper writes 3x each device's capacity with random writes and plots
throughput over time: the local SSD collapses once ~90% of its capacity has
been written (device GC), ESSD-1 only degrades after ~2.55x its capacity
(provider flow limiting), and ESSD-2 sustains its budget throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import (
    DeviceKind,
    ExperimentScale,
    build_device,
    format_table,
)
from repro.host.io import KiB
from repro.sim import Simulator
from repro.workload.fio import FioJob, run_job


@dataclass
class SustainedWriteResult:
    """Throughput-over-written-volume series for one device."""

    device: DeviceKind
    capacity_bytes: int
    #: (cumulative bytes written, GB/s over the bin) samples.
    series: list[tuple[int, float]] = field(default_factory=list)
    peak_gbps: float = 0.0
    final_gbps: float = 0.0
    write_amplification: Optional[float] = None
    flow_limited: bool = False

    def cliff_capacity_factor(self, drop_fraction: float = 0.5) -> Optional[float]:
        """Written-volume multiple of capacity at which throughput first drops
        below ``drop_fraction`` of its peak (``None`` = no such drop)."""
        if not self.series:
            return None
        threshold = self.peak_gbps * drop_fraction
        for written, gbps in self.series:
            if gbps < threshold and written > self.capacity_bytes // 4:
                return written / self.capacity_bytes
        return None

    def sustained_fraction(self) -> float:
        """Fraction of the written volume completed at >= 80% of peak throughput."""
        if not self.series or self.peak_gbps == 0:
            return 0.0
        good = sum(1 for _, gbps in self.series if gbps >= 0.8 * self.peak_gbps)
        return good / len(self.series)


@dataclass
class Figure3Result:
    """Results for all devices in the sustained-write experiment."""

    results: dict[DeviceKind, SustainedWriteResult] = field(default_factory=dict)
    capacity_factor: float = 3.0

    def render(self) -> str:
        headers = ["Device", "Peak GB/s", "Final GB/s", "Cliff (x capacity)",
                   "Sustained@80%", "WA", "Flow limited"]
        rows = []
        for device, result in self.results.items():
            cliff = result.cliff_capacity_factor()
            rows.append([
                device.value,
                f"{result.peak_gbps:.2f}",
                f"{result.final_gbps:.2f}",
                "none" if cliff is None else f"{cliff:.2f}x",
                f"{result.sustained_fraction():.0%}",
                "-" if result.write_amplification is None
                else f"{result.write_amplification:.2f}",
                "yes" if result.flow_limited else "no",
            ])
        return ("Sustained random write of "
                f"{self.capacity_factor:.1f}x capacity (Figure 3)\n"
                + format_table(headers, rows))


def run_figure3(scale: Optional[ExperimentScale] = None,
                capacity_factor: float = 3.0,
                io_size: int = 128 * KiB,
                queue_depth: int = 32,
                bin_us: float = 100_000.0,
                devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                 DeviceKind.ESSD2)) -> Figure3Result:
    """Run the sustained random-write experiment for each device."""
    scale = scale or ExperimentScale.default()
    figure = Figure3Result(capacity_factor=capacity_factor)
    for kind in devices:
        sim = Simulator()
        device = build_device(sim, kind, scale)
        capacity = device.capacity_bytes
        job = FioJob(
            name=f"fig3-{kind.value}",
            pattern="randwrite",
            io_size=io_size,
            queue_depth=queue_depth,
            total_bytes=int(capacity_factor * capacity),
            seed=29,
        )
        measured = run_job(sim, device, job)
        samples = measured.timeline.binned(bin_us)
        series = []
        written = 0
        for sample in samples:
            written += sample.bytes_completed
            series.append((written, sample.gigabytes_per_second))
        result = SustainedWriteResult(
            device=kind,
            capacity_bytes=capacity,
            series=series,
            peak_gbps=max((gbps for _, gbps in series), default=0.0),
            final_gbps=series[-1][1] if series else 0.0,
        )
        if hasattr(device, "write_amplification"):
            result.write_amplification = device.write_amplification
        if hasattr(device, "flow_limited"):
            result.flow_limited = device.flow_limited
        figure.results[kind] = result
    return figure
