"""Macro-vs-discrete validation harness (repro.cluster.macro).

Every workload family the macro model claims to approximate is run twice
through :func:`run_fleet_serial` -- once discretised, once as a calibrated
macro aggregate -- and compared metric by metric against per-family
tolerance bands.  Conserved quantities (I/O and byte totals) must match
exactly; latency quantiles and throughput must land inside the declared
error envelope.  The same envelope is measured continuously by
``benchmarks/test_bench_macro.py`` and gated in ``compare_bench.py``.

The determinism half mirrors tests/test_cluster.py: a macro fleet must be
bit-identical across shard layouts, including mixed macro/discrete
replication edges and fault schedules.
"""

import json

import pytest

from repro.cluster import (
    FaultPolicy,
    FleetCoordinator,
    FleetTopology,
    edge,
    fault,
    fleet,
    group,
    run_fleet_serial,
    tenant,
)
from repro.cluster.macro import clear_calibration_memo
from repro.experiments.cli import main as cli_main
from repro.experiments.scenarios import register, scenario

MINI_CAPACITY = 1 << 24


def rel_err(measured: float, reference: float) -> float:
    if measured == reference:
        return 0.0
    return abs(measured - reference) / max(abs(measured), abs(reference), 1e-12)


def strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


def canonical(payload: dict) -> str:
    return json.dumps(strip_runtime(payload), sort_keys=True)


def one_group_fleet(workload: dict, device: str = "SSD",
                    count: int = 6, seed: int = 71) -> FleetTopology:
    return fleet(
        "macro-validation",
        groups=[group("grp", device, count)],
        tenants=[tenant("t", "grp", **workload)],
        epoch_us=1000.0,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Accuracy: per-family tolerance bands
# ---------------------------------------------------------------------------

#: The declared error envelope of the mean-field approximation, per workload
#: family.  Latency quantiles come from calibrated per-I/O distributions and
#: sit within a few percent; throughput carries the largest error because a
#: discrete fleet's duration is the max over per-device RNG streams while
#: the macro group sees one representative stream.
FAMILIES = {
    "randread": dict(
        device="SSD",
        workload=dict(pattern="randread", io_size=4096, queue_depth=4,
                      io_count=200),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.25),
    ),
    "randwrite": dict(
        device="SSD",
        workload=dict(pattern="randwrite", io_size=16384, queue_depth=8,
                      io_count=200),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.10),
    ),
    "randrw": dict(
        device="ESSD-2",
        workload=dict(pattern="randrw", io_size=16384, queue_depth=4,
                      write_ratio=0.3, io_count=200),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.25),
    ),
    "trace-uniform": dict(
        device="ESSD-2",
        workload=dict(trace="uniform", duration_us=50_000.0, load_gbps=0.4,
                      io_size=65536, write_ratio=0.7),
        bands=dict(p50=0.10, p95=0.10, p99=0.15, mean=0.10, throughput=0.10),
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_macro_matches_discrete_within_declared_bands(family):
    spec = FAMILIES[family]
    topology = one_group_fleet(spec["workload"], device=spec["device"])
    discrete = run_fleet_serial(topology)
    macro = run_fleet_serial(topology.with_macro("grp"))

    ref = discrete["tenants"]["t"]
    got = macro["tenants"]["t"]
    assert got["approximate"] is True
    assert "approximate" not in ref
    assert got["devices"] == ref["devices"] == topology.groups[0].count

    # Conserved quantities: the macro group must not invent or drop work.
    assert got["ios_completed"] == ref["ios_completed"]
    if "trace" in spec["workload"]:
        # Trace byte totals depend on per-device arrival draws; the macro
        # group replays one representative stream, so totals track within
        # a couple percent rather than exactly.
        assert rel_err(got["bytes_read"] + got["bytes_written"],
                       ref["bytes_read"] + ref["bytes_written"]) <= 0.02
    else:
        assert got["bytes_read"] + got["bytes_written"] \
            == ref["bytes_read"] + ref["bytes_written"]

    bands = spec["bands"]
    for quantile in ("p50", "p95", "p99", "mean"):
        key = f"{quantile}_us"
        err = rel_err(got[key], ref[key])
        assert err <= bands[quantile], \
            f"{family} {key}: macro={got[key]:.2f} discrete={ref[key]:.2f} " \
            f"err={err:.3f} > band={bands[quantile]}"
    err = rel_err(got["throughput_gbps"], ref["throughput_gbps"])
    assert err <= bands["throughput"], \
        f"{family} throughput: err={err:.3f} > band={bands['throughput']}"


def test_macro_metrics_carry_approximate_flag_through_every_level():
    topology = one_group_fleet(FAMILIES["randwrite"]["workload"])
    payload = run_fleet_serial(topology.with_macro("grp"))
    assert payload["fleet"]["approximate"] is True
    assert payload["groups"]["grp"]["approximate"] is True
    assert payload["tenants"]["t"]["approximate"] is True
    # The discrete twin carries no flag at all -- absence means exact.
    exact = run_fleet_serial(topology)
    assert "approximate" not in exact["fleet"]
    assert "approximate" not in exact["groups"]["grp"]


def test_macro_calibration_is_memoized_within_a_process():
    clear_calibration_memo()
    topology = one_group_fleet(FAMILIES["randwrite"]["workload"])
    first = run_fleet_serial(topology.with_macro("grp"))
    second = run_fleet_serial(topology.with_macro("grp"))
    assert canonical(first) == canonical(second)


def test_macro_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MACRO_CACHE", str(tmp_path))
    clear_calibration_memo()
    topology = one_group_fleet(FAMILIES["randwrite"]["workload"])
    first = run_fleet_serial(topology.with_macro("grp"))
    assert list(tmp_path.glob("*.json")), "calibration cache file not written"
    # A cold memo served from disk must reproduce the run bit-identically.
    clear_calibration_memo()
    second = run_fleet_serial(topology.with_macro("grp"))
    assert canonical(first) == canonical(second)
    clear_calibration_memo()


# ---------------------------------------------------------------------------
# Determinism: layout independence, mixed edges, faults
# ---------------------------------------------------------------------------

def mixed_mode_fleet(**changes) -> FleetTopology:
    """Macro and discrete groups exchanging replicas in both directions."""
    topology = fleet(
        "macro-mixed",
        groups=[
            group("src", "LOOP", 4, capacity_bytes=MINI_CAPACITY,
                  mode="macro"),
            group("dst", "LOOP", 4, capacity_bytes=MINI_CAPACITY),
            group("back", "LOOP", 3, capacity_bytes=MINI_CAPACITY,
                  mode="macro"),
        ],
        tenants=[
            tenant("writer", "src", pattern="randwrite", io_size=8192,
                   queue_depth=2, io_count=30),
            tenant("relay", "dst", pattern="randwrite", io_size=4096,
                   queue_depth=1, io_count=20),
        ],
        # macro -> discrete and discrete -> macro edges: both replica
        # directions cross the aggregate boundary.
        edges=[edge("src", "dst", replication_factor=2),
               edge("dst", "back")],
        epoch_us=200.0,
        seed=9,
    )
    return topology.scaled(**changes) if changes else topology


@pytest.mark.parametrize("shards", [2, 3])
def test_mixed_macro_fleet_is_bit_identical_across_layouts(shards):
    topology = mixed_mode_fleet()
    serial = run_fleet_serial(topology)
    sharded = FleetCoordinator(shards=shards).run(topology)
    assert canonical(serial) == canonical(sharded)
    # Replica byte conservation across the aggregate boundary: dst receives
    # exactly replication_factor x the macro source's writes.
    written = serial["groups"]["src"]["bytes_written"]
    assert serial["groups"]["dst"]["replica_bytes"] == 2 * written


def test_macro_group_is_never_split_across_shards():
    topology = mixed_mode_fleet()
    payload = FleetCoordinator(shards=4).run(topology)
    partition = payload["runtime"]["partition"]
    for indices in (topology.group_indices("src"),
                    topology.group_indices("back")):
        owners = {next(sid for sid, owned in enumerate(partition)
                       if index in owned)
                  for index in indices}
        assert len(owners) == 1, f"macro atom split across shards {owners}"


def faulted_macro_fleet() -> FleetTopology:
    return fleet(
        "macro-faulted",
        groups=[
            group("store", "LOOP", 4, capacity_bytes=MINI_CAPACITY,
                  mode="macro"),
            group("spare", "LOOP", 2, capacity_bytes=MINI_CAPACITY,
                  preload=False),
        ],
        tenants=[
            tenant("oltp", "store", pattern="randwrite", io_size=8192,
                   queue_depth=2, io_count=400),
        ],
        # The fault lands while the tenant is still active, so shedding and
        # the degraded window are exercised, not just declared.
        faults=[fault("fail", "store", at_us=600.0, device=1,
                      repair_after_us=2_000.0, spare="spare")],
        fault_policy=FaultPolicy(rebuild_chunk_bytes=64 * 1024,
                                 shed_penalty_us=150.0),
        epoch_us=200.0,
        seed=13,
    )


def test_faulted_macro_fleet_sheds_rebuilds_and_stays_deterministic():
    topology = faulted_macro_fleet()
    serial = run_fleet_serial(topology)
    sharded = FleetCoordinator(shards=2).run(topology)
    assert canonical(serial) == canonical(sharded)

    faults = serial["faults"]
    assert faults["degraded_us"] > 0.0
    assert faults["rebuild_bytes"] > 0
    assert any(window.get("approximate") for window in faults["events"])
    # The rebuild streams onto the promoted spare tier.
    assert serial["groups"]["spare"]["rebuild_bytes"] > 0
    # One store device offline for 10 epochs of a busy run must shed work.
    assert serial["groups"]["store"]["shed_ios"] > 0


# ---------------------------------------------------------------------------
# CLI override
# ---------------------------------------------------------------------------

def _register_macro_scenario():
    spec = scenario(
        "mini-macro-under-test", "test-only macro fleet",
        devices=("fleet",),
        # Start all-discrete; the CLI override flips modes per run.
        fleet=mixed_mode_fleet().with_modes(
            {"src": "discrete", "back": "discrete"}),
        grid={"fleet.src.count": (4,)},
    )
    register(spec, replace=True)
    return spec


def test_cli_macro_override_flags_results_approximate(tmp_path, capsys):
    _register_macro_scenario()
    out = tmp_path / "macro.json"
    assert cli_main(["fleet", "mini-macro-under-test", "--serial",
                     "--no-cache", "--macro", "src,back=macro",
                     "--out", str(out)]) == 0
    capsys.readouterr()
    reports = json.loads(out.read_text())
    result = reports[0]["result"]
    assert result["groups"]["src"]["approximate"] is True
    assert result["groups"]["back"]["approximate"] is True
    assert "approximate" not in result["groups"]["dst"]
    assert result["fleet"]["approximate"] is True


def test_cli_macro_override_matches_library_run(tmp_path, capsys):
    _register_macro_scenario()
    out = tmp_path / "macro.json"
    assert cli_main(["fleet", "mini-macro-under-test", "--serial",
                     "--no-cache", "--macro", "src,back",
                     "--out", str(out)]) == 0
    capsys.readouterr()
    reports = json.loads(out.read_text())
    via_cli = reports[0]["result"]
    spec = _register_macro_scenario()
    topology = FleetTopology.from_json(spec.cells()[0].fleet) \
        .with_macro("src", "back")
    via_library = run_fleet_serial(topology)
    assert canonical(via_cli) == canonical(via_library)
