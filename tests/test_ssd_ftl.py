"""Tests for the SSD's FTL building blocks: mapping, allocator, buffer, prefetcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.sim import Simulator
from repro.ssd.allocator import BlockAllocator, BlockState, WriteStream
from repro.ssd.mapping import UNMAPPED, PageMapping
from repro.ssd.prefetcher import ReadCache, SequentialPrefetcher
from repro.ssd.write_buffer import WriteBuffer


# ---------------------------------------------------------------------------
# PageMapping
# ---------------------------------------------------------------------------

def make_mapping(logical=64, slots=128, per_block=16):
    return PageMapping(logical_blocks=logical, total_slots=slots, slots_per_block=per_block)


def test_mapping_basic_map_and_lookup():
    mapping = make_mapping()
    assert mapping.lookup(0) == UNMAPPED
    assert not mapping.is_mapped(0)
    mapping.map(0, 5)
    assert mapping.lookup(0) == 5
    assert mapping.reverse_lookup(5) == 0
    assert mapping.valid_slots_in_block(0) == 1
    assert mapping.mapped_blocks == 1


def test_mapping_overwrite_invalidates_old_slot():
    mapping = make_mapping()
    mapping.map(3, 2)
    mapping.map(3, 20)
    assert mapping.lookup(3) == 20
    assert mapping.reverse_lookup(2) == UNMAPPED
    assert mapping.valid_slots_in_block(0) == 0
    assert mapping.valid_slots_in_block(1) == 1
    assert mapping.mapped_blocks == 1


def test_mapping_unmap_and_clear_block():
    mapping = make_mapping()
    mapping.map(1, 1)
    mapping.map(2, 2)
    assert mapping.unmap(1) == 1
    assert mapping.unmap(1) == UNMAPPED
    with pytest.raises(ValueError):
        mapping.clear_block(0)  # still one valid slot (lbn 2)
    mapping.unmap(2)
    mapping.clear_block(0)
    assert mapping.valid_slots_in_block(0) == 0


def test_mapping_rejects_double_occupancy_and_bad_indices():
    mapping = make_mapping()
    mapping.map(0, 0)
    with pytest.raises(ValueError):
        mapping.map(1, 0)
    with pytest.raises(ValueError):
        mapping.map(999, 1)
    with pytest.raises(ValueError):
        mapping.map(1, 9999)


def test_mapping_valid_lbns_in_block():
    mapping = make_mapping()
    for lbn, psn in [(0, 0), (1, 1), (2, 17)]:
        mapping.map(lbn, psn)
    assert sorted(mapping.valid_lbns_in_block(0)) == [0, 1]
    assert mapping.valid_lbns_in_block(1) == [2]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 127)),
                min_size=1, max_size=120))
def test_mapping_invariants_under_random_updates(operations):
    """Property: valid counters always equal the number of distinct mapped slots."""
    mapping = make_mapping()
    occupied: dict[int, int] = {}
    for lbn, psn in operations:
        if psn in occupied.values():
            continue  # slot already in use: the FTL never reuses a live slot
        mapping.map(lbn, psn)
        occupied[lbn] = psn
    assert mapping.mapped_blocks == len(occupied)
    assert int(mapping.valid_block_counts().sum()) == len(occupied)
    for lbn, psn in occupied.items():
        assert mapping.lookup(lbn) == psn
        assert mapping.reverse_lookup(psn) == lbn
    assert 0.0 <= mapping.utilization <= 1.0


# ---------------------------------------------------------------------------
# BlockAllocator
# ---------------------------------------------------------------------------

def make_allocator():
    geometry = FlashGeometry(channels=2, dies_per_channel=1, planes_per_die=2,
                             blocks_per_plane=4, pages_per_block=4, page_size=16 * 1024)
    return BlockAllocator(geometry, slots_per_page=4)


def test_allocator_initial_state():
    allocator = make_allocator()
    assert allocator.total_blocks == 8
    assert allocator.total_free_blocks() == 8
    assert allocator.min_free_blocks() == 4
    assert allocator.slots_per_block == 2 * 4 * 4
    assert allocator.state_of(0) is BlockState.FREE


def test_allocator_allocates_consecutive_slots_and_marks_full():
    allocator = make_allocator()
    first = allocator.allocate_slots(0, 8, WriteStream.HOST, reserve=1)
    second = allocator.allocate_slots(0, 8, WriteStream.HOST, reserve=1)
    assert first == list(range(0, 8))
    assert second == list(range(8, 16))
    assert allocator.free_blocks(0) == 3
    # Block 0 holds 32 slots; after 32 slots it becomes FULL.
    allocator.allocate_slots(0, 16, WriteStream.HOST, reserve=1)
    assert allocator.state_of(0) is BlockState.FULL
    assert allocator.gc_candidates(0) == [0]


def test_allocator_respects_host_reserve():
    allocator = make_allocator()
    # Drain die 0 down to the reserve.
    while allocator.can_allocate(0, WriteStream.HOST, reserve=3):
        allocator.allocate_slots(0, allocator.slots_per_block, WriteStream.HOST, reserve=3)
    assert allocator.free_blocks(0) <= 3
    assert not allocator.can_allocate(0, WriteStream.HOST, reserve=3)
    # GC ignores the reserve.
    assert allocator.can_allocate(0, WriteStream.GC, reserve=3)


def test_allocator_pick_die_round_robin_and_exhaustion():
    allocator = make_allocator()
    picks = {allocator.pick_die(WriteStream.HOST, reserve=0) for _ in range(4)}
    assert picks == {0, 1}
    # Exhaust everything; pick_die must return None.
    for die in (0, 1):
        while allocator.can_allocate(die, WriteStream.HOST, reserve=0):
            allocator.allocate_slots(die, allocator.slots_per_block,
                                     WriteStream.HOST, reserve=0)
    assert allocator.pick_die(WriteStream.HOST, reserve=0) is None


def test_allocator_release_cycle():
    allocator = make_allocator()
    allocator.allocate_slots(0, allocator.slots_per_block, WriteStream.HOST, reserve=0)
    assert allocator.state_of(0) is BlockState.FULL
    allocator.release_block(0)
    assert allocator.state_of(0) is BlockState.FREE
    assert allocator.erase_count[0] == 1
    with pytest.raises(ValueError):
        allocator.release_block(0)


def test_allocator_die_of_block_and_bounds():
    allocator = make_allocator()
    assert allocator.die_of_block(0) == 0
    assert allocator.die_of_block(allocator.blocks_per_die) == 1
    with pytest.raises(ValueError):
        allocator.die_of_block(999)
    with pytest.raises(ValueError):
        allocator.allocate_slots(0, 0, WriteStream.HOST, reserve=0)


# ---------------------------------------------------------------------------
# WriteBuffer
# ---------------------------------------------------------------------------

def test_write_buffer_insert_flush_cycle():
    sim = Simulator()
    buffer = WriteBuffer(sim, capacity_slots=4)
    for lbn in range(4):
        assert buffer.has_room_for(lbn)
        buffer.insert(lbn)
    assert not buffer.has_room_for(99)
    assert buffer.has_room_for(2)  # overwrite needs no space
    buffer.insert(2)
    assert buffer.overwrite_hits == 1
    batch = buffer.take_batch(3)
    assert batch == [0, 1, 3]  # lbn 2 moved to the back on overwrite
    assert buffer.contains(0)  # still readable while in flight
    buffer.complete_flush(batch)
    assert not buffer.contains(0)
    assert buffer.free_slots == 3


def test_write_buffer_overflow_raises_and_waiters_fire():
    sim = Simulator()
    buffer = WriteBuffer(sim, capacity_slots=1)
    buffer.insert(0)
    with pytest.raises(RuntimeError):
        buffer.insert(1)
    woken = []

    def waiter():
        yield buffer.wait_for_space()
        woken.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert woken == []  # nothing flushed yet
    buffer.complete_flush(buffer.take_batch(1))
    sim.run()
    assert woken == [0.0]


def test_write_buffer_requeue_returns_blocks_to_dirty():
    sim = Simulator()
    buffer = WriteBuffer(sim, capacity_slots=4)
    buffer.insert(1)
    batch = buffer.take_batch(4)
    buffer.requeue(batch)
    assert buffer.dirty_slots == 1
    assert buffer.take_batch(4) == [1]


# ---------------------------------------------------------------------------
# ReadCache / SequentialPrefetcher
# ---------------------------------------------------------------------------

def test_read_cache_lru_eviction_and_hit_ratio():
    cache = ReadCache(capacity_slots=2)
    cache.insert(1)
    cache.insert(2)
    assert cache.lookup(1)
    cache.insert(3)  # evicts 2 (LRU)
    assert not cache.lookup(2)
    assert cache.lookup(3)
    cache.invalidate(3)
    assert not cache.lookup(3)
    assert 0.0 < cache.hit_ratio < 1.0


def test_prefetcher_triggers_after_sequential_run():
    prefetcher = SequentialPrefetcher(trigger=2, window_slots=8, logical_blocks=1000)
    assert prefetcher.observe(0, 4) is None
    decision = prefetcher.observe(4, 4)
    assert decision is not None
    assert decision.start_lbn == 8
    assert decision.num_slots == 8
    assert list(decision.lbns) == list(range(8, 16))
    assert prefetcher.prefetches_issued == 1


def test_prefetcher_ignores_random_accesses():
    prefetcher = SequentialPrefetcher(trigger=2, window_slots=8, logical_blocks=1000)
    assert prefetcher.observe(100, 4) is None
    assert prefetcher.observe(500, 4) is None
    assert prefetcher.observe(10, 4) is None
    assert prefetcher.prefetches_issued == 0


def test_prefetcher_clamps_to_device_end():
    prefetcher = SequentialPrefetcher(trigger=1, window_slots=64, logical_blocks=20)
    decision = prefetcher.observe(10, 4)
    assert decision is not None
    assert decision.start_lbn + decision.num_slots <= 20
    prefetcher.reset()
    assert prefetcher.observe(14, 4) is not None or True  # reset clears streams
