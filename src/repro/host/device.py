"""The :class:`BlockDevice` base class all bundled device models build on.

``BlockDevice`` implements the full :class:`repro.devices.Device` protocol
(submission, statistics, tracing, preload) so concrete models only write
``_serve``.  Workloads and experiments are typed against the protocol, not
this class -- a device need not inherit from it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.host.io import IOKind, IORequest
from repro.sim.events import spawn_process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Event, Simulator
    from repro.sim.trace import Tracer


@dataclass
class DeviceStats:
    """Cumulative counters every device keeps.

    All byte counters are host-visible bytes (before any device-internal
    amplification); device models add their own extended statistics on top.
    """

    reads_completed: int = 0
    writes_completed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flushes_completed: int = 0
    errors: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ios_completed(self) -> int:
        return self.reads_completed + self.writes_completed + self.flushes_completed

    def record(self, request: IORequest) -> None:
        """Account for a completed request."""
        if request.kind is IOKind.READ:
            self.reads_completed += 1
            self.bytes_read += request.size
        elif request.kind is IOKind.WRITE:
            self.writes_completed += 1
            self.bytes_written += request.size
        elif request.kind is IOKind.FLUSH:
            self.flushes_completed += 1


class BlockDevice(abc.ABC):
    """A block-addressable storage device attached to a simulator.

    Sub-classes implement :meth:`_serve`, a simulation process that performs
    one request and returns it.  The public entry point is :meth:`submit`,
    which validates the request, stamps its submit time, and returns the
    completion event (a :class:`~repro.sim.events.Process`).
    """

    def __init__(self, sim: "Simulator", capacity_bytes: int,
                 logical_block_size: int = 4096, name: str = "device"):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if logical_block_size <= 0 or capacity_bytes % logical_block_size != 0:
            raise ValueError(
                f"capacity {capacity_bytes} must be a multiple of the logical "
                f"block size {logical_block_size}")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.logical_block_size = logical_block_size
        self.name = name
        self.stats = DeviceStats()
        #: Request-path tracer; ``None`` (the default) keeps tracing free.
        self.tracer: Optional["Tracer"] = None

    # -- public API ---------------------------------------------------------
    def set_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach a :class:`repro.sim.trace.Tracer` (``None`` detaches)."""
        self.tracer = tracer

    def submit(self, request: IORequest) -> "Event":
        """Submit ``request``; returns an event that succeeds with the request
        once the device has completed it.

        On the fast path the request runs through the device's flattened
        :meth:`_pipeline` in a pooled process; with ``fast_path=False`` it
        runs the pre-refactor :meth:`_complete` / :meth:`_serve` trampoline,
        frame for frame -- the faithful baseline the roundtrip
        microbenchmark compares against.  Both schedule the same events in
        the same order, so kernel traces stay bit-identical.
        """
        self.validate(request)
        sim = self.sim
        if not sim.fast_path:
            request.submit_time = sim.now
            if self.tracer is not None:
                self.tracer.start(request, self.name)
            return sim.process(self._complete(request))
        request.submit_time = sim._now
        if self.tracer is not None:
            self.tracer.start(request, self.name)
        return spawn_process(sim, self._pipeline(request))

    def read(self, offset: int, size: int, **kwargs) -> "Event":
        """Submit a read of ``size`` bytes at ``offset``."""
        return self.submit(IORequest.read(offset, size, **kwargs))

    def write(self, offset: int, size: int, **kwargs) -> "Event":
        """Submit a write of ``size`` bytes at ``offset``."""
        return self.submit(IORequest.write(offset, size, **kwargs))

    def flush(self, **kwargs) -> "Event":
        """Submit a flush request (drain volatile buffers)."""
        return self.submit(IORequest.flush(**kwargs))

    def validate(self, request: IORequest) -> None:
        """Raise ``ValueError`` for requests outside the device's address space
        or not aligned to the logical block size."""
        if request.kind is IOKind.FLUSH:
            return
        if request.offset % self.logical_block_size != 0:
            raise ValueError(
                f"offset {request.offset} not aligned to {self.logical_block_size}")
        if request.size % self.logical_block_size != 0:
            raise ValueError(
                f"size {request.size} not aligned to {self.logical_block_size}")
        if request.offset + request.size > self.capacity_bytes:
            raise ValueError(
                f"request [{request.offset}, {request.end_offset}) exceeds "
                f"device capacity {self.capacity_bytes}")

    def preload(self, offset: int = 0, size: Optional[int] = None) -> None:
        """Precondition the device for read workloads; default is a no-op."""

    def describe(self) -> dict:
        """JSON-serialisable configuration + statistics summary."""
        return {
            "name": self.name,
            "kind": type(self).__name__,
            "capacity_bytes": self.capacity_bytes,
            "logical_block_size": self.logical_block_size,
            "ios_completed": self.stats.ios_completed,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
        }

    # -- plumbing -----------------------------------------------------------
    def _complete(self, request: IORequest):
        """Pre-refactor completion pipeline, frame for frame: the
        ``_serve`` trampoline plus generic bookkeeping.  This is what
        ``fast_path=False`` submissions run -- the faithful baseline for
        the kernel roundtrip microbenchmark."""
        result = yield from self._serve(request)
        request.complete_time = self.sim.now
        self.stats.record(request)
        if self.tracer is not None:
            self.tracer.finish(request)
        self.on_complete(request)
        return result if result is not None else request

    def _pipeline(self, request: IORequest):
        """The generator fast-path :meth:`submit` turns into the completion
        process.

        The default delegates to :meth:`_serve` and finishes the request --
        correct for any device.  Hot device models override this with a
        **flattened service pipeline**: a single generator frame that inlines
        their ``_serve`` logic (precomputed per-device constants, no
        ``yield from`` trampoline) and ends with ``self._finish(request)``.
        ``_serve`` stays the semantic reference either way, and the event
        sequence must match :meth:`_complete` exactly.
        """
        result = yield from self._serve(request)
        self._finish(request)
        return result if result is not None else request

    def _finish(self, request: IORequest) -> None:
        """Completion bookkeeping shared by every pipeline: stamp the
        completion time, account statistics, close tracing, run hooks."""
        request.complete_time = self.sim._now
        stats = self.stats
        kind = request.kind
        if kind is IOKind.READ:
            stats.reads_completed += 1
            stats.bytes_read += request.size
        elif kind is IOKind.WRITE:
            stats.writes_completed += 1
            stats.bytes_written += request.size
        elif kind is IOKind.FLUSH:
            stats.flushes_completed += 1
        if self.tracer is not None:
            self.tracer.finish(request)
        cls = type(self)
        if cls.on_complete is not BlockDevice.on_complete:
            self.on_complete(request)

    def on_complete(self, request: IORequest) -> None:
        """Hook for sub-classes / instrumentation; default does nothing.

        Override in a *subclass* -- the fast-path :meth:`_finish` dispatches
        the hook through the class (skipping the no-op default), so a
        per-instance ``device.on_complete = fn`` assignment is not seen on
        flattened pipelines.
        """

    @abc.abstractmethod
    def _serve(self, request: IORequest):
        """Simulation process (generator) that performs one request."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"capacity={self.capacity_bytes // (1 << 20)}MiB>")
