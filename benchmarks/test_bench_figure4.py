"""Benchmark: regenerate Figure 4 (random vs sequential write throughput)."""

from benchmarks.conftest import run_once
from repro.experiments import DeviceKind, ExperimentScale, run_figure4
from repro.host.io import KiB


def test_bench_figure4_random_vs_sequential_writes(benchmark):
    result = run_once(
        benchmark, run_figure4, ExperimentScale.default(),
        io_sizes=(4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB),
        queue_depths=(1, 32),
        ios_per_cell=500,
    )
    # Observation 3: both ESSDs show a random-over-sequential gain, ESSD-2's
    # being much larger; the SSD shows essentially none.
    assert result.max_gain(DeviceKind.ESSD2) > 1.6
    assert result.max_gain(DeviceKind.ESSD1) > 1.2
    assert result.max_gain(DeviceKind.ESSD2) > result.max_gain(DeviceKind.ESSD1)
    assert result.max_gain(DeviceKind.SSD) < 1.3
    for device in (DeviceKind.ESSD1, DeviceKind.ESSD2, DeviceKind.SSD):
        print("\n" + result.render(device))
