"""A storage-cluster node as observed by a single volume.

Each node bounds the concurrency it grants the volume and the aggregate
bandwidth it serves, and charges fixed software-path and media latencies per
request.  Sequential writes that concentrate on one placement group are
therefore limited by a handful of nodes, while random writes spread over the
whole cluster -- the mechanism behind the paper's Observation 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ebs.config import NodeProfile
from repro.sim.resources import Resource, TokenBucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@dataclass
class StorageNodeStats:
    """Per-node service counters."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_us: float = 0.0


class StorageNode:
    """One backend storage server (its SSDs aggregated behind one service)."""

    def __init__(self, sim: "Simulator", node_id: int, profile: NodeProfile):
        self.sim = sim
        self.node_id = node_id
        self.profile = profile
        self._slots = Resource(sim, capacity=profile.concurrency)
        # The burst allowance must stay well below a chunk: a multi-MiB burst
        # would let an entire chunk's replica stream through without ever
        # touching the sustained rate, erasing the single-placement-group
        # bottleneck that makes sequential writes slower than random ones
        # (the paper's Observation 3).  ~500 us worth of tokens absorbs
        # request-level jitter without hiding the rate limit.
        self._bandwidth = TokenBucket(
            sim, rate=profile.bandwidth_bytes_per_us,
            capacity=min(4 * 1024 * 1024, profile.bandwidth_bytes_per_us * 500))
        self.stats = StorageNodeStats()
        # Per-request constants, folded once at construction.  The sums are
        # the exact values the service generators previously computed per
        # request; the media rate stays a divisor (see SsdDevice note on
        # reciprocal rounding).
        self._min_charge = profile.min_charge_bytes
        self._write_latency_us = profile.write_processing_us + profile.media_write_us
        self._read_latency_us = profile.read_processing_us + profile.media_read_us
        self._seq_read_us = profile.seq_read_processing_us
        self._media_read_bw = profile.media_read_bytes_per_us

    @property
    def queue_length(self) -> int:
        """Requests waiting for a service slot on this node."""
        return self._slots.queue_length

    @property
    def in_service(self) -> int:
        return self._slots.users

    def write(self, num_bytes: int):
        """Generator: service one replica write of ``num_bytes``.

        Small writes are charged at least ``min_charge_bytes`` against the
        node's bandwidth budget (append-log record granularity).
        """
        sim = self.sim
        start = sim.now
        charge = max(num_bytes, self._min_charge)
        yield self._slots.request()
        try:
            yield from self._bandwidth.consume_sliced(charge)
            yield sim.timeout(self._write_latency_us)
        finally:
            self._slots.release()
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += num_bytes
        stats.busy_time_us += sim.now - start

    def read(self, num_bytes: int, sequential: bool = False):
        """Generator: service one read of ``num_bytes``.

        ``sequential`` selects the cheaper software path used when the node
        recognises a sequential stream (server-side readahead).
        """
        sim = self.sim
        start = sim.now
        if sequential:
            # Server-side readahead: the data is already staged in the node's
            # memory, so only the (cheaper) sequential software path is paid.
            processing = self._seq_read_us
        else:
            processing = self._read_latency_us
        streaming = num_bytes / self._media_read_bw
        yield self._slots.request()
        try:
            yield from self._bandwidth.consume_sliced(num_bytes)
            yield sim.timeout(processing + streaming)
        finally:
            self._slots.release()
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += num_bytes
        stats.busy_time_us += sim.now - start
