"""``python -m repro.experiments`` -- scenario-sweep CLI entry point."""

import sys

from repro.experiments.cli import main

sys.exit(main())
