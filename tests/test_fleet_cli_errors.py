"""Error paths of the ``fleet`` CLI verb, and approximate-flag plumbing
through sweep results and ``diff_results``.

Every malformed input must fail with exit code 2 and a single ``error:``
line on stderr -- never a traceback.  The diff half covers the macro
contract: ``approximate=True`` survives cache round-trips, save/load, and
result diffs, and a macro-vs-macro diff reports zero change (no false
regressions from the approximation itself).
"""

import json

import pytest

from repro.cluster import fleet, group, tenant
from repro.experiments.cli import main as cli_main
from repro.experiments.scenarios import register, scenario
from repro.experiments.sweep import SweepResult, SweepRunner, diff_results

MINI_CAPACITY = 1 << 24


def error_fleet():
    return fleet(
        "cli-errors-under-test",
        groups=[group("web", "LOOP", 3, capacity_bytes=MINI_CAPACITY)],
        tenants=[tenant("t", "web", pattern="randwrite", io_size=4096,
                        queue_depth=1, io_count=10)],
        epoch_us=200.0,
        seed=3,
    )


@pytest.fixture()
def error_scenario():
    spec = scenario(
        "cli-errors-under-test", "test-only error-path fleet",
        devices=("fleet",),
        fleet=error_fleet(),
    )
    register(spec, replace=True)
    return spec


def run_cli(args):
    return cli_main(["fleet", "cli-errors-under-test", "--serial",
                     "--no-cache", *args])


def assert_cli_error(capsys, args, needle):
    assert run_cli(args) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert needle in captured.err
    assert "Traceback" not in captured.err


# ---------------------------------------------------------------------------
# --faults error paths
# ---------------------------------------------------------------------------

def test_faults_file_missing_is_a_clean_error(error_scenario, tmp_path,
                                              capsys):
    missing = tmp_path / "nope.json"
    assert_cli_error(capsys, ["--faults", f"@{missing}"],
                     "cannot read --faults file")


def test_faults_malformed_json_is_a_clean_error(error_scenario, tmp_path,
                                                capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert_cli_error(capsys, ["--faults", f"@{bad}"], "bad --faults spec")
    # Inline specs hit the same parser.
    assert_cli_error(capsys, ["--faults", "{not json"], "bad --faults spec")


def test_faults_unknown_group_is_a_clean_error(error_scenario, capsys):
    spec = json.dumps([{"kind": "fail", "group": "nosuch", "at_us": 100.0}])
    assert_cli_error(capsys, ["--faults", spec], "nosuch")


def test_faults_unknown_device_index_is_a_clean_error(error_scenario, capsys):
    spec = json.dumps([{"kind": "fail", "group": "web", "device": 99,
                        "at_us": 100.0}])
    assert_cli_error(capsys, ["--faults", spec], "99")


def test_faults_wrong_spec_shape_is_a_clean_error(error_scenario, capsys):
    assert_cli_error(capsys, ["--faults", json.dumps({"events": 42})],
                     "bad --faults spec")


# ---------------------------------------------------------------------------
# --macro error paths
# ---------------------------------------------------------------------------

def test_macro_unknown_group_is_a_clean_error(error_scenario, capsys):
    assert_cli_error(capsys, ["--macro", "nosuch"],
                     "unknown group 'nosuch'")


def test_macro_unknown_mode_is_a_clean_error(error_scenario, capsys):
    assert_cli_error(capsys, ["--macro", "web=quantum"],
                     "unknown group mode 'quantum'")


def test_macro_valid_override_still_succeeds(error_scenario, capsys):
    assert run_cli(["--macro", "web"]) == 0
    assert "error:" not in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Unknown-scenario and document-path error paths on every verb
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("verb", ["run", "fleet"])
def test_unknown_scenario_lists_known_choices(verb, capsys):
    assert cli_main([verb, "definitely-not-registered"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "unknown scenario" in captured.err
    assert "known:" in captured.err
    assert "fleet-smoke" in captured.err
    assert "Traceback" not in captured.err


@pytest.mark.parametrize("verb", ["run", "fleet"])
def test_invalid_document_path_is_a_clean_error(verb, tmp_path, capsys):
    bad = tmp_path / "bad-fleet.json"
    bad.write_text(json.dumps({"kind": "fleet", "name": "bad",
                               "groups": [{"name": "g", "device": "LOOP",
                                           "count": -1}]}))
    assert cli_main([verb, str(bad)]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "groups[0].count: expected positive int" in captured.err
    assert "Traceback" not in captured.err


# ---------------------------------------------------------------------------
# serve/submit endpoint validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("verb", ["serve", "submit"])
@pytest.mark.parametrize("endpoint", [
    [],                                     # neither transport
    ["--socket", "/tmp/x.sock", "--port", "1"],  # both transports
])
def test_endpoint_must_be_exactly_one_transport(verb, endpoint, capsys):
    args = [verb] if verb == "serve" else [verb, "fleet-smoke"]
    assert cli_main([*args, *endpoint]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "exactly one of --socket" in captured.err
    assert "Traceback" not in captured.err


# ---------------------------------------------------------------------------
# approximate=True through sweep results and diff_results
# ---------------------------------------------------------------------------

def _macro_sweep(tmp_path, name, macro):
    topology = error_fleet()
    if macro:
        topology = topology.with_macro("web")
    spec = scenario(name, "test-only diff fleet", devices=("fleet",),
                    fleet=topology)
    register(spec, replace=True)
    runner = SweepRunner(cache_dir=tmp_path / name)
    return runner.run_cells(spec.name, spec.cells())


def test_approximate_flag_survives_cache_save_load_and_diff(tmp_path):
    macro = _macro_sweep(tmp_path, "diff-macro-under-test", macro=True)
    exact = _macro_sweep(tmp_path, "diff-exact-under-test", macro=False)

    flagged = macro.outcomes[0].metrics
    assert flagged["approximate"] is True
    assert flagged["fleet"]["fleet"]["approximate"] is True
    assert "approximate" not in exact.outcomes[0].metrics

    # Save/load round-trip keeps the flag bit-exact.
    path = tmp_path / "macro-result.json"
    macro.save(path)
    reloaded = SweepResult.load(path)
    assert reloaded.outcomes[0].metrics == flagged

    # A macro run diffed against itself reports zero change everywhere:
    # the approximation flag must not read as a regression.
    rows = diff_results(macro, reloaded, metric="throughput_gbps")
    assert rows and all(row["relative_change"] == 0.0 for row in rows)

    # Macro vs discrete is a *different* cell (mode is part of the
    # topology, hence the cache key), so the diff reports both sides as
    # unmatched rather than inventing a regression.
    rows = diff_results(exact, macro, metric="throughput_gbps")
    assert all(row["relative_change"] is None for row in rows)


def test_cached_macro_rerun_is_a_cache_hit_with_flag_intact(tmp_path):
    first = _macro_sweep(tmp_path, "diff-cache-under-test", macro=True)
    second = _macro_sweep(tmp_path, "diff-cache-under-test", macro=True)
    assert first.cache_hits == 0
    assert second.cache_hits == len(second.outcomes)
    assert second.outcomes[0].metrics["approximate"] is True
    assert second.outcomes[0].metrics == first.outcomes[0].metrics
