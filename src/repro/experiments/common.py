"""Shared infrastructure for the paper-reproduction experiments.

Every experiment builds its devices through :class:`ExperimentScale`, which
fixes the (scaled) capacities and keeps the paper's 1:2 SSD:ESSD capacity
ratio, and measures workloads with :func:`measure_cell` -- one FIO-style job
with a bounded I/O count, so experiment cost stays predictable regardless of
how fast a configuration happens to be.

Device construction goes through the :mod:`repro.devices` registry;
:class:`DeviceKind` remains as the typed enumeration of the paper's Table I
devices (its values are the registry names).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.devices import create_device
from repro.host.io import GiB, MiB
from repro.sim import Simulator
from repro.workload.fio import FioJob, JobResult, run_job  # noqa: F401 (re-export)


class DeviceKind(enum.Enum):
    """The three devices of the paper's Table I."""

    SSD = "SSD"
    ESSD1 = "ESSD-1"
    ESSD2 = "ESSD-2"


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled device capacities (paper: SSD 1 TB, ESSDs 2 TB -- ratio kept)."""

    ssd_capacity_bytes: int = 512 * MiB
    essd_capacity_bytes: int = 1 * GiB

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Fast scale for unit tests."""
        return cls(ssd_capacity_bytes=256 * MiB, essd_capacity_bytes=512 * MiB)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Default scale used by the benchmark harness."""
        return cls()

    @classmethod
    def large(cls) -> "ExperimentScale":
        """Closer-to-paper scale (slower; used for Figure 3's GC study)."""
        return cls(ssd_capacity_bytes=1 * GiB, essd_capacity_bytes=2 * GiB)

    def capacity_of(self, kind: "DeviceKind | str") -> int:
        """Scaled capacity for a device name (SSD uses the SSD capacity,
        everything else the ESSD capacity)."""
        name = kind.value if isinstance(kind, DeviceKind) else str(kind)
        return self.ssd_capacity_bytes if name == DeviceKind.SSD.value \
            else self.essd_capacity_bytes


def build_device(sim: Simulator, kind: "DeviceKind | str",
                 scale: Optional[ExperimentScale] = None,
                 name: Optional[str] = None,
                 device_params: Optional[dict] = None):
    """Instantiate a registered device on ``sim`` at experiment scale.

    ``device_params`` are forwarded to the factory as profile overrides
    (e.g. ``replication_factor`` / ``chunk_size`` for the ESSD cluster).
    """
    scale = scale or ExperimentScale.default()
    device_name = kind.value if isinstance(kind, DeviceKind) else str(kind)
    return create_device(sim, device_name,
                         capacity_bytes=scale.capacity_of(device_name),
                         name=name, **(device_params or {}))


def measure_cell(kind: "DeviceKind | str", job: FioJob,
                 scale: Optional[ExperimentScale] = None,
                 preload: bool = True, return_device: bool = False,
                 trace: bool = False,
                 device_params: Optional[dict] = None):
    """Run one (device, job) cell on a fresh simulator and return its result.

    With ``return_device=True`` the ``(result, device)`` pair is returned so
    callers can read device statistics (write amplification, flow-limit
    state) after the run.  With ``trace=True`` a request-path
    :class:`~repro.sim.trace.Tracer` is attached to the device (reachable as
    ``device.tracer`` afterwards).
    """
    sim = Simulator()
    device = build_device(sim, kind, scale, device_params=device_params)
    if trace:
        from repro.sim import Tracer
        device.set_tracer(Tracer(sim))
    if preload:
        device.preload()
    result = run_job(sim, device, job)
    return (result, device) if return_device else result


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a plain-text table (used by every experiment's ``render``)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells):
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
