"""Figure 5: throughput under mixed read/write workloads (throughput budget).

The paper sweeps the write ratio from 0% (pure random read) to 100% (pure
random write) and shows that each ESSD's total throughput sits flat at its
purchased budget while the local SSD's varies with the mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ebs import alibaba_pl3_profile, aws_io2_profile
from repro.experiments.common import (
    DeviceKind,
    ExperimentScale,
    format_table,
    measure_cell,
)
from repro.host.io import KiB
from repro.metrics.stats import coefficient_of_variation
from repro.workload.fio import FioJob

DEFAULT_WRITE_RATIOS = (0, 25, 50, 75, 100)


@dataclass(frozen=True)
class MixedRatioPoint:
    """Total and write throughput at one write ratio."""

    device: DeviceKind
    write_ratio_percent: int
    total_gbps: float
    write_gbps: float
    read_gbps: float


@dataclass
class Figure5Result:
    """Throughput-versus-write-ratio series for each device."""

    points: list[MixedRatioPoint] = field(default_factory=list)
    budgets_gbps: dict[DeviceKind, float] = field(default_factory=dict)

    def series(self, device: DeviceKind) -> list[MixedRatioPoint]:
        return sorted((p for p in self.points if p.device is device),
                      key=lambda p: p.write_ratio_percent)

    def total_series(self, device: DeviceKind) -> list[float]:
        return [p.total_gbps for p in self.series(device)]

    def determinism_cv(self, device: DeviceKind) -> float:
        """Coefficient of variation of total throughput across write ratios."""
        return coefficient_of_variation(self.total_series(device))

    def within_budget(self, device: DeviceKind, tolerance: float = 0.08) -> bool:
        """Whether every measured point is at or below the purchased budget."""
        budget = self.budgets_gbps.get(device)
        if budget is None:
            return True
        return all(p.total_gbps <= budget * (1 + tolerance) for p in self.series(device))

    def render(self) -> str:
        headers = ["Device"] + [f"{ratio}% wr" for ratio in
                                sorted({p.write_ratio_percent for p in self.points})]
        rows = []
        for device in (DeviceKind.ESSD1, DeviceKind.ESSD2, DeviceKind.SSD):
            series = self.series(device)
            if not series:
                continue
            rows.append([device.value] + [f"{p.total_gbps:.2f}" for p in series])
        note = ", ".join(
            f"{device.value} CV={self.determinism_cv(device):.3f}"
            for device in (DeviceKind.ESSD1, DeviceKind.ESSD2, DeviceKind.SSD)
            if self.series(device))
        return ("Total throughput (GB/s) vs write ratio (Figure 5)\n"
                + format_table(headers, rows) + f"\nDeterminism: {note}")


def run_figure5(scale: Optional[ExperimentScale] = None,
                write_ratios: Sequence[int] = DEFAULT_WRITE_RATIOS,
                io_size: int = 128 * KiB,
                queue_depth: int = 32,
                ios_per_point: int = 1200,
                devices: Sequence[DeviceKind] = (DeviceKind.ESSD1, DeviceKind.ESSD2,
                                                 DeviceKind.SSD)) -> Figure5Result:
    """Measure throughput across write ratios for each device."""
    scale = scale or ExperimentScale.default()
    result = Figure5Result()
    result.budgets_gbps = {
        DeviceKind.ESSD1: aws_io2_profile(scale.essd_capacity_bytes).max_throughput_gbps,
        DeviceKind.ESSD2: alibaba_pl3_profile(scale.essd_capacity_bytes).max_throughput_gbps,
    }
    for device in devices:
        for ratio in write_ratios:
            if ratio == 0:
                pattern, write_ratio = "randread", None
            elif ratio == 100:
                pattern, write_ratio = "randwrite", None
            else:
                pattern, write_ratio = "randrw", ratio / 100.0
            job = FioJob(
                name=f"fig5-{device.value}-{ratio}",
                pattern=pattern,
                io_size=io_size,
                queue_depth=queue_depth,
                write_ratio=write_ratio,
                io_count=max(ios_per_point, queue_depth * 30),
                ramp_ios=queue_depth,
                seed=57,
            )
            measured = measure_cell(device, job, scale, preload=True)
            result.points.append(MixedRatioPoint(
                device=device,
                write_ratio_percent=ratio,
                total_gbps=measured.throughput_gbps,
                write_gbps=measured.write_throughput_gbps,
                read_gbps=measured.read_throughput_gbps,
            ))
    return result
