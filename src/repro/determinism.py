"""Canonical hashing and deterministic seed derivation.

Every layer that fans work out -- sweep cells across worker processes,
workload streams within a cell, fleet tenants across shard simulators --
derives child seeds through :func:`derive_seed` so that

* no two children ever share an RNG stream (seeds are SHA-256-separated by
  the child's identity, not produced by arithmetic that can collide), and
* the derivation depends only on *logical* identity (scenario seed, tenant
  name, device index, ...), never on the execution layout (worker count,
  shard assignment), which is what makes serial and parallel/sharded runs
  bit-identical.

These helpers used to live in :mod:`repro.experiments.sweep`; they moved
here so the cluster layer (which sits *below* the experiments layer) can
use the same derivation without an upward import.  The sweep module
re-exports them, so existing call sites are unaffected.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = ["canonical_json", "spec_hash", "derive_seed"]


def canonical_json(payload: Any) -> str:
    """Canonical (sorted-keys, compact) JSON used for hashing and caching."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(payload: Any) -> str:
    """Stable SHA-256 hex digest of any JSON-serialisable payload."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def derive_seed(base_seed: int, params: Mapping[str, Any]) -> int:
    """Deterministic, collision-free child seed from a base seed + identity."""
    digest = spec_hash({"seed": base_seed, "params": dict(params)})
    return int(digest[:12], 16)
