"""Line-delimited JSON wire protocol for the experiment service.

Every message -- request or event -- is one JSON object on one
``\\n``-terminated line, UTF-8 encoded.  Requests carry an ``op``:

``{"op": "ping"}``
    Liveness probe; answers ``{"ok": true, "event": "pong", ...}``.
``{"op": "submit", "scenario": "fleet-smoke"}``
``{"op": "submit", "document": {...}}``
    Submit a registered scenario by name, or an inline scenario/fleet
    document (validated through :mod:`repro.config`).  Optional keys:
    ``"quick": true`` shrinks cell I/O budgets exactly like the batch
    ``--quick`` flag; ``"watch": false`` returns after the
    accepted/rejected response instead of streaming events.  Answers
    ``{"ok": true, "event": "accepted", "job": "job-1", ...}`` or
    ``{"ok": false, "event": "rejected", "reason": "..."}`` (admission
    control, unknown name, invalid document).
``{"op": "status", "job": "job-1"}`` / ``{"op": "jobs"}``
    Snapshot of one job / of every job the server knows.
``{"op": "watch", "job": "job-1"}``
    Replay the job's buffered events, then stream live ones until a
    terminal event.
``{"op": "shutdown"}``
    Ask the server to stop (used by tests and orchestration scripts).

Streamed events all carry ``event``, ``job``, and a server-global,
monotonically increasing ``seq`` (interleaving between concurrent jobs is
observable by sequence number): ``started``, one ``cell`` per finished
cell (``index``/``total``/``cached``/``metrics``), and a terminal
``done`` (full ``results`` list) or ``failed`` (``reason``).
"""

from __future__ import annotations

import contextlib
import json
import socket
from typing import Any, Optional

__all__ = ["TERMINAL_EVENTS", "LineChannel", "ProtocolError"]

#: Events after which a job's stream produces nothing further.
TERMINAL_EVENTS = ("done", "failed")

#: Refuse absurd lines rather than buffering without bound.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame (bad JSON, oversized line, non-object payload)."""


class LineChannel:
    """Framing wrapper around a connected socket: one JSON object per line.

    ``recv`` returns ``None`` on a clean EOF and raises ``socket.timeout``
    when the underlying socket times out with no complete line buffered
    (callers poll their stop flag and retry).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = bytearray()
        self._eof = False

    def send(self, message: dict[str, Any]) -> None:
        data = json.dumps(message, sort_keys=True).encode() + b"\n"
        self._sock.sendall(data)

    def recv(self) -> Optional[dict[str, Any]]:
        while True:
            line = self._take_line()
            if line is not None:
                return self._decode(line)
            if self._eof:
                return None
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
                continue
            self._buffer.extend(chunk)
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError(
                    f"line exceeds {MAX_LINE_BYTES} bytes")

    def _take_line(self) -> Optional[bytes]:
        newline = self._buffer.find(b"\n")
        if newline < 0:
            # At EOF a trailing unterminated fragment is still a frame.
            if self._eof and self._buffer:
                line = bytes(self._buffer)
                self._buffer.clear()
                return line
            return None
        line = bytes(self._buffer[:newline])
        del self._buffer[:newline + 1]
        return line

    def _decode(self, line: bytes) -> dict[str, Any]:
        try:
            message = json.loads(line.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"bad frame: {error}") from None
        if not isinstance(message, dict):
            raise ProtocolError(
                f"expected a JSON object per line, got {type(message).__name__}")
        return message

    def settimeout(self, timeout: Optional[float]) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        self._sock.close()
