"""Command-line interface for the scenario-sweep subsystem.

Usage (module entry point)::

    python -m repro.experiments list                 # registered scenarios
    python -m repro.experiments run rand-vs-seq-write --parallel --out out.json
    python -m repro.experiments run figure4 --serial --quick
    python -m repro.experiments fleet fleet-smoke --shards 4
    python -m repro.experiments diff before.json after.json --metric iops
    python -m repro.experiments report --quick       # full paper report

``run`` executes a registered scenario through :class:`SweepRunner`
(parallel across worker processes by default), caches per-cell JSON results
under ``--cache-dir`` (default ``$REPRO_SWEEP_CACHE`` or ``.sweep-cache``),
prints a metrics table, and optionally saves the whole sweep to ``--out``;
``--shards N`` additionally shards any fleet cells inside the pool.
``fleet`` runs a fleet scenario through the sharded cluster layer
(:mod:`repro.cluster`) with the same result caching: every
``--shards`` / ``--transport`` / ``--run-ahead`` combination produces
bit-identical fleet metrics (so none of them enters the cache key).
Execution knobs merge into one :class:`repro.cluster.FleetRunConfig`:
``--transport`` / ``--spin-budget`` override a document's ``run:`` block,
while the deprecated ``--shards`` / ``--run-ahead`` / ``--epoch-us``
aliases error (path-addressed, exit 2) when they contradict it. ``diff``
compares two saved sweeps cell-by-cell.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import runner as paper_runner  # noqa: F401  (registers run_all)
from repro.experiments import table1
from repro.experiments.common import format_table
from repro.experiments.scenarios import (
    all_scenarios,
    get_scenario,
    load_user_scenarios,
)
from repro.experiments.sweep import (
    SweepCache,
    SweepResult,
    SweepRunner,
    default_cache_dir,
    diff_results,
    quick_cells,
)

#: Metrics columns printed by ``run`` (in order).
_TABLE_METRICS = ("mean_us", "p999_us", "throughput_gbps", "iops")


def _render_stage_breakdown(stages: dict) -> str:
    """Table for one trace breakdown ({stage: {count, mean_us, ...}})."""
    rows = []
    for stage, stats in stages.items():
        rows.append([stage, str(stats["count"]), f"{stats['mean_us']:.1f}",
                     f"{stats['p99_us']:.1f}", f"{stats['share']:.1%}"])
    return format_table(["stage", "count", "mean_us", "p99_us", "share"], rows)


def _print_traces(result) -> None:
    """Per-cell request-path latency breakdowns (cells with trace=True)."""
    for outcome in result.outcomes:
        trace = outcome.metrics.get("trace")
        if not trace:
            continue
        labels = json.dumps(outcome.params, sort_keys=True)
        print(f"\n## request-path breakdown {labels} "
              f"({trace['completed_requests']} requests)")
        per_device = trace.get("devices")
        if per_device:
            for device_name, stages in sorted(per_device.items()):
                print(f"[{device_name}]")
                print(_render_stage_breakdown(stages))
        else:
            print(_render_stage_breakdown(trace["stages"]))

        streams = outcome.metrics.get("streams")
        if streams:
            rows = [[name, s["device"], s["pattern"], str(s["queue_depth"]),
                     f"{s['mean_us']:.1f}", f"{s['p99_us']:.1f}",
                     f"{s['throughput_gbps']:.2f}"]
                    for name, s in sorted(streams.items())]
            print(format_table(["stream", "device", "pattern", "qd",
                                "mean_us", "p99_us", "GB/s"], rows))


def _print_scan_warnings() -> None:
    """Surface $REPRO_SCENARIO_PATH files that failed to load (stderr)."""
    for file, message in load_user_scenarios():
        print(f"warning: skipped scenario document {file}: {message}",
              file=sys.stderr)


def _cmd_list(_args) -> int:
    _print_scan_warnings()
    rows = []
    for spec in all_scenarios():
        try:
            cell_count = str(len(spec.cells()))
        except ValueError:
            cell_count = "?"
        rows.append([spec.name, cell_count,
                     ",".join(spec.tags) or "-", spec.description])
    print(format_table(["Scenario", "Cells", "Tags", "Description"], rows))
    return 0


def _resolve_scenario(target: str):
    """A registered scenario name, or a document file by path.

    ``run``/``fleet``/``submit`` share this: any argument ending in a
    config suffix (.yaml/.yml/.json) loads as a scenario or fleet
    document; anything else must be a registered name.  Raises
    ``ValueError`` with the one-line CLI error message.
    """
    from repro.config import SCENARIO_SUFFIXES, ConfigError, scenario_from_path

    if Path(target).suffix in SCENARIO_SUFFIXES:
        try:
            return scenario_from_path(target)
        except ConfigError as error:
            raise ValueError(str(error)) from None
    try:
        return get_scenario(target)
    except KeyError as error:
        raise ValueError(error.args[0]) from None


#: Deprecated-alias CLI flags that shadow FleetRunConfig fields.  When a
#: scenario document's ``run:`` block sets the same field to a *different*
#: value, the run is ambiguous and the CLI refuses it (exit 2) instead of
#: silently picking a side.
_FLEET_ALIAS_FLAGS = (("shards", "--shards"),
                      ("run_ahead", "--run-ahead"),
                      ("epoch_us", "--epoch-us"))


def _alias_conflict(cell, args) -> Optional[str]:
    """Path-addressed message for a CLI-flag / document ``run:`` clash."""
    document = dict(cell.fleet_run)
    for field, flag in _FLEET_ALIAS_FLAGS:
        cli_value = getattr(args, field, None)
        if cli_value is None or field not in document:
            continue
        if document[field] == cli_value:
            continue
        return (f"run.{field}: {flag} {cli_value} contradicts the scenario "
                f"document's run.{field} = {document[field]} (drop the "
                f"deprecated flag or edit the document)")
    return None


def _cli_fleet_overrides(args, serial_is_local: bool = False) -> dict:
    """Explicitly-set fleet-execution CLI flags as FleetRunConfig fields.

    ``serial_is_local`` is the ``fleet`` verb's reading of ``--serial``
    (keep shards in-process); ``run``/``serve`` use ``--serial`` for the
    sweep pool instead, so they leave fleet transport resolution alone.
    """
    overrides = {}
    for field in ("shards", "run_ahead", "transport", "spin_budget"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if serial_is_local and getattr(args, "serial", False):
        overrides["processes"] = False
    return overrides


def _cmd_run(args) -> int:
    try:
        spec = _resolve_scenario(args.scenario)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if spec.name == "table1":
        print(table1.render_table1(table1.run_table1()))
        return 0
    try:
        cells = spec.cells()
    except ValueError as error:
        print(f"error: cannot expand scenario {spec.name!r}: {error}",
              file=sys.stderr)
        return 2
    if args.quick:
        cells = quick_cells(cells)
    if not cells:
        print(f"scenario {spec.name!r} has no cells")
        return 1
    for cell in cells:
        conflict = _alias_conflict(cell, args)
        if conflict:
            print(f"error: {conflict}", file=sys.stderr)
            return 2
    from repro.cluster import FleetRunConfig

    overrides = _cli_fleet_overrides(args)
    try:
        fleet_config = FleetRunConfig(**overrides) if overrides else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = SweepRunner(
        parallel=not args.serial,
        max_workers=args.workers,
        cache_dir=None if args.no_cache
        else (args.cache_dir or default_cache_dir()),
        force=args.force,
        fleet_config=fleet_config,
    )
    started = time.monotonic()
    result = runner.run_cells(spec.name, cells)
    elapsed = time.monotonic() - started
    label_keys = sorted({key for outcome in result.outcomes
                         for key in outcome.params})
    headers = label_keys + list(_TABLE_METRICS) + ["cached"]
    rows = []
    for outcome in result.outcomes:
        row = [str(outcome.params.get(key, "-")) for key in label_keys]
        for metric in _TABLE_METRICS:
            value = outcome.metrics.get(metric)
            row.append("-" if value is None else f"{value:.2f}")
        row.append("yes" if outcome.cached else "no")
        rows.append(row)
    print(f"# {spec.name}: {spec.description}")
    print(format_table(headers, rows))
    _print_traces(result)
    mode = "serial" if args.serial else f"parallel x{runner.max_workers or 'auto'}"
    print(f"{len(result)} cells in {elapsed:.1f}s ({mode}, "
          f"{result.cache_hits} cached)")
    if args.out:
        path = result.save(args.out)
        print(f"sweep saved to {path}")
    return 0


def _cmd_fleet(args) -> int:
    """Run a fleet scenario's topologies through the sharded cluster layer.

    Deterministic fleet metrics cache exactly like ``run`` cells (same
    ``SweepCache``, same ``$REPRO_SWEEP_CACHE`` handling); shard count and
    run-ahead are execution details excluded from the cache key, wall-clock
    ``runtime`` data is never cached.
    """
    from dataclasses import replace

    from repro.cluster import FleetCoordinator, FleetTopology
    from repro.experiments.sweep import fleet_cell_metrics

    try:
        spec = _resolve_scenario(args.scenario)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        cells = spec.cells()
    except ValueError as error:
        print(f"error: cannot expand scenario {spec.name!r}: {error}",
              file=sys.stderr)
        return 2
    if args.quick:
        cells = quick_cells(cells)
    fleet_cells = [cell for cell in cells if cell.fleet is not None]
    if not fleet_cells:
        print(f"error: scenario {spec.name!r} has no fleet cells "
              f"(fleet scenarios: see 'list', tag 'fleet')", file=sys.stderr)
        return 2
    cache = None if args.no_cache \
        else SweepCache(args.cache_dir or default_cache_dir())
    if args.serial and args.transport not in (None, "auto", "local"):
        print(f"error: --serial contradicts --transport {args.transport} "
              f"(drop one)", file=sys.stderr)
        return 2
    cli_overrides = _cli_fleet_overrides(args, serial_is_local=True)
    reports = []
    fault_changes = {}
    if args.faults is not None:
        from repro.cluster.faults import parse_fault_spec

        text = args.faults
        if text.startswith("@"):
            try:
                text = Path(text[1:]).read_text()
            except OSError as error:
                print(f"error: cannot read --faults file: {error}",
                      file=sys.stderr)
                return 2
        try:
            events, policy = parse_fault_spec(text)
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as error:
            print(f"error: bad --faults spec: {error}", file=sys.stderr)
            return 2
        fault_changes = {"faults": events, "fault_policy": policy}
    macro_modes: dict[str, str] = {}
    for token in args.macro or ():
        for entry in token.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, _, mode = entry.partition("=")
            macro_modes[name] = mode or "macro"
    for cell in fleet_cells:
        conflict = _alias_conflict(cell, args)
        if conflict:
            print(f"error: {conflict}", file=sys.stderr)
            return 2
        try:
            run_config = cell.run_config().merged(**cli_overrides)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        coordinator = FleetCoordinator(config=run_config)
        if args.epoch_us is not None or fault_changes or macro_modes:
            # Fold the overrides into the cell so the cache key sees them (a
            # different synchronization window, fault schedule, or group
            # simulation mode is different physics).
            changes = dict(fault_changes)
            if args.epoch_us is not None:
                changes["epoch_us"] = args.epoch_us
            try:
                scaled = FleetTopology.from_json(cell.fleet).scaled(**changes)
                if macro_modes:
                    scaled = scaled.with_modes(macro_modes)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            cell = replace(cell, fleet=scaled.canonical())
        topology = FleetTopology.from_json(cell.fleet)
        metrics = None if (cache is None or args.force) \
            else cache.load(spec.name, cell)
        runtime = None
        if metrics is None:
            full = coordinator.run(topology)
            runtime = full.get("runtime")
            metrics = fleet_cell_metrics(full)
            if cache is not None:
                cache.store(spec.name, cell, metrics)
        payload = dict(metrics["fleet"])
        if runtime is not None:
            payload["runtime"] = runtime
        reports.append({"labels": dict(cell.labels),
                        "cached": runtime is None, "result": payload})
        labels = json.dumps(dict(cell.labels), sort_keys=True)
        fleet_metrics = payload["fleet"]
        print(f"\n# {topology.name} {labels}")
        print(f"{fleet_metrics['devices']} devices, "
              f"{payload['topology']['tenants']} tenants, "
              f"{payload['topology']['edges']} replication edges")
        rows = [[name,
                 tenant["group"],
                 str(tenant["devices"]),
                 str(tenant["ios_completed"]),
                 f"{tenant['mean_us']:.1f}",
                 f"{tenant['p99_us']:.1f}",
                 f"{tenant['p999_us']:.1f}",
                 f"{tenant['throughput_gbps']:.3f}",
                 f"{tenant['iops']:.0f}"]
                for name, tenant in sorted(payload["tenants"].items())]
        print(format_table(["tenant", "group", "devs", "ios", "mean_us",
                            "p99_us", "p999_us", "GB/s", "IOPS"], rows))
        rows = [[name, group["device_type"], str(group["devices"]),
                 str(group["ios_completed"]), str(group["replica_writes"]),
                 f"{group['mean_us']:.1f}" if group["ios_completed"] else "-"]
                for name, group in sorted(payload["groups"].items())]
        print(format_table(["group", "device", "devs", "tenant ios",
                            "replica writes", "mean_us"], rows))
        print(f"fleet: {fleet_metrics['ios_completed']} ios, "
              f"mean {fleet_metrics['mean_us']:.1f}us, "
              f"p99.9 {fleet_metrics['p999_us']:.1f}us, "
              f"{fleet_metrics['throughput_gbps']:.3f} GB/s aggregate")
        faults = payload.get("faults")
        if faults:
            during, steady = faults["during_rebuild"], faults["steady"]
            print(f"faults: {len(faults['events'])} event(s), "
                  f"{faults['degraded_us']:.0f}us degraded, rebuild "
                  f"{faults['rebuild_writes']} chunks / "
                  f"{faults['rebuild_bytes']} bytes "
                  f"({faults['rebuild_gbps']:.3f} GB/s), "
                  f"shed {faults['shed_ios']} ios")
            print(f"  p99 during rebuild {during['p99_us']:.1f}us "
                  f"({during['ios']} ios) vs steady "
                  f"{steady['p99_us']:.1f}us ({steady['ios']} ios)")
        if runtime is None:
            print("runtime: cached result (use --force to re-run)")
        else:
            print(f"runtime: {runtime['shards']} shard(s) "
                  f"({runtime['mode']}, {runtime['transport']} transport), "
                  f"{runtime['epochs']} epochs, "
                  f"{runtime['coordinator_rounds']} coordinator round(s), "
                  f"{runtime['wall_s']:.2f}s wall, "
                  f"{runtime['events_per_sec']:.0f} events/s")
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(reports, indent=2, sort_keys=True))
        print(f"\nfleet report saved to {path}")
    return 0


def _cmd_diff(args) -> int:
    try:
        a = SweepResult.load(args.a)
        b = SweepResult.load(args.b)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (KeyError, json.JSONDecodeError, TypeError) as error:
        print(f"error: not a sweep-result file (save one with 'run --out'): "
              f"{error!r}", file=sys.stderr)
        return 2
    rows = diff_results(a, b, metric=args.metric)
    table = []
    regressions = 0
    for row in rows:
        change = row["relative_change"]
        if change is not None and abs(change) > args.tolerance:
            regressions += 1
        labels = row["labels"] or row["cell"]
        table.append([
            json.dumps(labels, sort_keys=True),
            "-" if row[f"{args.metric}_a"] is None else f"{row[f'{args.metric}_a']:.3f}",
            "-" if row[f"{args.metric}_b"] is None else f"{row[f'{args.metric}_b']:.3f}",
            "-" if change is None else f"{change:+.1%}",
        ])
    print(format_table(["Cell", f"{args.metric} (A)", f"{args.metric} (B)",
                        "Change"], table))
    print(f"{regressions} cells changed beyond +-{args.tolerance:.0%}")
    return 1 if regressions and args.fail_on_change else 0


def _cmd_report(args) -> int:
    from repro.experiments.runner import run_all
    report = run_all(quick=args.quick)
    print(report.render())
    return 0


def _cmd_validate(args) -> int:
    """Validate config documents without running anything (exit 2 on any)."""
    from repro.config import (
        ConfigError,
        cell_from_document,
        document_kind,
        load_document,
        scenario_for_document,
    )

    failures = 0
    for file in args.files:
        try:
            document = load_document(file)
            kind = document_kind(document, path=file)
            if kind == "cell":
                cell = cell_from_document(document, path=file)
                print(f"{file}: OK (cell, device {cell.device!r})")
            else:
                spec = scenario_for_document(document, path=file)
                print(f"{file}: OK ({kind} {spec.name!r}, "
                      f"{len(spec.cells())} cells)")
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            failures += 1
        except ValueError as error:
            # cells() expansion (bad grid axis, broken fleet invariant)
            print(f"error: {file}: {error}", file=sys.stderr)
            failures += 1
    return 2 if failures else 0


def _check_endpoint(args) -> Optional[str]:
    """Shared --socket/--port validation; an error message or None."""
    if (args.socket is None) == (args.port is None):
        return "pass exactly one of --socket PATH or --port N"
    return None


def _cmd_serve(args) -> int:
    from repro.serve import ExperimentServer

    problem = _check_endpoint(args)
    if problem:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    _print_scan_warnings()
    from repro.cluster import FleetRunConfig

    overrides = _cli_fleet_overrides(args)
    try:
        fleet_config = FleetRunConfig(**overrides) if overrides else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server = ExperimentServer(
        socket_path=args.socket, host=args.host, port=args.port,
        max_pending=args.max_pending, job_workers=args.job_workers,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        parallel=not args.serial, sweep_workers=args.workers,
        fleet_config=fleet_config)
    try:
        server.start()
    except OSError as error:
        print(f"error: cannot bind {args.socket or args.port}: {error}",
              file=sys.stderr)
        return 2
    print(f"serving on {server.address} "
          f"(max-pending {args.max_pending}, "
          f"{args.job_workers} job worker(s))", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _event_metric_summary(metrics: dict) -> str:
    """One-line metric summary for a streamed cell (device or fleet cell)."""
    headline = metrics.get("fleet", {}).get("fleet") \
        if isinstance(metrics.get("fleet"), dict) else None
    headline = headline or metrics
    parts = []
    for metric in _TABLE_METRICS:
        value = headline.get(metric)
        if isinstance(value, (int, float)):
            parts.append(f"{metric}={value:.2f}")
    return " ".join(parts) or "(no headline metrics)"


def _cmd_submit(args) -> int:
    from repro.config import SCENARIO_SUFFIXES, ConfigError, load_document
    from repro.serve import ServeClient

    problem = _check_endpoint(args)
    if problem:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    document = None
    scenario_name = None
    target = Path(args.target)
    if target.suffix in SCENARIO_SUFFIXES:
        try:
            document = load_document(target)
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        scenario_name = args.target
    try:
        with ServeClient(socket_path=args.socket, host=args.host,
                         port=args.port, timeout=args.timeout) as client:
            response = client.submit(scenario=scenario_name,
                                     document=document, quick=args.quick,
                                     watch=not args.no_watch)
            if not response.get("ok"):
                print(f"error: submission rejected: "
                      f"{response.get('reason')}", file=sys.stderr)
                return 2
            if args.json:
                print(json.dumps(response, sort_keys=True), flush=True)
            else:
                print(f"accepted {response['job']}: "
                      f"{response['scenario']} "
                      f"({response['cells']} cells, "
                      f"position {response['position']})", flush=True)
            if args.no_watch:
                return 0
            terminal = None
            for event in client.stream():
                if args.json:
                    print(json.dumps(event, sort_keys=True), flush=True)
                elif event["event"] == "cell":
                    labels = json.dumps(event["labels"], sort_keys=True)
                    cached = " (cached)" if event["cached"] else ""
                    print(f"cell {event['index'] + 1}/{event['total']} "
                          f"{labels} "
                          f"{_event_metric_summary(event['metrics'])}"
                          f"{cached}", flush=True)
                if event["event"] in ("done", "failed", "error"):
                    terminal = event
    except (ConnectionError, TimeoutError, OSError) as error:
        endpoint = args.socket or f"{args.host}:{args.port}"
        print(f"error: cannot reach server at {endpoint}: {error}",
              file=sys.stderr)
        return 2
    if terminal is None or terminal["event"] != "done":
        reason = (terminal or {}).get("reason", "stream ended early")
        print(f"error: job failed: {reason}", file=sys.stderr)
        return 1
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(terminal, indent=2, sort_keys=True))
        print(f"result saved to {path}")
    if not args.json:
        results = terminal["results"]
        cached = sum(1 for entry in results if entry["cached"])
        print(f"{terminal['job']} done: {len(results)} cells "
              f"({cached} cached)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Scenario sweeps over the simulated SSD/ESSD devices.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios").set_defaults(
        func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one scenario sweep")
    run_parser.add_argument("scenario")
    run_parser.add_argument("--serial", action="store_true",
                            help="run cells in-process instead of worker processes")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker-process count (default: CPU count)")
    run_parser.add_argument("--shards", type=int, default=None,
                            help="shard count applied to fleet cells "
                                 "(nested inside the sweep pool); errors if "
                                 "a document's run: block disagrees")
    run_parser.add_argument("--transport", default=None,
                            choices=["auto", "local", "executor", "shm"],
                            help="shard transport for fleet cells (default "
                                 "auto: shared memory on multi-core hosts)")
    run_parser.add_argument("--cache-dir", default=None,
                            help="result-cache directory (default: "
                                 "$REPRO_SWEEP_CACHE or .sweep-cache)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="disable the result cache entirely")
    run_parser.add_argument("--force", action="store_true",
                            help="ignore cached results and re-run")
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink per-cell I/O budgets for a fast pass")
    run_parser.add_argument("--out", default=None,
                            help="save the sweep result JSON to this path")
    run_parser.set_defaults(func=_cmd_run)

    fleet_parser = sub.add_parser(
        "fleet", help="run a fleet scenario on the sharded cluster runner")
    fleet_parser.add_argument("scenario")
    fleet_parser.add_argument("--shards", type=int, default=None,
                              help="shard-simulator count (default 1: the "
                                   "serial reference path); deprecated "
                                   "alias for a run: block / FleetRunConfig "
                                   "-- errors if a document disagrees")
    fleet_parser.add_argument("--serial", action="store_true",
                              help="keep all shards in-process (no worker "
                                   "processes), whatever --shards says")
    fleet_parser.add_argument("--transport", default=None,
                              choices=["auto", "local", "executor", "shm"],
                              help="shard transport: shm (shared-memory "
                                   "rings), executor (pickle/executor "
                                   "baseline), local (in-process), or auto "
                                   "(default: shm when multi-core worker "
                                   "processes are in play)")
    fleet_parser.add_argument("--spin-budget", type=int, default=None,
                              help="shm transport: hot-spin iterations "
                                   "before a waiter starts sleeping "
                                   "(default 2000)")
    fleet_parser.add_argument("--epoch-us", type=float, default=None,
                              help="override the topology's conservative "
                                   "synchronization window")
    fleet_parser.add_argument("--faults", default=None, metavar="JSON|@FILE",
                              help="fault schedule to inject: JSON text or "
                                   "@file, either a list of fault events or "
                                   '{"events": [...], "policy": {...}} '
                                   "(replaces any schedule in the topology; "
                                   "part of the cache key)")
    fleet_parser.add_argument("--macro", action="append", default=None,
                              metavar="GROUP[=MODE][,GROUP...]",
                              help="override group simulation modes, e.g. "
                                   "'--macro web' or '--macro web=macro,"
                                   "db=discrete': macro groups run as "
                                   "calibrated mean-field aggregates "
                                   "(metrics flagged approximate; part of "
                                   "the cache key)")
    fleet_parser.add_argument("--run-ahead", type=int, default=None,
                              help="epochs granted per coordinator task for "
                                   "self-contained shards (default 16; 1 "
                                   "restores per-epoch barriers)")
    fleet_parser.add_argument("--cache-dir", default=None,
                              help="result-cache directory (default: "
                                   "$REPRO_SWEEP_CACHE or .sweep-cache)")
    fleet_parser.add_argument("--no-cache", action="store_true",
                              help="disable the result cache entirely")
    fleet_parser.add_argument("--force", action="store_true",
                              help="ignore cached results and re-run")
    fleet_parser.add_argument("--quick", action="store_true",
                              help="shrink tenant workloads for a fast pass")
    fleet_parser.add_argument("--out", default=None,
                              help="save the fleet reports JSON to this path")
    fleet_parser.set_defaults(func=_cmd_fleet)

    diff_parser = sub.add_parser("diff", help="compare two saved sweep results")
    diff_parser.add_argument("a")
    diff_parser.add_argument("b")
    diff_parser.add_argument("--metric", default="throughput_gbps")
    diff_parser.add_argument("--tolerance", type=float, default=0.05)
    diff_parser.add_argument("--fail-on-change", action="store_true")
    diff_parser.set_defaults(func=_cmd_diff)

    report_parser = sub.add_parser("report",
                                   help="render the full paper report (Table I, "
                                        "Figures 2-5)")
    report_parser.add_argument("--quick", action="store_true")
    report_parser.set_defaults(func=_cmd_report)

    validate_parser = sub.add_parser(
        "validate", help="validate scenario/fleet/cell config documents "
                         "(YAML/JSON) without running them")
    validate_parser.add_argument("files", nargs="+", metavar="FILE")
    validate_parser.set_defaults(func=_cmd_validate)

    serve_parser = sub.add_parser(
        "serve", help="run the persistent experiment service "
                      "(line-JSON protocol, see repro.serve)")
    serve_parser.add_argument("--socket", default=None, metavar="PATH",
                              help="listen on this unix socket")
    serve_parser.add_argument("--port", type=int, default=None, metavar="N",
                              help="listen on localhost TCP port N "
                                   "(0 = ephemeral)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="TCP bind address (default 127.0.0.1)")
    serve_parser.add_argument("--max-pending", type=int, default=8,
                              help="admission control: queued jobs beyond "
                                   "this are rejected with a reason "
                                   "(default 8)")
    serve_parser.add_argument("--job-workers", type=int, default=1,
                              help="concurrently running jobs (default 1)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="result-cache directory (default: "
                                   "$REPRO_SWEEP_CACHE or .sweep-cache)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="disable the result cache entirely")
    serve_parser.add_argument("--serial", action="store_true",
                              help="run cells in-process instead of worker "
                                   "processes")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="sweep worker-process count")
    serve_parser.add_argument("--shards", type=int, default=None,
                              help="shard count applied to fleet cells")
    serve_parser.add_argument("--transport", default=None,
                              choices=["auto", "local", "executor", "shm"],
                              help="shard transport for fleet cells")
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a scenario (registered name or document "
                       "file) to a running serve process")
    submit_parser.add_argument("target",
                               help="registered scenario name, or a "
                                    "YAML/JSON document file")
    submit_parser.add_argument("--socket", default=None, metavar="PATH",
                               help="connect to this unix socket")
    submit_parser.add_argument("--port", type=int, default=None, metavar="N",
                               help="connect to localhost TCP port N")
    submit_parser.add_argument("--host", default="127.0.0.1",
                               help="TCP host (default 127.0.0.1)")
    submit_parser.add_argument("--quick", action="store_true",
                               help="shrink per-cell I/O budgets (same as "
                                    "run/fleet --quick)")
    submit_parser.add_argument("--no-watch", action="store_true",
                               help="return after admission instead of "
                                    "streaming results")
    submit_parser.add_argument("--timeout", type=float, default=300.0,
                               help="per-response timeout in seconds "
                                    "(default 300)")
    submit_parser.add_argument("--json", action="store_true",
                               help="print raw protocol events as JSON lines")
    submit_parser.add_argument("--out", default=None,
                               help="save the terminal result JSON to this "
                                    "path")
    submit_parser.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
