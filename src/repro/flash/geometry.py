"""Flash array geometry: channels, dies, planes, blocks, and pages."""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.io import KiB


@dataclass(frozen=True)
class FlashGeometry:
    """Describes the physical organisation of a flash array.

    The hierarchy is ``channel -> die -> plane -> block -> page``.  The die is
    the minimum unit of parallel operation; planes within a die can be
    operated together by multi-plane commands (the FTL exploits this when
    flushing the write buffer).
    """

    channels: int = 8
    dies_per_channel: int = 4
    planes_per_die: int = 2
    blocks_per_plane: int = 128
    pages_per_block: int = 256
    page_size: int = 16 * KiB

    def __post_init__(self) -> None:
        for name in ("channels", "dies_per_channel", "planes_per_die",
                     "blocks_per_plane", "pages_per_block", "page_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")

    # -- derived counts ---------------------------------------------------
    @property
    def total_dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def blocks_per_die(self) -> int:
        return self.planes_per_die * self.blocks_per_plane

    @property
    def total_blocks(self) -> int:
        return self.total_dies * self.blocks_per_die

    @property
    def block_size(self) -> int:
        """Bytes per flash block."""
        return self.pages_per_block * self.page_size

    @property
    def die_size(self) -> int:
        """Bytes per die."""
        return self.blocks_per_die * self.block_size

    @property
    def physical_capacity(self) -> int:
        """Raw flash capacity in bytes, including over-provisioned space."""
        return self.total_dies * self.die_size

    @property
    def pages_per_die(self) -> int:
        return self.blocks_per_die * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.total_dies * self.pages_per_die

    # -- address helpers ----------------------------------------------------
    def die_index(self, channel: int, die: int) -> int:
        """Flat die index from (channel, die-within-channel)."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= die < self.dies_per_channel:
            raise ValueError(f"die {die} out of range")
        return channel * self.dies_per_channel + die

    def channel_of_die(self, die_index: int) -> int:
        """Channel that a flat die index belongs to."""
        if not 0 <= die_index < self.total_dies:
            raise ValueError(f"die index {die_index} out of range")
        return die_index // self.dies_per_channel

    def describe(self) -> str:
        """One-line human readable summary."""
        return (f"{self.channels}ch x {self.dies_per_channel}die x "
                f"{self.planes_per_die}pl x {self.blocks_per_plane}blk x "
                f"{self.pages_per_block}pg x {self.page_size // KiB}KiB "
                f"= {self.physical_capacity / (1 << 30):.1f}GiB raw")


@dataclass(frozen=True, order=True)
class FlashAddress:
    """Physical address of one flash page."""

    die: int
    block: int
    page: int

    def __post_init__(self) -> None:
        if self.die < 0 or self.block < 0 or self.page < 0:
            raise ValueError(f"negative component in {self}")

    def block_address(self) -> "FlashAddress":
        """The address of page 0 in the same block (block identity)."""
        return FlashAddress(self.die, self.block, 0)
