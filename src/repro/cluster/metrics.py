"""Fleet-level metric aggregation across shard payloads.

:func:`merge_shard_payloads` takes the per-shard measurement payloads
(:meth:`repro.cluster.shard.ShardWorker.collect`) and folds them into one
fleet report with three levels of aggregation:

* **per tenant** -- the tenant's traffic merged across every device it ran
  on (latency percentiles over the pooled samples, fleet-wide IOPS and
  throughput over the tenant's active window);
* **per group** -- tenant traffic landing on the group's devices plus the
  replica writes the group absorbed through replication edges;
* **fleet-wide** -- everything, plus a binned throughput series.

Merging is deterministic: device payloads are combined in global-index
order and tenants/groups in name order, so a serial run and any sharded
layout produce byte-identical fleet payloads (wall-clock "runtime" data is
kept in a separate section precisely so the physics payload stays
comparable).
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence

from repro.cluster.topology import FleetTopology
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputTimeline

__all__ = ["merge_shard_payloads", "fleet_headline"]

#: Number of bins in the fleet throughput-over-time series.
SERIES_BINS = 24


def _summary_dict(recorder: LatencyRecorder) -> dict[str, float]:
    summary = recorder.summary()
    return {
        "mean_us": summary.mean_us,
        "p50_us": summary.p50_us,
        "p95_us": recorder.percentile(95) if len(recorder) else 0.0,
        "p99_us": summary.p99_us,
        "p999_us": summary.p999_us,
        "max_us": summary.max_us,
    }


class _Aggregate:
    """Accumulates device payloads in a fixed, layout-independent order."""

    def __init__(self) -> None:
        self.devices = 0
        self.ios = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.recorder = LatencyRecorder()
        self.events: list[tuple[float, int, int]] = []  # (t, gidx, bytes)
        #: True when any contributing payload is a macro approximation.
        self.approximate = False

    def add(self, index: int, payload: Mapping[str, Any]) -> None:
        # A macro aggregate reports a whole group through one payload; its
        # ``devices`` field carries the represented count.
        self.devices += payload.get("devices", 1)
        if payload.get("approximate"):
            self.approximate = True
        self.ios += payload["ios_completed"]
        self.bytes_read += payload["bytes_read"]
        self.bytes_written += payload["bytes_written"]
        started = payload["started_us"]
        finished = payload["finished_us"]
        self.started = started if self.started is None \
            else min(self.started, started)
        self.finished = finished if self.finished is None \
            else max(self.finished, finished)
        self.recorder.extend(payload["latency"])
        self.events.extend((time_us, index, num_bytes)
                           for time_us, num_bytes in payload["timeline"])

    @property
    def duration_us(self) -> float:
        if self.started is None or self.finished is None:
            return 0.0
        return self.finished - self.started

    def timeline(self) -> ThroughputTimeline:
        timeline = ThroughputTimeline()
        # Stable sort on (time, global index): cross-device completions at
        # one timestamp merge in the same order under every shard layout.
        timeline.record_many((time_us, num_bytes) for time_us, _, num_bytes
                             in sorted(self.events, key=lambda e: (e[0], e[1])))
        return timeline

    def to_payload(self) -> dict[str, Any]:
        duration = self.duration_us
        total = self.bytes_read + self.bytes_written
        payload: dict[str, Any] = {
            "devices": self.devices,
            "ios_completed": self.ios,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "duration_us": duration,
            "throughput_gbps": total / duration / 1000.0 if duration > 0 else 0.0,
            "iops": self.ios / duration * 1e6 if duration > 0 else 0.0,
        }
        payload.update(_summary_dict(self.recorder))
        if self.approximate:
            # Only ever present as True: exact payloads stay unchanged, so
            # the flag can never diff an exact run against itself.
            payload["approximate"] = True
        return payload


class _WindowClassifier:
    """Splits completions into during-rebuild vs steady populations.

    The degraded intervals come from the per-shard fault-window records
    (failure barrier through rebuild/repair completion); an interval with
    ``end_us=None`` stays degraded until the end of the run.
    """

    def __init__(self, windows: Sequence[Mapping[str, Any]]):
        spans = sorted(
            (window["start_us"],
             math.inf if window["end_us"] is None else window["end_us"])
            for window in windows)
        merged: list[list[float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        self.intervals = [(start, end) for start, end in merged]

    def degraded(self, time_us: float) -> bool:
        return any(start <= time_us < end for start, end in self.intervals)

    def degraded_us(self, start_us: float, finish_us: float) -> float:
        """Total degraded time clipped to the observation span."""
        total = 0.0
        for start, end in self.intervals:
            lo = max(start, start_us)
            hi = min(end, finish_us)
            if hi > lo:
                total += hi - lo
        return total


class _SplitAggregate:
    """During-rebuild / steady halves of one latency+bytes population."""

    def __init__(self, classifier: _WindowClassifier):
        self.classifier = classifier
        self.during = LatencyRecorder()
        self.steady = LatencyRecorder()
        self.during_bytes = 0
        self.steady_bytes = 0

    def add(self, payload: Mapping[str, Any]) -> None:
        times = payload.get("completion_times", ())
        for time_us, latency in zip(times, payload["latency"]):
            recorder = self.during if self.classifier.degraded(time_us) \
                else self.steady
            recorder.record(latency)
        for time_us, num_bytes in payload["timeline"]:
            if self.classifier.degraded(time_us):
                self.during_bytes += num_bytes
            else:
                self.steady_bytes += num_bytes

    def to_payload(self, degraded_us: float,
                   steady_us: float) -> dict[str, Any]:
        during = _summary_dict(self.during)
        during["ios"] = len(self.during)
        during["bytes"] = self.during_bytes
        during["throughput_gbps"] = (
            self.during_bytes / degraded_us / 1000.0 if degraded_us > 0
            else 0.0)
        steady = _summary_dict(self.steady)
        steady["ios"] = len(self.steady)
        steady["bytes"] = self.steady_bytes
        steady["throughput_gbps"] = (
            self.steady_bytes / steady_us / 1000.0 if steady_us > 0 else 0.0)
        return {"during_rebuild": during, "steady": steady}


def merge_shard_payloads(topology: FleetTopology,
                         shard_payloads: Sequence[Mapping[str, Any]],
                         ) -> dict[str, Any]:
    """Merge per-shard measurement payloads into the fleet report."""
    table = topology.device_table()
    faulted = bool(topology.faults)

    # tenant -> {global index -> device payload}, merged across shards.
    per_tenant: dict[str, dict[int, Mapping[str, Any]]] = {}
    for shard in shard_payloads:
        for tenant_name, devices in shard["tenants"].items():
            bucket = per_tenant.setdefault(tenant_name, {})
            for index_str, payload in devices.items():
                bucket[int(index_str)] = payload

    # Fault windows are reported by the shard owning the failed device;
    # sorting on (start, global index) keeps the merged list (and every
    # classification derived from it) layout-independent.
    windows: list[Mapping[str, Any]] = []
    for shard in shard_payloads:
        windows.extend(shard.get("fault_windows", ()))
    windows.sort(key=lambda window: (window["start_us"], window["index"]))
    classifier = _WindowClassifier(windows)

    tenants: dict[str, Any] = {}
    groups: dict[str, _Aggregate] = {}
    fleet = _Aggregate()
    fleet_split = _SplitAggregate(classifier)
    for tenant_name in sorted(per_tenant):
        aggregate = _Aggregate()
        split = _SplitAggregate(classifier)
        for index in sorted(per_tenant[tenant_name]):
            payload = per_tenant[tenant_name][index]
            aggregate.add(index, payload)
            fleet.add(index, payload)
            group_name = table[index][0]
            groups.setdefault(group_name, _Aggregate()).add(index, payload)
            if faulted:
                split.add(payload)
                fleet_split.add(payload)
        tenants[tenant_name] = aggregate.to_payload()
        tenants[tenant_name]["group"] = next(
            tenant.group for tenant in topology.tenants
            if tenant.name == tenant_name)
        if faulted:
            start = aggregate.started if aggregate.started is not None else 0.0
            finish = aggregate.finished if aggregate.finished is not None \
                else 0.0
            degraded = classifier.degraded_us(start, finish)
            tenants[tenant_name]["faults"] = split.to_payload(
                degraded, max(0.0, (finish - start) - degraded))

    # Replica traffic absorbed per target device, then pooled per group in
    # global-index order -- a split target group merged in shard order
    # would pool the same samples differently and break the bit-identical
    # serial-vs-sharded invariant.  Rebuild-storm traffic pools the same
    # way under its own keys.
    replicas = _pool_by_group(table, shard_payloads, "replicas")
    rebuilds = _pool_by_group(table, shard_payloads, "rebuilds") \
        if faulted else {}
    rebuild_reads = _pool_by_group(table, shard_payloads, "rebuild_reads") \
        if faulted else {}
    shed_by_group: dict[str, dict[str, int]] = {}
    if faulted:
        per_device_shed: dict[int, Mapping[str, Any]] = {}
        for shard in shard_payloads:
            for index_str, stats in shard.get("shed", {}).items():
                per_device_shed[int(index_str)] = stats
        for index in sorted(per_device_shed):
            stats = per_device_shed[index]
            bucket = shed_by_group.setdefault(
                table[index][0], {"ios": 0, "bytes": 0})
            bucket["ios"] += stats["ios"]
            bucket["bytes"] += stats["bytes"]

    group_payloads: dict[str, Any] = {}
    for group in topology.groups:
        aggregate = groups.get(group.name, _Aggregate())
        payload = aggregate.to_payload()
        payload["device_type"] = group.device
        payload["devices"] = group.count
        if group.mode == "macro":
            payload["approximate"] = True
        replica = replicas.get(group.name)
        payload["replica_writes"] = replica["count"] if replica else 0
        payload["replica_bytes"] = replica["bytes"] if replica else 0
        if replica and replica["latency"]:
            recorder = LatencyRecorder()
            recorder.extend(replica["latency"])
            payload["replica_mean_us"] = recorder.mean()
            payload["replica_p99_us"] = recorder.percentile(99)
        if faulted:
            rebuild = rebuilds.get(group.name)
            payload["rebuild_writes"] = rebuild["count"] if rebuild else 0
            payload["rebuild_bytes"] = rebuild["bytes"] if rebuild else 0
            if rebuild and rebuild["latency"]:
                recorder = LatencyRecorder()
                recorder.extend(rebuild["latency"])
                payload["rebuild_mean_us"] = recorder.mean()
                payload["rebuild_p99_us"] = recorder.percentile(99)
            source = rebuild_reads.get(group.name)
            payload["rebuild_reads"] = source["count"] if source else 0
            payload["rebuild_read_bytes"] = source["bytes"] if source else 0
            shed = shed_by_group.get(group.name, {"ios": 0, "bytes": 0})
            payload["shed_ios"] = shed["ios"]
            payload["shed_bytes"] = shed["bytes"]
        group_payloads[group.name] = payload

    fleet_payload = fleet.to_payload()
    fleet_payload["devices"] = topology.total_devices
    if topology.has_macro:
        fleet_payload["approximate"] = True
    fleet_payload["replica_writes"] = sum(
        payload["replica_writes"] for payload in group_payloads.values())
    fleet_payload["replica_bytes"] = sum(
        payload["replica_bytes"] for payload in group_payloads.values())
    duration = fleet.duration_us
    if duration > 0 and fleet.events:
        bin_us = max(1000.0, duration / SERIES_BINS)
        samples = fleet.timeline().binned(bin_us)
        fleet_payload["series_bin_us"] = bin_us
        fleet_payload["series"] = [
            [sample.bytes_completed, sample.gigabytes_per_second]
            for sample in samples
        ]

    faults_payload: Optional[dict[str, Any]] = None
    if faulted:
        start = fleet.started if fleet.started is not None else 0.0
        finish = fleet.finished if fleet.finished is not None else 0.0
        degraded_us = classifier.degraded_us(start, finish)
        steady_us = max(0.0, (finish - start) - degraded_us)
        rebuild_bytes = sum(payload.get("rebuild_bytes", 0)
                            for payload in group_payloads.values())
        faults_payload = {
            "events": [dict(window) for window in windows],
            "degraded_us": degraded_us,
            "rebuild_writes": sum(payload.get("rebuild_writes", 0)
                                  for payload in group_payloads.values()),
            "rebuild_bytes": rebuild_bytes,
            # Rebuild bandwidth over the degraded window vs what the
            # foreground tenants pushed through the same window -- the
            # storm-vs-tenant competition headline.
            "rebuild_gbps": (rebuild_bytes / degraded_us / 1000.0
                             if degraded_us > 0 else 0.0),
            "rebuild_reads": sum(payload.get("rebuild_reads", 0)
                                 for payload in group_payloads.values()),
            "rebuild_read_bytes": sum(
                payload.get("rebuild_read_bytes", 0)
                for payload in group_payloads.values()),
            "shed_ios": sum(payload.get("shed_ios", 0)
                            for payload in group_payloads.values()),
            "shed_bytes": sum(payload.get("shed_bytes", 0)
                              for payload in group_payloads.values()),
        }
        faults_payload.update(fleet_split.to_payload(degraded_us, steady_us))

    result = {
        "topology": {
            "name": topology.name,
            "devices": topology.total_devices,
            "groups": len(topology.groups),
            "tenants": len(topology.tenants),
            "edges": len(topology.edges),
            "epoch_us": topology.epoch_us,
            "seed": topology.seed,
        },
        "fleet": fleet_payload,
        "tenants": tenants,
        "groups": group_payloads,
    }
    if faults_payload is not None:
        result["faults"] = faults_payload
    return result


def _pool_by_group(table: list, shard_payloads: Sequence[Mapping[str, Any]],
                   key: str) -> dict[str, dict[str, Any]]:
    """Pool per-device count/bytes/latency stats per group, in
    global-index order (the layout-independent pooling order)."""
    per_device: dict[int, Mapping[str, Any]] = {}
    for shard in shard_payloads:
        for index_str, stats in shard.get(key, {}).items():
            per_device[int(index_str)] = stats
    pooled: dict[str, dict[str, Any]] = {}
    for index in sorted(per_device):
        stats = per_device[index]
        bucket = pooled.setdefault(
            table[index][0], {"count": 0, "bytes": 0, "latency": []})
        bucket["count"] += stats["count"]
        bucket["bytes"] += stats["bytes"]
        bucket["latency"].extend(stats["latency"])
    return pooled


def fleet_headline(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Flat headline metrics (the keys the sweep CLI tables expect)."""
    fleet = payload["fleet"]
    headline = {key: fleet[key] for key in (
        "ios_completed", "bytes_read", "bytes_written", "duration_us",
        "throughput_gbps", "iops", "mean_us", "p50_us", "p95_us", "p99_us",
        "p999_us", "max_us")}
    if fleet.get("approximate"):
        # Macro (mean-field) fleets flag every derived metric; exact
        # results carry no key at all, so cached diffs stay clean.
        headline["approximate"] = True
    return headline
