"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation removes one mechanism from a device model and shows that the
corresponding observation of the unwritten contract disappears -- evidence
that the model produces the paper's behaviour for the modelled reason rather
than by accident.
"""

from dataclasses import replace


from benchmarks.conftest import run_once
from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.host.io import KiB, MiB
from repro.metrics.stats import coefficient_of_variation, throughput_gain
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.workload.fio import FioJob, run_job

CAPACITY = 512 * MiB


def measure_throughput(device_factory, pattern, io_size, queue_depth,
                       write_ratio=None, io_count=500):
    sim = Simulator()
    device = device_factory(sim)
    device.preload()
    job = FioJob(name="ablation", pattern=pattern, io_size=io_size,
                 queue_depth=queue_depth, write_ratio=write_ratio,
                 io_count=io_count, ramp_ios=queue_depth)
    return run_job(sim, device, job).throughput_gbps


def measure_latency(device_factory, pattern, io_size, queue_depth, io_count=250):
    sim = Simulator()
    device = device_factory(sim)
    device.preload()
    job = FioJob(name="ablation", pattern=pattern, io_size=io_size,
                 queue_depth=queue_depth, io_count=io_count)
    return run_job(sim, device, job).latency.mean()


def test_bench_ablation_qos_bucket_gives_observation4(benchmark):
    """Removing the byte-rate budget makes the ESSD's max bandwidth pattern-
    sensitive again (Observation 4 disappears)."""
    baseline_profile = aws_io2_profile(CAPACITY)
    unlimited_profile = replace(
        baseline_profile,
        qos=replace(baseline_profile.qos, max_throughput_bytes_per_us=1e9))

    def run():
        ratios = (0.0, 0.5, 1.0)
        with_qos = [measure_throughput(
            lambda sim: EssdDevice(sim, baseline_profile), "randrw",
            128 * KiB, 32, write_ratio=ratio) for ratio in ratios]
        without_qos = [measure_throughput(
            lambda sim: EssdDevice(sim, unlimited_profile), "randrw",
            128 * KiB, 32, write_ratio=ratio) for ratio in ratios]
        return with_qos, without_qos

    with_qos, without_qos = run_once(benchmark, run)
    assert coefficient_of_variation(with_qos) < 0.08
    assert coefficient_of_variation(without_qos) > coefficient_of_variation(with_qos)
    assert max(without_qos) > max(with_qos) * 1.2
    print(f"\nwith QoS budget   : {[round(v, 2) for v in with_qos]} GB/s (flat)")
    print(f"without QoS budget: {[round(v, 2) for v in without_qos]} GB/s (pattern-sensitive)")


def test_bench_ablation_chunk_placement_gives_observation3(benchmark):
    """Placing the whole volume in a single placement group removes the
    random-over-sequential write gain (Observation 3 disappears)."""
    spread_profile = alibaba_pl3_profile(CAPACITY)
    single_group_profile = replace(spread_profile, chunk_size=CAPACITY)

    def gain_for(profile):
        random_gbps = measure_throughput(
            lambda sim: EssdDevice(sim, profile), "randwrite", 64 * KiB, 32)
        sequential_gbps = measure_throughput(
            lambda sim: EssdDevice(sim, profile), "write", 64 * KiB, 32)
        return throughput_gain(random_gbps, sequential_gbps)

    def run():
        return gain_for(spread_profile), gain_for(single_group_profile)

    spread_gain, single_gain = run_once(benchmark, run)
    assert spread_gain > 1.5
    assert single_gain < 1.2
    print(f"\nchunked placement gain      : {spread_gain:.2f}x")
    print(f"single-placement-group gain : {single_gain:.2f}x")


def test_bench_ablation_write_buffer_and_prefetcher_shape_observation1(benchmark):
    """Disabling the SSD's DRAM write buffer and prefetcher collapses the
    pattern structure of the latency gap: without them, SSD writes and
    sequential reads cost a flash access like random reads do, so the ESSD
    gap becomes similar across patterns."""
    with_cache = samsung_970pro_profile(256 * MiB)
    without_cache = replace(with_cache, write_buffer_bytes=0, read_cache_bytes=0)
    essd_profile = aws_io2_profile(CAPACITY)

    def run():
        essd_write = measure_latency(
            lambda sim: EssdDevice(sim, essd_profile), "randwrite", 4 * KiB, 1)
        gaps = {}
        for label, config in (("with buffer", with_cache), ("without buffer", without_cache)):
            ssd_write = measure_latency(
                lambda sim, config=config: SsdDevice(sim, config),
                "randwrite", 4 * KiB, 1)
            gaps[label] = essd_write / ssd_write
        return gaps

    gaps = run_once(benchmark, run)
    assert gaps["with buffer"] > 2 * gaps["without buffer"]
    print(f"\n4KiB write latency gap with the SSD write buffer   : {gaps['with buffer']:.1f}x")
    print(f"4KiB write latency gap without the SSD write buffer: {gaps['without buffer']:.1f}x")
