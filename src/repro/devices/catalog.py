"""Built-in device catalog: the paper's three devices plus the loopback.

Importing :mod:`repro.devices` imports this module, which registers every
built-in factory.  Capacities default to the profiles' own defaults; the
experiment layers pass explicit (scaled) capacities.

Factories accept **profile overrides** as keyword arguments: any field of
the underlying profile dataclass (``seed``, and for the ESSDs
``replication_factor`` / ``write_quorum`` / ``chunk_size`` / ...) can be
swept from a scenario grid or pinned per fleet device group.  When
``replication_factor`` is lowered below the profile's write quorum, the
quorum follows it down (a quorum can never exceed the replica count).
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import TYPE_CHECKING, Optional

from repro.devices.loopback import LoopbackDevice
from repro.devices.registry import register_device, register_profile_fields
from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.ebs.config import EssdProfile
from repro.ssd import SsdDevice, samsung_970pro_profile
from repro.ssd.config import SsdConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


def _apply_overrides(profile, overrides: dict):
    """Replace profile fields with the given overrides (validated copy)."""
    if not overrides:
        return profile
    if "replication_factor" in overrides and "write_quorum" not in overrides:
        overrides = dict(overrides)
        overrides["write_quorum"] = min(profile.write_quorum,
                                        overrides["replication_factor"])
    return replace(profile, **overrides)


@register_device("SSD")
def _build_ssd(sim: "Simulator", capacity_bytes: Optional[int] = None,
               name: Optional[str] = None, **overrides) -> SsdDevice:
    # op_ratio parameterizes the profile derivation (the geometry is built
    # around it), so it is not a plain profile-field override.
    profile_kwargs = {}
    if "op_ratio" in overrides:
        profile_kwargs["op_ratio"] = overrides.pop("op_ratio")
    if capacity_bytes:
        profile_kwargs["capacity_bytes"] = capacity_bytes
    profile = samsung_970pro_profile(**profile_kwargs)
    profile = _apply_overrides(profile, overrides)
    return SsdDevice(sim, profile, name=name or "SSD")


@register_device("ESSD-1")
def _build_essd1(sim: "Simulator", capacity_bytes: Optional[int] = None,
                 name: Optional[str] = None, **overrides) -> EssdDevice:
    profile = aws_io2_profile(capacity_bytes) if capacity_bytes \
        else aws_io2_profile()
    profile = _apply_overrides(profile, overrides)
    return EssdDevice(sim, profile, name=name)


@register_device("ESSD-2")
def _build_essd2(sim: "Simulator", capacity_bytes: Optional[int] = None,
                 name: Optional[str] = None, **overrides) -> EssdDevice:
    profile = alibaba_pl3_profile(capacity_bytes) if capacity_bytes \
        else alibaba_pl3_profile()
    profile = _apply_overrides(profile, overrides)
    return EssdDevice(sim, profile, name=name)


@register_device("LOOP")
def _build_loopback(sim: "Simulator", capacity_bytes: Optional[int] = None,
                    name: Optional[str] = None, **kwargs) -> LoopbackDevice:
    return LoopbackDevice(sim, capacity_bytes or (1 << 30),
                          name=name or "loopback", **kwargs)


# Declared override keys, used by the config layer to validate
# ``device_params`` documents at load time.  The SSD factory additionally
# accepts ``op_ratio`` (a profile-derivation knob, not a dataclass field);
# LOOP forwards arbitrary kwargs and stays unvalidated.
_SSD_FIELDS = (*(field.name for field in fields(SsdConfig)), "op_ratio")
_ESSD_FIELDS = tuple(field.name for field in fields(EssdProfile))

register_profile_fields("SSD", _SSD_FIELDS)
register_profile_fields("ESSD-1", _ESSD_FIELDS)
register_profile_fields("ESSD-2", _ESSD_FIELDS)
register_profile_fields("LOOP", None)
