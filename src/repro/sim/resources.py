"""Shared resources for simulation processes.

Three primitives cover everything the device models need:

* :class:`Resource` -- a counted resource with FIFO queuing (flash dies,
  per-node service slots, NVMe submission slots, ...).
* :class:`Store` -- a FIFO buffer of items with optional capacity
  (request queues, write-buffer entries, ...).
* :class:`TokenBucket` -- a classic token-bucket rate limiter (provider-side
  throughput and IOPS budgets, network links).
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.sim.events import PRIORITY_NORMAL, Event  # noqa: F401 (re-export)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Resource:
    """A resource with ``capacity`` concurrent slots and a FIFO wait queue."""

    __slots__ = ("sim", "capacity", "_users", "_waiters")

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users = 0
        self._waiters: Deque[Event] = deque()

    @property
    def users(self) -> int:
        """Number of slots currently held."""
        return self._users

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds once a slot is acquired.

        The event is kernel-owned (recyclable): yield it inline and do not
        inspect it after resuming -- see the pooling note in
        :mod:`repro.sim.events`.
        """
        sim = self.sim
        if not sim.fast_path:
            # Pre-refactor path, frame for frame (the microbenchmark baseline).
            event = Event(sim)
            if self._users < self.capacity:
                self._users += 1
                event.succeed(self)
            else:
                self._waiters.append(event)
            return event
        # Fast path: pooled event + inline zero-delay grant (this pair of
        # operations dominates device hot loops).
        pool = sim._event_pool
        if pool:
            event = pool.pop()
            event._value = None
            event._triggered = False
            event._processed = False
            event._defused = False
            # _ok is still True: only successful events are pooled.
        else:
            event = Event(sim)
            event._pool_ok = True
        if self._users < self.capacity:
            self._users += 1
            event._triggered = True
            event._value = self
            sim._sequence = seq = sim._sequence + 1
            event._seq = seq
            sim._immediate.append(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one previously acquired slot."""
        if self._users <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the slot directly to the next waiter; _users stays the same.
            waiter = self._waiters.popleft()
            sim = self.sim
            if sim.fast_path:
                # Inline zero-delay succeed (waiters are always untriggered).
                waiter._triggered = True
                waiter._value = self
                sim._sequence = seq = sim._sequence + 1
                waiter._seq = seq
                sim._immediate.append(waiter)
            else:
                waiter.succeed(self)
        else:
            self._users -= 1

    def acquire(self):
        """Generator helper: ``yield from resource.acquire()`` acquires a slot."""
        yield self.request()


class Store:
    """A FIFO store of items.

    ``put`` blocks (returns a pending event) when the store is full,
    ``get`` blocks when it is empty.
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: "Simulator", capacity: float = math.inf):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """A snapshot of the items currently buffered (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once ``item`` has been accepted."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to a waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            event.succeed(item)
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_waiting_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed(None)


class TokenBucket:
    """Token-bucket rate limiter.

    Tokens accumulate at ``rate`` tokens per microsecond up to ``capacity``.
    :meth:`consume` returns an event that succeeds once the requested amount
    of tokens has been granted; grants are strictly FIFO so a large request
    cannot be starved by a stream of small ones.

    A ``rate`` of ``math.inf`` disables limiting entirely, which the ESSD
    model uses for the "unlimited" baseline in ablation benchmarks.

    The **uncontended fast path** (no waiter queue, tokens available) grants
    inline with a single refill computation -- no wait-queue traffic and no
    wakeup scheduling -- and :meth:`consume_sliced` collapses a fully-covered
    multi-slice transfer into one grant event.  Both produce the same grant
    times as the generic path; the per-grant event scheduling is unchanged,
    so fast/legacy/wheel kernels stay bit-identical.
    """

    __slots__ = ("sim", "rate", "capacity", "_tokens", "_last_update",
                 "_waiters", "_wakeup_scheduled")

    def __init__(self, sim: "Simulator", rate: float,
                 capacity: Optional[float] = None, initial: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float("inf")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._tokens = self.capacity if initial is None else float(initial)
        self._tokens = min(self._tokens, self.capacity)
        self._last_update = sim.now
        self._waiters: Deque[tuple[float, Event]] = deque()
        self._wakeup_scheduled = False

    # -- introspection ----------------------------------------------------
    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill accounting)."""
        self._refill()
        return self._tokens

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for tokens."""
        return len(self._waiters)

    def set_rate(self, rate: float) -> None:
        """Change the refill rate (used to model provider flow limiting)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._refill()
        self.rate = float(rate)
        self._schedule_wakeup()

    # -- consumption ------------------------------------------------------
    def consume_sliced(self, amount: float):
        """Generator: consume ``amount`` tokens in capacity-sized slices.

        ``consume`` rejects requests above the bucket capacity; this helper
        paces an arbitrarily large transfer at the sustained rate instead.
        ``yield from bucket.consume_sliced(n)`` from a simulation process.

        **Batched grants**: when the bucket already holds enough tokens for
        the *whole* transfer (and nothing is queued), every slice would be
        granted at the same instant anyway -- the slices collapse into a
        single grant event, one refill computation instead of per-slice
        bucket arithmetic.  An unlimited bucket (``rate=inf``) likewise
        grants in one event.  Transfers the bucket cannot cover right now
        keep the per-slice pacing loop unchanged.
        """
        remaining = amount
        burst = self.capacity
        if remaining > burst and not self._waiters:
            if math.isinf(self.rate):
                event = self.sim._fresh_event()
                event.succeed(None)
                yield event
                return
            self._refill()
            if self._tokens + 1e-9 * remaining + 1e-12 >= remaining:
                self._tokens -= remaining
                event = self.sim._fresh_event()
                event.succeed(None)
                yield event
                return
        while remaining > 0:
            take = min(remaining, burst)
            yield self.consume(take)
            remaining -= take

    def consume(self, amount: float) -> Event:
        """Return an event that succeeds once ``amount`` tokens are granted."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        sim = self.sim
        event = sim._fresh_event()
        if amount == 0:
            event.succeed(None)
            return event
        rate = self.rate
        if math.isinf(rate):
            event.succeed(None)
            return event
        if amount > self.capacity:
            raise ValueError(
                f"cannot consume {amount} tokens from a bucket of capacity {self.capacity}")
        if not self._waiters:
            # Uncontended fast path: one inline refill + grant.  Identical
            # arithmetic and event scheduling to the generic path below --
            # just without the wait-queue round trip through _service().
            now = sim._now
            elapsed = now - self._last_update
            tokens = self._tokens
            if elapsed > 0:
                tokens = tokens + elapsed * rate
                capacity = self.capacity
                if tokens > capacity:
                    tokens = capacity
                self._tokens = tokens
                self._last_update = now
            if tokens + 1e-9 * amount + 1e-12 >= amount:
                self._tokens = tokens - amount
                event.succeed(None)
                return event
        self._waiters.append((amount, event))
        self._service()
        return event

    # -- internals --------------------------------------------------------
    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            if not math.isinf(self.rate):
                self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            else:
                self._tokens = self.capacity
            self._last_update = now

    def _service(self) -> None:
        self._refill()
        while self._waiters:
            amount, event = self._waiters[0]
            # The grant tolerance must scale with ``amount``: refills accumulate
            # relative floating-point error, and an absolute epsilon can leave a
            # residual deficit whose wakeup delay is below the resolution of
            # ``sim.now`` -- the clock then never advances and the wakeup loop
            # spins forever.
            if self._tokens + 1e-9 * amount + 1e-12 >= amount:
                self._tokens -= amount
                self._waiters.popleft()
                event.succeed(None)
            else:
                break
        if self._waiters:
            self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        if self._wakeup_scheduled or not self._waiters:
            return
        amount, _event = self._waiters[0]
        deficit = max(0.0, amount - self._tokens)
        delay = deficit / self.rate if not math.isinf(self.rate) else 0.0
        self._wakeup_scheduled = True
        wakeup = Event(self.sim)
        wakeup.callbacks.append(self._on_wakeup)
        wakeup.succeed(None, delay=delay)

    def _on_wakeup(self, _event: Event) -> None:
        self._wakeup_scheduled = False
        self._service()
