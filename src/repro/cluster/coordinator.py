"""Partition a fleet topology into shards and drive them over epochs.

Partitioning (:func:`partition_topology`) is **device-affinity** based:
replication edges connect groups into clusters (union-find), whole clusters
are placed onto the least-loaded shard first (so edges stay intra-shard
whenever the cluster count allows), and only when shards would otherwise
sit empty is a shard's device list split at device granularity.

Execution (:class:`FleetCoordinator`) is a conservative time-window loop
with two gears:

* **Batched run-ahead** -- when the partition keeps every replication edge
  intra-shard (the common case: device-affinity placement glues edge
  clusters together), no shard can ever emit cross-shard replica traffic,
  so the coordinator grants each shard a window of ``run_ahead`` epochs
  per task.  Shards step barrier-to-barrier internally, self-delivering
  their own replica messages (see
  :meth:`~repro.cluster.shard.ShardWorker.advance`), and the coordinator
  only rendezvouses once per window: coordination drops from one task per
  shard per busy epoch to one per shard per ``run_ahead`` window.
* **Lockstep** -- when a split edge couples two shards, every shard
  advances to the same barrier per task; emitted messages are routed to
  the shard owning the target device and handed over exactly at their
  ``delivery_epoch`` barrier, sorted by the layout-independent key
  ``(delivery_us, origin_index, origin_seq)``.

In both gears a message is injected when its shard's clock sits exactly on
the delivery barrier.  Because seeds, replica delivery times, and
injection order all derive from logical identities (never from the shard
layout or the granted windows), ``shards=1`` is bit-identical to any
``shards=N`` run -- and ``shards=1`` in-process *is* the serial path.
Topologies without replication edges skip the barrier loop entirely: each
shard drains to completion in a single advance.

Process mode reuses the ``SweepRunner`` patterns (persistent
``ProcessPoolExecutor``, derived seeds), with one twist: each shard gets a
*dedicated single-worker* executor so the worker process keeps the shard's
simulator resident between epoch tasks (plain shared pools give no
task-to-process affinity).
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional, Sequence

from repro.cluster.metrics import merge_shard_payloads
from repro.cluster.shard import (
    ReplicaMessage,
    ShardPlan,
    ShardWorker,
    _worker_advance,
    _worker_collect,
    _worker_init,
    inbox_order,
)
from repro.cluster.topology import FleetTopology

__all__ = ["partition_topology", "FleetCoordinator", "run_fleet_serial"]

#: Safety bound on executed (non-skipped) epochs per run.
MAX_EPOCHS = 200_000

#: Default run-ahead window (epochs granted per task) for self-contained
#: shards.
DEFAULT_RUN_AHEAD = 16

#: Backwards-compatible alias (the key moved next to ReplicaMessage).
_inbox_order = inbox_order


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def partition_topology(topology: FleetTopology, shards: int) -> list[ShardPlan]:
    """Split the fleet's devices into ``shards`` device-affinity slices."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, topology.total_devices)
    group_names = [group.name for group in topology.groups]
    position = {name: index for index, name in enumerate(group_names)}

    # Union-find over groups: replication edges glue groups into clusters.
    parent = {name: name for name in group_names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    couplings = [(edge.source, edge.target) for edge in topology.edges]
    # A hot-spare promotion couples the failed group to its spare group the
    # same way a replication edge couples source to target: rebuild traffic
    # flows between them, so affinity placement keeps them on one shard.
    couplings.extend((fault.group, fault.spare) for fault in topology.faults
                     if fault.spare is not None)
    for source, target in couplings:
        root_a, root_b = find(source), find(target)
        if root_a != root_b:
            # Deterministic union: the earlier-declared group wins.
            if position[root_a] > position[root_b]:
                root_a, root_b = root_b, root_a
            parent[root_b] = root_a

    clusters: dict[str, list[str]] = {}
    for name in group_names:
        clusters.setdefault(find(name), []).append(name)

    sizes = {root: sum(topology.group(name).count for name in members)
             for root, members in clusters.items()}
    # Largest clusters first; ties resolved by declaration order.
    order = sorted(clusters, key=lambda root: (-sizes[root], position[root]))

    assignments: list[list[int]] = [[] for _ in range(shards)]
    for root in order:
        target = min(range(shards), key=lambda sid: (len(assignments[sid]), sid))
        for name in clusters[root]:
            assignments[target].extend(topology.group_indices(name))

    # Fill empty shards (more shards than clusters) by halving the heaviest
    # slice at device granularity -- this may break an edge across shards,
    # which the message-passing loop handles.  A macro group, however, is
    # one indivisible aggregate: splits shift to the nearest atom boundary,
    # and a slice that is one single macro atom simply cannot donate.
    macro_atom: dict[int, int] = {}
    for macro_group in topology.macro_groups():
        indices = topology.group_indices(macro_group.name)
        for index in indices:
            macro_atom[index] = indices[0]

    def _valid_split(devices: list[int], keep: int) -> bool:
        if keep < 1 or keep >= len(devices):
            return False
        left, right = devices[keep - 1], devices[keep]
        return macro_atom.get(left, -1) != macro_atom.get(right, -2)

    while any(not plan for plan in assignments):
        empty = next(sid for sid in range(shards) if not assignments[sid])
        split = None
        for donor in sorted(range(shards),
                            key=lambda sid: (-len(assignments[sid]), sid)):
            devices = assignments[donor]
            if len(devices) < 2:
                break  # heaviest slice already minimal: nothing can donate
            half = len(devices) // 2
            for offset in range(half + 1):
                for keep in (half - offset, half + offset):
                    if _valid_split(devices, keep):
                        split = (donor, keep)
                        break
                if split:
                    break
            if split:
                break
        if split is None:
            break
        donor, keep = split
        assignments[empty] = assignments[donor][keep:]
        assignments[donor] = assignments[donor][:keep]

    return [ShardPlan(shard_id=sid, device_indices=tuple(sorted(indices)))
            for sid, indices in enumerate(assignments)]


# ---------------------------------------------------------------------------
# Shard backends: in-process and dedicated-worker-process execution
# ---------------------------------------------------------------------------

class _LocalShards:
    """All shards as in-process objects (the serial / test path)."""

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan]):
        self.workers = [ShardWorker(topology, plan) for plan in plans]

    def advance_all(self, until_us: Optional[float],
                    inboxes: Sequence[list[ReplicaMessage]],
                    self_deliver: bool = False,
                    ) -> list[tuple[list[ReplicaMessage], float, int]]:
        return [worker.advance(until_us, inbox, self_deliver)
                for worker, inbox in zip(self.workers, inboxes)]

    def advance_subset(self, shard_ids: Sequence[int],
                       until_us: Optional[float], self_deliver: bool = False,
                       ) -> list[tuple[list[ReplicaMessage], float, int]]:
        return [self.workers[sid].advance(until_us, None, self_deliver)
                for sid in shard_ids]

    def collect_all(self) -> list[dict[str, Any]]:
        return [worker.collect() for worker in self.workers]

    def scheduled_events(self) -> int:
        return sum(worker.sim.scheduled_events for worker in self.workers)

    def close(self) -> None:
        pass


class _ProcessShards:
    """One persistent single-worker ProcessPoolExecutor per shard."""

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan]):
        self.pools = [ProcessPoolExecutor(max_workers=1) for _ in plans]
        payload = topology.canonical()
        init = [pool.submit(_worker_init, payload, plan.to_payload())
                for pool, plan in zip(self.pools, plans)]
        for future in init:
            future.result()
        self._events = 0

    def advance_all(self, until_us: Optional[float],
                    inboxes: Sequence[list[ReplicaMessage]],
                    self_deliver: bool = False,
                    ) -> list[tuple[list[ReplicaMessage], float, int]]:
        futures = [pool.submit(_worker_advance, until_us, inbox, self_deliver)
                   for pool, inbox in zip(self.pools, inboxes)]
        return [future.result() for future in futures]

    def advance_subset(self, shard_ids: Sequence[int],
                       until_us: Optional[float], self_deliver: bool = False,
                       ) -> list[tuple[list[ReplicaMessage], float, int]]:
        futures = [self.pools[sid].submit(_worker_advance, until_us, [],
                                          self_deliver)
                   for sid in shard_ids]
        return [future.result() for future in futures]

    def collect_all(self) -> list[dict[str, Any]]:
        futures = [pool.submit(_worker_collect) for pool in self.pools]
        payloads = [future.result() for future in futures]
        self._events = sum(payload["scheduled_events"] for payload in payloads)
        return payloads

    def scheduled_events(self) -> int:
        return self._events

    def close(self) -> None:
        for pool in self.pools:
            pool.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

class FleetCoordinator:
    """Runs a :class:`FleetTopology` over ``shards`` shard simulators.

    Parameters
    ----------
    shards:
        Number of shard simulators (clamped to the device count).
    processes:
        Run each shard in a dedicated worker process (default: only when
        ``shards > 1``).  In-process execution produces byte-identical
        payloads -- it is the same ShardWorker code -- so tests and the
        serial path use it directly.
    epoch_us:
        Override the topology's conservative synchronization window.
    run_ahead:
        Epochs granted per coordinator task when the partition keeps every
        replication edge intra-shard (see the module docstring).
        ``run_ahead=1`` restores one-task-per-busy-epoch coordination.
    """

    def __init__(self, shards: int = 1, processes: Optional[bool] = None,
                 epoch_us: Optional[float] = None,
                 max_epochs: int = MAX_EPOCHS,
                 run_ahead: int = DEFAULT_RUN_AHEAD):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if run_ahead < 1:
            raise ValueError("run_ahead must be >= 1")
        self.shards = shards
        self.processes = (shards > 1) if processes is None else processes
        self.epoch_us = epoch_us
        self.max_epochs = max_epochs
        self.run_ahead = run_ahead

    def run(self, topology: FleetTopology) -> dict[str, Any]:
        """Execute the fleet and return the merged metrics payload.

        The payload's ``fleet`` / ``tenants`` / ``groups`` sections are
        bit-identical across shard counts, execution modes, and run-ahead
        windows; wall-clock and coordination data live under ``runtime``.
        """
        if self.epoch_us is not None:
            topology = topology.scaled(epoch_us=self.epoch_us)
        plans = partition_topology(topology, self.shards)
        owner = {index: plan.shard_id for plan in plans
                 for index in plan.device_indices}
        started = time.perf_counter()
        backend = _ProcessShards(topology, plans) if self.processes \
            else _LocalShards(topology, plans)
        epochs = 0
        rounds = 0
        tasks = 0
        batched = False
        try:
            if not topology.edges and not topology.faults:
                # No cross-device dependencies: each shard drains in one go.
                backend.advance_all(None, [[] for _ in plans])
                rounds = 1
                tasks = len(plans)
            elif self._edges_shard_local(topology, owner):
                batched = True
                epochs, rounds, tasks = self._run_batched(topology, plans,
                                                          backend)
            else:
                epochs, rounds = self._run_lockstep(topology, plans, owner,
                                                    backend)
                tasks = rounds * len(plans)
            payloads = backend.collect_all()
            events = backend.scheduled_events()
        finally:
            backend.close()
        wall_s = time.perf_counter() - started
        result = merge_shard_payloads(topology, payloads)
        result["runtime"] = {
            "shards": len(plans),
            "mode": "processes" if self.processes else "in-process",
            "epochs": epochs,
            "batched": batched,
            "run_ahead": self.run_ahead,
            "coordinator_rounds": rounds,
            "coordination_tasks": tasks,
            "wall_s": wall_s,
            "scheduled_events": events,
            "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
            "cpu_count": os.cpu_count(),
            "partition": [list(plan.device_indices) for plan in plans],
        }
        return result

    @staticmethod
    def _edges_shard_local(topology: FleetTopology,
                           owner: dict[int, int]) -> bool:
        """Whether every replication edge's source *and* target devices
        landed on a single shard -- the precondition for run-ahead: no
        shard can ever emit a cross-shard replica message.  Fault events
        extend the same requirement to rebuild traffic: a failed group and
        its rebuild targets (the hot spare, or the group's own surviving
        peers) must share a shard."""
        for edge in topology.edges:
            touched = {owner[index]
                       for index in topology.group_indices(edge.source)}
            touched.update(owner[index]
                           for index in topology.group_indices(edge.target))
            if len(touched) > 1:
                return False
        for fault in topology.faults:
            touched = {owner[index]
                       for index in topology.group_indices(fault.group)}
            if fault.spare is not None:
                touched.update(owner[index]
                               for index in topology.group_indices(fault.spare))
            if len(touched) > 1:
                return False
        return True

    def _run_batched(self, topology: FleetTopology, plans,
                     backend) -> tuple[int, int, int]:
        """Grant every (self-contained) shard ``run_ahead`` epochs per
        task; shards self-deliver intra-shard replica traffic and skip
        idle epochs internally.  A shard reporting ``peek == inf`` is
        drained for good (nothing can revive it without cross-shard
        traffic) and receives no further tasks.  Returns
        ``(epochs, rounds, tasks)``."""
        epoch_us = topology.epoch_us
        executed = [0] * len(plans)
        peeks = [0.0] * len(plans)
        index = 0
        rounds = 0
        tasks = 0
        while True:
            active = [sid for sid, peek in enumerate(peeks)
                      if peek != math.inf]
            if not active:
                return max(executed), rounds, tasks
            # Idle skip across windows: start the next grant at the epoch
            # holding the earliest pending event anywhere in the fleet.
            start = max(index, math.floor(min(peeks[sid] for sid in active)
                                          / epoch_us))
            index = start + self.run_ahead
            rounds += 1
            tasks += len(active)
            results = backend.advance_subset(active, index * epoch_us,
                                             self_deliver=True)
            for sid, (outbound, peek, ran) in zip(active, results):
                if outbound:  # pragma: no cover - guarded by _edges_shard_local
                    raise RuntimeError(
                        f"self-contained shard {sid} emitted a cross-shard "
                        "replica message")
                executed[sid] += ran
                peeks[sid] = peek
            if max(executed) > self.max_epochs:
                raise RuntimeError(
                    f"fleet {topology.name!r} exceeded {self.max_epochs} "
                    f"epochs (epoch_us={epoch_us}); raise epoch_us or "
                    "max_epochs")

    def _run_lockstep(self, topology: FleetTopology, plans, owner,
                      backend) -> tuple[int, int]:
        """The conservative epoch-barrier loop for partitions where a
        replication edge spans shards.  Collected messages wait at the
        coordinator until the barrier matching their ``delivery_epoch``;
        every shard then receives them with its clock sitting exactly on
        that barrier.  Returns ``(epochs, rounds)``."""
        epoch_us = topology.epoch_us
        pending: list[list[ReplicaMessage]] = [[] for _ in plans]
        peeks = [0.0] * len(plans)
        #: Barrier position as an *integer* epoch index.  The barrier time
        #: is always computed as ``index * epoch_us`` -- the exact same
        #: float-multiplication grid the replication hook quantizes
        #: delivery times onto.  Accumulating ``barrier += epoch_us``
        #: instead would drift off that grid for epochs not exactly
        #: representable in binary, leaving a collected message's delivery
        #: in the past.
        position = 0
        rounds = 0
        while True:
            handoff: list[list[ReplicaMessage]] = [[] for _ in plans]
            future = math.inf
            due = False
            for sid, inbox in enumerate(pending):
                keep = []
                for message in inbox:
                    if message.delivery_epoch == position:
                        handoff[sid].append(message)
                        due = True
                    else:
                        keep.append(message)
                        if message.delivery_epoch < future:
                            future = message.delivery_epoch
                pending[sid] = keep
            targets = []
            if due:
                # Deliveries inject at the current barrier; their writes
                # start here, so the next window spans one epoch.
                targets.append(position + 1)
            if future != math.inf:
                targets.append(int(future))
            min_peek = min(peeks)
            if min_peek != math.inf:
                # Skip whole idle epochs: jump straight to the barrier just
                # past the earliest pending event.  The advance window still
                # spans at most one epoch of *activity*, so every emitted
                # message remains deliverable at a future barrier.
                targets.append(max(position + 1,
                                   math.floor(min_peek / epoch_us) + 1))
            if not targets:
                return rounds, rounds
            rounds += 1
            if rounds > self.max_epochs:
                raise RuntimeError(
                    f"fleet {topology.name!r} exceeded {self.max_epochs} "
                    f"epochs (epoch_us={epoch_us}); raise epoch_us or "
                    "max_epochs")
            position = min(targets)
            results = backend.advance_all(
                position * epoch_us,
                [sorted(inbox, key=inbox_order) for inbox in handoff])
            for sid, (outbound, peek, _ran) in enumerate(results):
                peeks[sid] = peek
                for message in outbound:
                    pending[owner[message.target_index]].append(message)


def run_fleet_serial(topology: FleetTopology) -> dict[str, Any]:
    """The serial reference path: the whole fleet in one in-process shard."""
    return FleetCoordinator(shards=1, processes=False).run(topology)
