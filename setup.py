"""Setup shim for environments without PEP 517 wheel support."""
from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        # YAML config documents (src/repro/config); without it the loader
        # falls back to JSON-only documents with a clear error for YAML.
        "config": [
            "pyyaml",
        ],
        # The suite runs with a per-test timeout (pytest.ini); pytest-timeout
        # enforces it when installed, with a SIGALRM fallback in conftest.py
        # for minimal environments.
        "test": [
            "pytest",
            "pytest-benchmark",
            "pytest-timeout",
            "hypothesis",
        ],
    },
)
