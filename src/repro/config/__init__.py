"""Config-driven fleets: validated YAML/JSON documents for every layer.

This package is the declarative front door of the stack: topologies, device
profile overrides, fault schedules, and whole scenario definitions live in
plain documents (YAML when :mod:`pyyaml` is installed, JSON always) instead
of Python code.  Documents load through the existing factory registries --
``devices`` names must be registered families, fleets round-trip through
:class:`repro.cluster.FleetTopology` -- so a config-loaded fleet and its
Python-built twin are the *same object* and produce bit-identical metrics.

* :mod:`repro.config.schema` -- document <-> object converters with precise,
  path-addressed validation errors (``fleet.groups[2].count: expected
  positive int``): :func:`topology_from_document`,
  :func:`scenario_from_document`, :func:`cell_from_document` and their
  ``*_to_document`` inverses (also exposed as methods on
  :class:`~repro.cluster.FleetTopology`,
  :class:`~repro.experiments.sweep.CellSpec`, and
  :class:`~repro.experiments.scenarios.ScenarioSpec`).
* :mod:`repro.config.loader` -- text/file parsing (YAML/JSON, with a
  graceful JSON-only fallback when pyyaml is absent) plus the
  ``$REPRO_SCENARIO_PATH`` directory scan that registers user scenario
  documents beside the built-ins.

CLI: ``python -m repro.experiments validate <file>`` checks documents
without running anything; ``run``/``fleet``/``submit`` accept registered
document scenarios like any built-in.
"""

from repro.config.loader import (
    SCENARIO_SUFFIXES,
    load_document,
    parse_document_text,
    scan_scenario_dirs,
    scenario_from_path,
    yaml_available,
)
from repro.config.schema import (
    ConfigError,
    cell_from_document,
    cell_to_document,
    document_kind,
    run_config_from_document,
    run_config_to_document,
    scenario_for_document,
    scenario_from_document,
    scenario_to_document,
    topology_from_document,
    topology_to_document,
)

__all__ = [
    "ConfigError",
    "SCENARIO_SUFFIXES",
    "cell_from_document",
    "cell_to_document",
    "document_kind",
    "load_document",
    "parse_document_text",
    "run_config_from_document",
    "run_config_to_document",
    "scan_scenario_dirs",
    "scenario_for_document",
    "scenario_from_document",
    "scenario_from_path",
    "scenario_to_document",
    "topology_from_document",
    "topology_to_document",
    "yaml_available",
]
