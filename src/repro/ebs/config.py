"""ESSD profiles: the knobs that describe one provider's elastic SSD offering.

Two calibrated profiles ship with the package:

* :func:`aws_io2_profile` -- "ESSD-1" in the paper (Amazon AWS io2 on an
  m6in.xlarge VM): ~3.0 GB/s throughput budget, moderate base latency,
  fine-grained striping, flow limiting after ~2.55x the volume capacity has
  been written.
* :func:`alibaba_pl3_profile` -- "ESSD-2" (Alibaba Cloud PL3 on
  ecs.g5.4xlarge): ~1.1 GB/s budget, lower base latency, heavier latency
  tail, coarse striping with a per-placement-group bandwidth that is well
  below the budget (hence the large random-over-sequential write gain), and
  no flow limiting within the experiment's write volume.

The constants are calibrated against the values reported in the paper's
Table I and Figures 2-5; see EXPERIMENTS.md for the paper-vs-measured
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.host.io import GiB, KiB, MiB


@dataclass(frozen=True)
class NetworkProfile:
    """Datacenter network parameters between the compute and storage clusters."""

    #: One-way propagation + switching latency (us).
    one_way_latency_us: float = 60.0
    #: Per-flow serialization bandwidth in bytes/us (adds size-dependent latency).
    flow_bytes_per_us: float = 420.0
    #: Mean of the exponential per-message jitter (us).
    jitter_mean_us: float = 8.0


@dataclass(frozen=True)
class NodeProfile:
    """A storage-cluster node as seen by one volume."""

    #: Concurrent requests one node services for this volume.
    concurrency: int = 8
    #: Aggregate service bandwidth per node in bytes/us.
    bandwidth_bytes_per_us: float = 1200.0
    #: Minimum bytes charged against the node bandwidth per write (append-log
    #: record granularity); small writes are padded up to this size.
    min_charge_bytes: int = 4 * KiB
    #: Fixed software-path latency for a write at the node (us).
    write_processing_us: float = 95.0
    #: Fixed software-path latency for a (random) read at the node (us);
    #: ``media_read_us`` is added on top for the backend media access.
    read_processing_us: float = 210.0
    #: Total fixed latency of a detected-sequential read at the node (the
    #: server-side readahead path -- no separate media access is paid).
    seq_read_processing_us: float = 200.0
    #: Backend media write latency (journal/append) (us).
    media_write_us: float = 25.0
    #: Backend media read latency (us).
    media_read_us: float = 75.0
    #: Backend media read streaming bandwidth in bytes/us (adds per-size read
    #: latency at the node; not a shared resource).
    media_read_bytes_per_us: float = 800.0


@dataclass(frozen=True)
class QosProfile:
    """Provider-side performance budget of the volume."""

    #: Guaranteed maximum throughput (reads + writes) in bytes/us (= MB/s).
    max_throughput_bytes_per_us: float = 3000.0
    #: Guaranteed maximum IOPS.
    max_iops: float = 256_000.0
    #: I/O size counted as one IOPS token; larger I/Os consume several tokens.
    iops_accounting_bytes: int = 256 * KiB
    #: Token-bucket burst capacity for the throughput budget (bytes).
    burst_bytes: int = 4 * MiB


@dataclass(frozen=True)
class EssdProfile:
    """Complete description of one provider's ESSD offering."""

    name: str = "essd"
    provider: str = "generic"
    volume_type: str = "generic"
    vm_type: str = "generic"
    region: str = "n/a"
    #: Volume capacity in bytes.
    capacity_bytes: int = 4 * GiB
    logical_block_size: int = 4 * KiB
    #: Striping granularity: contiguous LBA ranges of this size map to one
    #: placement group of ``replication_factor`` nodes.
    chunk_size: int = 512 * KiB
    #: Number of replicas written synchronously.
    replication_factor: int = 3
    #: Number of acknowledgements required before a write completes.
    write_quorum: int = 3
    #: Number of storage nodes the volume's chunks are spread over.
    storage_nodes: int = 24
    #: Client-side (virtual block service in the compute node) overhead (us).
    client_overhead_us: float = 22.0
    #: Additional client-side cost per chunk-level sub-request (us).
    per_subrequest_overhead_us: float = 6.0
    network: NetworkProfile = NetworkProfile()
    node: NodeProfile = NodeProfile()
    qos: QosProfile = QosProfile()
    #: Provider-advertised maximum IOPS (what Table I of the paper prints);
    #: ``qos.max_iops`` is the value actually enforced by the model.
    advertised_max_iops: Optional[float] = None
    #: Cumulative-write multiple of capacity after which the provider starts
    #: flow-limiting writes (``None`` = never within any experiment).
    flow_limit_after_capacity_factor: Optional[float] = None
    #: Write throughput once flow limiting engages (bytes/us).
    flow_limited_write_bytes_per_us: float = 305.0
    #: Probability that a request experiences a long-tail hiccup.
    hiccup_probability: float = 0.002
    #: Mean of the exponential hiccup magnitude (us).
    hiccup_mean_us: float = 160.0
    #: RNG seed for jitter/tail sampling.
    seed: int = 0xE55D

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.capacity_bytes % self.logical_block_size != 0:
            raise ValueError("capacity must be a multiple of the logical block size")
        if self.chunk_size % self.logical_block_size != 0:
            raise ValueError("chunk_size must be a multiple of the logical block size")
        if self.write_quorum > self.replication_factor:
            raise ValueError("write_quorum cannot exceed replication_factor")
        if self.write_quorum < 1 or self.replication_factor < 1:
            raise ValueError("replication parameters must be >= 1")
        if self.storage_nodes < self.replication_factor:
            raise ValueError("need at least replication_factor storage nodes")
        if self.flow_limit_after_capacity_factor is not None \
                and self.flow_limit_after_capacity_factor <= 0:
            raise ValueError("flow_limit_after_capacity_factor must be positive")

    @property
    def num_chunks(self) -> int:
        """Number of chunks the volume's address space is divided into."""
        return -(-self.capacity_bytes // self.chunk_size)

    @property
    def max_throughput_gbps(self) -> float:
        """Throughput budget in GB/s (for reports)."""
        return self.qos.max_throughput_bytes_per_us / 1000.0

    def with_capacity(self, capacity_bytes: int) -> "EssdProfile":
        """Copy of the profile at a different volume capacity."""
        return replace(self, capacity_bytes=capacity_bytes)


def aws_io2_profile(capacity_bytes: int = 4 * GiB) -> EssdProfile:
    """ESSD-1: an AWS-io2-like volume (see the paper's Table I).

    The paper's volume is 2 TB; the default here is scaled down (DESIGN.md,
    "Scaling convention") while latency constants and the throughput budget
    are kept at full scale.  The flow-limit threshold is expressed as a
    multiple of capacity, exactly as the paper observes it (~2.55x).
    """
    return EssdProfile(
        name="ESSD-1",
        provider="Amazon AWS",
        volume_type="io2",
        vm_type="m6in.xlarge",
        region="Tokyo",
        capacity_bytes=capacity_bytes,
        chunk_size=512 * KiB,
        replication_factor=3,
        write_quorum=3,
        storage_nodes=24,
        client_overhead_us=22.0,
        per_subrequest_overhead_us=6.0,
        network=NetworkProfile(
            one_way_latency_us=62.0,
            # Per-flow serialization must comfortably exceed the volume's
            # 3.0 GB/s budget (a ~25 GbE storage NIC), or large-I/O reads
            # could never reach the purchased throughput (Figure 5's flat
            # budget line).
            flow_bytes_per_us=1250.0,
            jitter_mean_us=10.0,
        ),
        node=NodeProfile(
            concurrency=8,
            bandwidth_bytes_per_us=1250.0,
            min_charge_bytes=4 * KiB,
            write_processing_us=95.0,
            read_processing_us=215.0,
            seq_read_processing_us=285.0,
            media_write_us=25.0,
            media_read_us=80.0,
            media_read_bytes_per_us=2500.0,
        ),
        qos=QosProfile(
            max_throughput_bytes_per_us=3000.0,
            max_iops=256_000.0,
            iops_accounting_bytes=256 * KiB,
            burst_bytes=4 * MiB,
        ),
        advertised_max_iops=25_600.0,
        flow_limit_after_capacity_factor=2.55,
        flow_limited_write_bytes_per_us=305.0,
        hiccup_probability=0.0025,
        hiccup_mean_us=100.0,
        seed=0xA301,
    )


def alibaba_pl3_profile(capacity_bytes: int = 4 * GiB) -> EssdProfile:
    """ESSD-2: an Alibaba-Cloud-PL3-like volume (see the paper's Table I)."""
    return EssdProfile(
        name="ESSD-2",
        provider="Alibaba Cloud",
        volume_type="PL3",
        vm_type="ecs.g5.4xlarge",
        region="Hangzhou",
        capacity_bytes=capacity_bytes,
        chunk_size=2 * MiB,
        replication_factor=3,
        write_quorum=3,
        storage_nodes=16,
        client_overhead_us=16.0,
        per_subrequest_overhead_us=5.0,
        network=NetworkProfile(
            one_way_latency_us=38.0,
            flow_bytes_per_us=370.0,
            jitter_mean_us=6.0,
        ),
        node=NodeProfile(
            concurrency=12,
            bandwidth_bytes_per_us=400.0,
            min_charge_bytes=8 * KiB,
            write_processing_us=28.0,
            read_processing_us=105.0,
            seq_read_processing_us=52.0,
            media_write_us=10.0,
            media_read_us=45.0,
            media_read_bytes_per_us=1200.0,
        ),
        qos=QosProfile(
            max_throughput_bytes_per_us=1100.0,
            max_iops=100_000.0,
            iops_accounting_bytes=256 * KiB,
            burst_bytes=4 * MiB,
        ),
        advertised_max_iops=100_000.0,
        flow_limit_after_capacity_factor=None,
        flow_limited_write_bytes_per_us=305.0,
        hiccup_probability=0.004,
        hiccup_mean_us=800.0,
        seed=0xA113,
    )


#: Default (scaled) profiles, matching the paper's ESSD-1 / ESSD-2 naming.
AWS_IO2_PROFILE = aws_io2_profile()
ALIBABA_PL3_PROFILE = alibaba_pl3_profile()
