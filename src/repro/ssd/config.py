"""SSD configuration and the Samsung-970-Pro-like profile.

The profile is *calibrated*, not copied: geometry and timing constants are
chosen so that the simulated device reproduces the behaviour the paper
reports for its local SSD baseline (Table I and the SSD columns of
Figures 2-5):

* ~10 us buffered 4 KiB write latency and ~60 us 4 KiB random-read latency,
* ~3.5 GB/s sequential-read and ~2.7 GB/s sequential-write bandwidth,
* ~500 K IOPS 4 KiB random reads/writes at high queue depth,
* a sharp garbage-collection throughput cliff once roughly 90 % of the
  device capacity has been written by a sustained random-write workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.host.io import GiB, KiB, MiB


@dataclass(frozen=True)
class SsdConfig:
    """Complete configuration of a simulated local SSD."""

    #: Logical (host-visible) capacity in bytes.
    capacity_bytes: int = 2 * GiB
    #: Host-visible logical block size (the mapping granularity).
    logical_block_size: int = 4 * KiB
    #: Flash geometry (raw capacity must exceed the logical capacity).
    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    #: Flash timing parameters.
    timing: FlashTiming = field(default_factory=FlashTiming)

    # -- host interface -----------------------------------------------------
    #: Fixed per-request controller/NVMe processing overhead (us).
    host_overhead_us: float = 5.0
    #: Host DMA + DRAM copy bandwidth in bytes/us (adds per-request latency
    #: proportional to the request size; it is not a shared resource).
    host_transfer_bytes_per_us: float = 2700.0
    #: Additional fixed cost per logical block touched by a request (us).
    per_block_overhead_us: float = 0.3
    #: Parallel host-interface contexts in the controller (command decode +
    #: DMA pipelines).  Requests beyond this queue for the interface, so deep
    #: queues raise per-request latency on the local SSD.
    controller_contexts: int = 2

    # -- DRAM write buffer ----------------------------------------------------
    #: Write buffer capacity in bytes (0 disables the buffer).
    write_buffer_bytes: int = 16 * MiB
    #: Number of concurrent flusher workers draining the buffer to flash.
    flush_workers: int = 32

    # -- read cache / prefetcher ---------------------------------------------
    #: Read (prefetch) cache capacity in bytes (0 disables prefetching).
    read_cache_bytes: int = 8 * MiB
    #: Number of consecutive sequential requests before prefetching kicks in.
    prefetch_trigger: int = 2
    #: Readahead window in bytes fetched per prefetch round.
    prefetch_window_bytes: int = 512 * KiB

    # -- garbage collection ----------------------------------------------------
    #: Free blocks per die below which background GC starts.
    gc_low_watermark_blocks: int = 3
    #: Free blocks per die below which host allocations stall (GC reserve).
    gc_host_reserve_blocks: int = 1
    #: Free blocks per die above which background GC stops.
    gc_high_watermark_blocks: int = 5

    # -- latency jitter --------------------------------------------------------
    #: Mean of the exponential jitter added to every request (us).
    jitter_mean_us: float = 0.6
    #: Probability that a request hits a firmware hiccup.
    hiccup_probability: float = 0.0008
    #: Extra latency of a firmware hiccup (us).
    hiccup_us: float = 8.0
    #: RNG seed for the jitter model.
    seed: int = 0x5D

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.capacity_bytes % self.logical_block_size != 0:
            raise ValueError("capacity must be a multiple of the logical block size")
        if self.geometry.page_size % self.logical_block_size != 0:
            raise ValueError("flash page size must be a multiple of the logical block size")
        if self.geometry.physical_capacity <= self.capacity_bytes:
            raise ValueError(
                f"raw flash capacity ({self.geometry.physical_capacity}) must exceed "
                f"the logical capacity ({self.capacity_bytes}) to leave over-provisioned space")
        if self.gc_host_reserve_blocks >= self.gc_low_watermark_blocks:
            raise ValueError("gc_host_reserve_blocks must be below gc_low_watermark_blocks")
        if self.gc_low_watermark_blocks > self.gc_high_watermark_blocks:
            raise ValueError("gc_low_watermark_blocks must not exceed gc_high_watermark_blocks")

    # -- derived quantities -----------------------------------------------------
    @property
    def overprovisioning_ratio(self) -> float:
        """Fraction of raw capacity reserved as spare space."""
        return 1.0 - self.capacity_bytes / self.geometry.physical_capacity

    @property
    def logical_blocks(self) -> int:
        """Number of host-visible logical blocks."""
        return self.capacity_bytes // self.logical_block_size

    @property
    def slots_per_page(self) -> int:
        """Logical blocks per flash page."""
        return self.geometry.page_size // self.logical_block_size

    @property
    def program_unit_slots(self) -> int:
        """Logical blocks written by one (multi-plane) program operation."""
        return self.slots_per_page * self.geometry.planes_per_die

    @property
    def program_unit_bytes(self) -> int:
        return self.program_unit_slots * self.logical_block_size

    def with_capacity(self, capacity_bytes: int) -> "SsdConfig":
        """Return a copy scaled to a different logical capacity.

        The flash geometry is re-derived so that the over-provisioning ratio
        is preserved, which keeps GC behaviour comparable across scales.
        """
        ratio = self.overprovisioning_ratio
        raw_target = capacity_bytes / (1.0 - ratio)
        per_block_raw = (self.geometry.total_dies * self.geometry.planes_per_die *
                         self.geometry.pages_per_block * self.geometry.page_size)
        blocks_per_plane = max(4, math.ceil(raw_target / per_block_raw))
        geometry = replace(self.geometry, blocks_per_plane=blocks_per_plane)
        return replace(self, capacity_bytes=capacity_bytes, geometry=geometry)


def samsung_970pro_profile(capacity_bytes: int = 2 * GiB,
                           op_ratio: float = 0.11) -> SsdConfig:
    """A Samsung-970-Pro-like configuration at the requested (scaled) capacity.

    The paper's device is 1 TB; experiments in this repository default to a
    scaled-down capacity (see DESIGN.md, "Scaling convention") with the
    over-provisioning ratio, buffer-to-capacity ratio, and all latency
    constants preserved.

    ``op_ratio`` sets the spare-to-data superblock ratio (the real part's
    ~11% by default).  The over-provisioning sweep scenarios
    (``gc-cliff``) vary it to map how much spare headroom the GC cliff
    needs; the 4-superblock-per-die GC floor still applies, so very small
    ratios saturate at the floor on tiny test capacities.
    """
    if not 0.0 <= op_ratio < 1.0:
        raise ValueError(f"op_ratio must be in [0, 1), got {op_ratio}")
    geometry = FlashGeometry(
        channels=8,
        dies_per_channel=4,
        planes_per_die=2,
        blocks_per_plane=1,  # placeholder, re-derived below
        pages_per_block=32,
        page_size=16 * KiB,
    )
    timing = FlashTiming(
        read_us=45.0,
        program_us=270.0,
        erase_us=3000.0,
        channel_bytes_per_us=440.0,
        command_overhead_us=1.5,
    )
    # Re-derive blocks_per_plane: enough superblocks to hold the logical
    # capacity plus a fixed number of spare superblocks per die, giving
    # roughly the real part's ~9-11% over-provisioning at the default scale.
    # GC needs at least 4 spare superblocks per die (watermarks + open
    # frontiers), and the over-provisioning ratio must stay near the real
    # part's ~10-20% even at tiny test capacities -- the GC cliff appears
    # once ~(1 + OP)x the capacity has been written, so inflated spare space
    # would shift the cliff far beyond where the paper observes it.  Both
    # hold only if a die spans enough data superblocks for the 4-superblock
    # floor to stay a small fraction, so for very small capacities the flash
    # block is shrunk (fewer pages per block) until it does -- scaling block
    # count rather than inflating spare space keeps GC behaviour comparable
    # across scales.
    pages_per_block = geometry.pages_per_block
    while True:
        superblock_bytes = (geometry.planes_per_die * pages_per_block
                            * geometry.page_size)
        data_blocks_per_die = math.ceil(
            capacity_bytes / (superblock_bytes * geometry.total_dies))
        if data_blocks_per_die >= 16 or pages_per_block <= 4:
            break
        pages_per_block //= 2
    spare_blocks_per_die = max(4, round(op_ratio * data_blocks_per_die))
    blocks_per_plane = data_blocks_per_die + spare_blocks_per_die
    geometry = FlashGeometry(
        channels=geometry.channels,
        dies_per_channel=geometry.dies_per_channel,
        planes_per_die=geometry.planes_per_die,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=pages_per_block,
        page_size=geometry.page_size,
    )
    # Scale DRAM buffer/cache with capacity but keep sensible floors.
    write_buffer = max(4 * MiB, capacity_bytes // 128)
    read_cache = max(2 * MiB, capacity_bytes // 256)
    return SsdConfig(
        capacity_bytes=capacity_bytes,
        logical_block_size=4 * KiB,
        geometry=geometry,
        timing=timing,
        host_overhead_us=5.0,
        host_transfer_bytes_per_us=2700.0,
        per_block_overhead_us=0.3,
        write_buffer_bytes=write_buffer,
        flush_workers=geometry.total_dies,
        read_cache_bytes=read_cache,
        prefetch_trigger=2,
        prefetch_window_bytes=512 * KiB,
        gc_low_watermark_blocks=3,
        gc_host_reserve_blocks=1,
        gc_high_watermark_blocks=5,
    )


#: Default Samsung-970-Pro-like profile at the default scaled capacity.
SAMSUNG_970PRO_PROFILE = samsung_970pro_profile()
