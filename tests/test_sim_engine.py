"""Tests for the discrete-event simulation kernel (events, processes, run loop)."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import EmptySchedule
from repro.sim.events import Interrupt, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(12.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [12.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    results = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        results.append(value)

    sim.process(proc())
    sim.run()
    assert results == ["payload"]


def test_events_process_in_time_order():
    sim = Simulator()
    order = []

    def proc(delay, label):
        yield sim.timeout(delay)
        order.append(label)

    sim.process(proc(30, "c"))
    sim.process(proc(10, "a"))
    sim.process(proc(20, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(label):
        yield sim.timeout(5)
        order.append(label)

    for label in "abcd":
        sim.process(proc(label))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(3)
        return 42

    def parent(results):
        value = yield sim.process(child())
        results.append(value)

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [42]


def test_event_succeed_delivers_value():
    sim = Simulator()
    gate = sim.event()
    results = []

    def waiter():
        value = yield gate
        results.append((sim.now, value))

    def trigger():
        yield sim.timeout(7)
        gate.succeed("go")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert results == [(7.0, "go")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_failure_propagates_into_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("broken")

    sim.process(bad())
    with pytest.raises(ValueError, match="broken"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 5

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    times = []

    def proc():
        first = sim.timeout(5, value="a")
        second = sim.timeout(9, value="b")
        values = yield sim.all_of([first, second])
        times.append(sim.now)
        assert set(values.values()) == {"a", "b"}

    sim.process(proc())
    sim.run()
    assert times == [9.0]


def test_any_of_fires_on_first_event():
    sim = Simulator()
    times = []

    def proc():
        yield sim.any_of([sim.timeout(5), sim.timeout(9)])
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [5.0]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    done = []

    def proc():
        yield sim.all_of([])
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]


def test_run_until_time_stops_early():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(10):
            yield sim.timeout(10)
            seen.append(sim.now)

    sim.process(proc())
    sim.run(until=35)
    assert seen == [10.0, 20.0, 30.0]
    assert sim.now == 35


def test_run_until_event_returns_its_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(4)
        return "done"

    process = sim.process(proc())
    assert sim.run(until=process) == "done"


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.process(iter_timeout(sim, 10))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_run_all_counts_events_and_respects_cap():
    sim = Simulator()
    for _ in range(5):
        sim.process(iter_timeout(sim, 1))
    processed = sim.run_all()
    assert processed >= 5

    sim2 = Simulator()
    def forever():
        while True:
            yield sim2.timeout(1)
    sim2.process(forever())
    with pytest.raises(SimulationError):
        sim2.run_all(max_events=50)


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(target):
        yield sim.timeout(10)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(10.0, "wake up")]


def test_interrupting_finished_process_is_an_error():
    sim = Simulator()
    process = sim.process(iter_timeout(sim, 1))
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.process(iter_timeout(sim, 42))
    # The process bootstrap event is at time 0.
    assert sim.peek() == 0.0
