"""Property-based invariants of the macro (mean-field) device-group model.

The macro aggregate must uphold the same physical invariants as the
discrete simulator for *any* workload shape, not just the calibrated
families the validation harness pins down:

* latencies are nonnegative and quantiles are ordered (p50 <= p95 <= p99),
* fault-free closed-loop runs conserve bytes exactly
  (``ios * io_size == bytes_read + bytes_written``),
* the queueing response is monotone in offered depth,
* results are a pure function of the topology (same seed in, same bytes
  out -- the ``derive_seed`` identity scheme keeps calibration
  layout-independent).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FleetCoordinator,
    fleet,
    group,
    run_fleet_serial,
    tenant,
)
from repro.cluster.macro import calibrate_workload
from repro.experiments.sweep import derive_seed

MINI_CAPACITY = 1 << 24

#: Closed-loop workload shapes the strategies draw from.  LOOP keeps each
#: hypothesis example cheap; the calibration path is device-agnostic.
workloads = st.fixed_dictionaries({
    "pattern": st.sampled_from(["randread", "randwrite", "randrw"]),
    "io_size": st.sampled_from([4096, 16384]),
    "queue_depth": st.integers(min_value=1, max_value=8),
    "io_count": st.integers(min_value=10, max_value=60),
})


def macro_fleet(workload: dict, seed: int, count: int = 5):
    workload = dict(workload)
    if workload["pattern"] == "randrw":
        workload["write_ratio"] = 0.3
    return fleet(
        "macro-prop",
        groups=[group("grp", "LOOP", count, capacity_bytes=MINI_CAPACITY,
                      mode="macro")],
        tenants=[tenant("t", "grp", **workload)],
        epoch_us=500.0,
        seed=seed,
    )


@settings(max_examples=12, deadline=None)
@given(workload=workloads, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_macro_latencies_nonnegative_and_quantiles_ordered(workload, seed):
    payload = run_fleet_serial(macro_fleet(workload, seed))
    metrics = payload["tenants"]["t"]
    assert metrics["ios_completed"] > 0
    for key in ("mean_us", "p50_us", "p95_us", "p99_us", "p999_us", "max_us"):
        assert metrics[key] >= 0.0
    assert metrics["p50_us"] <= metrics["p95_us"] <= metrics["p99_us"]
    assert metrics["p99_us"] <= metrics["max_us"]


@settings(max_examples=12, deadline=None)
@given(workload=workloads, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_macro_conserves_bytes_exactly_without_faults(workload, seed):
    topology = macro_fleet(workload, seed)
    payload = run_fleet_serial(topology)
    metrics = payload["tenants"]["t"]
    expected_ios = workload["io_count"] * topology.groups[0].count
    assert metrics["ios_completed"] == expected_ios
    assert metrics["bytes_read"] + metrics["bytes_written"] \
        == expected_ios * workload["io_size"]


@settings(max_examples=12, deadline=None)
@given(workload=workloads,
       depths=st.lists(st.floats(min_value=0.0, max_value=256.0,
                                 allow_nan=False), min_size=2, max_size=6))
def test_macro_response_is_monotone_in_queue_depth(workload, depths):
    topology = macro_fleet(workload, seed=17)
    tenant_spec = topology.tenants[0]
    calibration = calibrate_workload(
        topology.groups[0], MINI_CAPACITY, dict(tenant_spec.workload),
        seed=derive_seed(topology.seed, {"tenant": tenant_spec.name,
                                         "group": "grp", "device": 0}))
    responses = [calibration.response_us(depth) for depth in sorted(depths)]
    assert all(value >= 0.0 for value in responses)
    assert responses == sorted(responses), \
        "response_us must be nondecreasing in offered depth"


@settings(max_examples=8, deadline=None)
@given(workload=workloads, seed=st.integers(min_value=0, max_value=2**31 - 1),
       shards=st.integers(min_value=2, max_value=4))
def test_macro_runs_are_deterministic_and_layout_independent(
        workload, seed, shards):
    topology = macro_fleet(workload, seed, count=6)

    def canonical(payload):
        import json
        return json.dumps({k: v for k, v in payload.items()
                           if k != "runtime"}, sort_keys=True)

    serial = canonical(run_fleet_serial(topology))
    assert serial == canonical(run_fleet_serial(topology))
    assert serial == canonical(FleetCoordinator(shards=shards).run(topology))
