"""Client for the experiment service (used by ``submit`` and the tests)."""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.serve.protocol import TERMINAL_EVENTS, LineChannel

__all__ = ["ServeClient"]


class ServeClient:
    """Line-JSON client for one :class:`~repro.serve.ExperimentServer`.

    Connects over the same two transports the server offers: a unix socket
    path or a localhost TCP port.  One client wraps one connection; a
    context manager closes it deterministically::

        with ServeClient(socket_path="/tmp/repro.sock") as client:
            accepted = client.submit(scenario="fleet-smoke", quick=True)
            for event in client.stream():
                ...  # "started", per-cell "cell", terminal "done"/"failed"
    """

    def __init__(self, socket_path: Optional[Union[str, Path]] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 120.0):
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path / port")
        self.socket_path = None if socket_path is None else str(socket_path)
        self.host = host
        self.port = port
        self.timeout = timeout
        self._channel: Optional[LineChannel] = None

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._channel is not None:
            return self
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        self._channel = LineChannel(sock)
        return self

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def send(self, message: dict[str, Any]) -> None:
        self.connect()
        self._channel.send(message)

    def recv(self) -> dict[str, Any]:
        """One message; raises TimeoutError after the client timeout."""
        self.connect()
        try:
            message = self._channel.recv()
        except socket.timeout:
            raise TimeoutError(
                f"no response from {self._address()} within "
                f"{self.timeout}s") from None
        if message is None:
            raise ConnectionError(f"server at {self._address()} closed the "
                                  f"connection")
        return message

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request and return its first response."""
        self.send(message)
        return self.recv()

    def _address(self) -> str:
        return self.socket_path or f"{self.host}:{self.port}"

    # -- verbs -------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def jobs(self) -> dict[str, Any]:
        return self.request({"op": "jobs"})

    def status(self, job: str) -> dict[str, Any]:
        return self.request({"op": "status", "job": job})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def submit(self, scenario: Optional[str] = None,
               document: Optional[dict[str, Any]] = None,
               quick: bool = False, watch: bool = True) -> dict[str, Any]:
        """Submit a job; returns the ``accepted``/``rejected`` response.

        With ``watch=True`` (default) the server keeps streaming job events
        on this connection afterwards -- consume them with :meth:`stream`.
        """
        message: dict[str, Any] = {"op": "submit", "watch": watch}
        if scenario is not None:
            message["scenario"] = scenario
        if document is not None:
            message["document"] = document
        if quick:
            message["quick"] = True
        return self.request(message)

    def stream(self) -> Iterator[dict[str, Any]]:
        """Yield streamed events until (and including) a terminal one."""
        while True:
            event = self.recv()
            yield event
            if event.get("event") in (*TERMINAL_EVENTS, "error", "rejected"):
                return

    def run(self, scenario: Optional[str] = None,
            document: Optional[dict[str, Any]] = None,
            quick: bool = False) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """Submit, stream to completion, and return ``(terminal, events)``.

        ``terminal`` is the ``done``/``failed`` event, or the ``rejected``
        response itself when admission control turned the job away.
        """
        response = self.submit(scenario=scenario, document=document,
                               quick=quick, watch=True)
        if not response.get("ok"):
            return response, []
        events = list(self.stream())
        return events[-1], events
