"""Factory registry mapping device names to :class:`Device` builders.

This is the single place the rest of the stack instantiates devices from: a
scenario cell says ``"ESSD-2"``, the registry builds the matching model.
Registering a new device family makes it available everywhere at once --
workloads, multi-device cells, the CLI -- with no per-experiment glue.

Adding a device
---------------
Decorate a factory with :func:`register_device`::

    @register_device("MY-DEV")
    def _build_my_dev(sim, capacity_bytes=None, name=None):
        return MyDevice(sim, capacity_bytes or DEFAULT, name=name or "MY-DEV")

A factory takes ``(sim, capacity_bytes=None, name=None, **kwargs)`` and
returns an object satisfying :class:`repro.devices.Device`.  The built-in
catalog (the paper's SSD / ESSD-1 / ESSD-2 plus the loopback test device)
registers itself on import of :mod:`repro.devices`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.protocol import Device
    from repro.sim import Simulator

DeviceFactory = Callable[..., "Device"]

_FACTORIES: dict[str, DeviceFactory] = {}

#: Per-family override keys accepted by the factory (``device_params`` in a
#: fleet document).  ``None`` means "unvalidated": the family accepts
#: arbitrary kwargs and config validation passes everything through.
_PROFILE_FIELDS: dict[str, Optional[tuple[str, ...]]] = {}


class UnknownDeviceError(ValueError, KeyError):
    """Raised for a device name with no registered factory.

    Subclasses both ``ValueError`` (invalid argument, the historical
    ``build_device`` contract) and ``KeyError`` (registry miss).
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def register_device(device_name: str,
                    factory: Optional[DeviceFactory] = None,
                    replace: bool = False):
    """Register ``factory`` under ``device_name`` (usable as a decorator)."""
    def _register(fn: DeviceFactory) -> DeviceFactory:
        if device_name in _FACTORIES and not replace:
            raise ValueError(f"device {device_name!r} is already registered")
        _FACTORIES[device_name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def device_names() -> list[str]:
    """All registered device names, sorted."""
    return sorted(_FACTORIES)


def register_profile_fields(device_name: str,
                            fields: Optional[Sequence[str]]) -> None:
    """Declare the override keys ``device_name``'s factory accepts.

    The config layer validates ``device_params`` documents against this set
    so a typo'd knob fails at load time with a path-addressed error instead
    of a ``TypeError`` deep inside a worker process.  Pass ``None`` to mark
    the family as accepting arbitrary kwargs (no validation).
    """
    _PROFILE_FIELDS[device_name] = None if fields is None else tuple(fields)


def profile_fields(device_name: str) -> Optional[tuple[str, ...]]:
    """The declared override keys for ``device_name``.

    Returns ``None`` when the family never declared a field set (arbitrary
    kwargs allowed).  Unknown families raise :class:`UnknownDeviceError`.
    """
    if device_name not in _FACTORIES:
        known = ", ".join(device_names())
        raise UnknownDeviceError(
            f"unknown device {device_name!r}; known: {known}")
    return _PROFILE_FIELDS.get(device_name)


def create_device(sim: "Simulator", device_name: str,
                  capacity_bytes: Optional[int] = None,
                  name: Optional[str] = None, **kwargs) -> "Device":
    """Build a registered device on ``sim``.

    ``capacity_bytes=None`` uses the factory's default; ``name`` overrides
    the instance name (several instances of one family can then share a
    simulation without colliding in traces and stats).
    """
    try:
        factory = _FACTORIES[device_name]
    except KeyError:
        known = ", ".join(device_names())
        raise UnknownDeviceError(
            f"unknown device {device_name!r}; known: {known}") from None
    return factory(sim, capacity_bytes=capacity_bytes, name=name, **kwargs)
