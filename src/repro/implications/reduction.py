"""Implication 5: re-evaluate I/O-reduction techniques (compression, dedup).

On a local SSD with ~10 us writes, spending tens of microseconds of CPU per
block to compress it slows the critical path down.  On an ESSD whose small
writes already cost hundreds of microseconds of network and software time,
the same CPU cost is a rounding error -- while every byte removed also
reduces the throughput budget (and therefore the bill) the volume needs.
The evaluator quantifies both effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.io import KiB


@dataclass(frozen=True)
class ReductionTechnique:
    """A data-reduction technique applied on the host before I/O."""

    name: str
    #: Output bytes divided by input bytes (0.5 = halves the data).
    reduction_ratio: float
    #: CPU time spent per input KiB on the write path (us).
    cpu_us_per_kib_write: float
    #: CPU time spent per input KiB on the read path (us).
    cpu_us_per_kib_read: float

    def __post_init__(self) -> None:
        if not 0 < self.reduction_ratio <= 1:
            raise ValueError("reduction_ratio must be in (0, 1]")
        if self.cpu_us_per_kib_write < 0 or self.cpu_us_per_kib_read < 0:
            raise ValueError("CPU costs must be non-negative")


#: A fast LZ-class compressor (lz4-like).
FAST_COMPRESSION = ReductionTechnique("lz4-like compression", 0.55, 0.25, 0.10)
#: A slower, denser compressor (zstd-like, higher level).
DENSE_COMPRESSION = ReductionTechnique("zstd-like compression", 0.40, 1.0, 0.30)
#: Content-defined deduplication with an in-memory index.
DEDUPLICATION = ReductionTechnique("deduplication", 0.70, 0.6, 0.05)


@dataclass(frozen=True)
class DeviceLatencyModel:
    """Minimal device description the evaluator needs."""

    name: str
    #: Latency of one I/O of ``reference_io_size`` (us).
    base_latency_us: float
    #: Additional latency per KiB transferred (us).
    per_kib_us: float
    #: Throughput budget in GB/s (``None`` for local devices without one).
    throughput_budget_gbps: float | None = None

    def latency_us(self, io_size: int) -> float:
        return self.base_latency_us + (io_size / KiB) * self.per_kib_us


@dataclass(frozen=True)
class ReductionAssessment:
    """Outcome of evaluating one technique on one device."""

    technique: str
    device: str
    baseline_latency_us: float
    reduced_latency_us: float
    latency_change: float
    bandwidth_reduction: float
    budget_saving_gbps: float | None
    beneficial_for_performance: bool
    beneficial_for_cost: bool

    @property
    def recommended(self) -> bool:
        """Adopt when it does not hurt performance and saves cost, or helps both."""
        return self.beneficial_for_cost and self.beneficial_for_performance


class IoReductionEvaluator:
    """Compares a reduction technique's CPU price against its I/O savings."""

    def __init__(self, device: DeviceLatencyModel,
                 io_size: int = 16 * KiB, write_fraction: float = 0.7):
        if io_size <= 0:
            raise ValueError("io_size must be positive")
        if not 0 <= write_fraction <= 1:
            raise ValueError("write_fraction must be in [0, 1]")
        self.device = device
        self.io_size = io_size
        self.write_fraction = write_fraction

    def assess(self, technique: ReductionTechnique,
               offered_load_gbps: float | None = None,
               latency_tolerance: float = 1.02) -> ReductionAssessment:
        """Evaluate ``technique`` on this device.

        ``latency_tolerance`` is the relative latency increase still counted
        as "not hurting performance" (default 2%).
        """
        io_kib = self.io_size / KiB
        baseline = self.device.latency_us(self.io_size)
        reduced_io = int(self.io_size * technique.reduction_ratio)
        cpu_us = (self.write_fraction * technique.cpu_us_per_kib_write
                  + (1 - self.write_fraction) * technique.cpu_us_per_kib_read) * io_kib
        reduced = self.device.latency_us(reduced_io) + cpu_us
        latency_change = (reduced - baseline) / baseline if baseline > 0 else 0.0
        bandwidth_reduction = 1.0 - technique.reduction_ratio

        budget_saving = None
        beneficial_cost = bandwidth_reduction > 0
        if self.device.throughput_budget_gbps is not None and offered_load_gbps is not None:
            needed_before = min(offered_load_gbps, self.device.throughput_budget_gbps)
            needed_after = needed_before * technique.reduction_ratio
            budget_saving = needed_before - needed_after
            beneficial_cost = budget_saving > 0

        beneficial_perf = reduced <= baseline * latency_tolerance
        return ReductionAssessment(
            technique=technique.name,
            device=self.device.name,
            baseline_latency_us=baseline,
            reduced_latency_us=reduced,
            latency_change=latency_change,
            bandwidth_reduction=bandwidth_reduction,
            budget_saving_gbps=budget_saving,
            beneficial_for_performance=beneficial_perf,
            beneficial_for_cost=beneficial_cost,
        )

    def compare_devices(self, technique: ReductionTechnique,
                        other: "IoReductionEvaluator",
                        offered_load_gbps: float | None = None
                        ) -> tuple[ReductionAssessment, ReductionAssessment]:
        """Assess the same technique here and on ``other`` (e.g. SSD vs ESSD)."""
        return (self.assess(technique, offered_load_gbps),
                other.assess(technique, offered_load_gbps))
