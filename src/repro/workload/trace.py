"""Block-level trace synthesis, serialization, and open-loop replay.

The paper's experiments are closed-loop (FIO), but its implications concern
real deployments whose arrival processes are bursty (Implication 4: smooth
I/Os below the throughput budget).  This module synthesizes such arrival
processes, replays them open-loop against any device, and round-trips traces
through a simple CSV format so external traces can be plugged in.
"""

from __future__ import annotations

import csv
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

from repro.host.device import BlockDevice
from repro.host.io import IOKind, KiB
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One request of a block-level trace."""

    timestamp_us: float
    kind: IOKind
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise ValueError("timestamp must be non-negative")
        if self.offset < 0 or self.size <= 0:
            raise ValueError("offset must be >= 0 and size > 0")


@dataclass
class Trace:
    """An ordered sequence of :class:`TraceEvent`."""

    events: list[TraceEvent] = field(default_factory=list)
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def append(self, event: TraceEvent) -> None:
        if self.events and event.timestamp_us < self.events[-1].timestamp_us:
            raise ValueError("trace events must be appended in time order")
        self.events.append(event)

    @property
    def duration_us(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].timestamp_us - self.events[0].timestamp_us

    @property
    def total_bytes(self) -> int:
        return sum(event.size for event in self.events)

    def write_bytes(self) -> int:
        return sum(e.size for e in self.events if e.kind is IOKind.WRITE)

    def read_bytes(self) -> int:
        return sum(e.size for e in self.events if e.kind is IOKind.READ)

    def offered_load_series(self, bin_us: float) -> list[float]:
        """Offered load (GB/s) per time bin -- the burstiness profile."""
        if bin_us <= 0:
            raise ValueError("bin width must be positive")
        if not self.events:
            return []
        start = self.events[0].timestamp_us
        end = self.events[-1].timestamp_us
        bins = max(1, int(math.ceil((end - start) / bin_us)) + 1)
        loads = [0.0] * bins
        for event in self.events:
            index = min(bins - 1, int((event.timestamp_us - start) // bin_us))
            loads[index] += event.size
        return [load / bin_us / 1000.0 for load in loads]

    def peak_load_gbps(self, bin_us: float = 1000.0) -> float:
        """Peak offered load over any bin (GB/s)."""
        series = self.offered_load_series(bin_us)
        return max(series) if series else 0.0

    def mean_load_gbps(self) -> float:
        """Average offered load over the trace duration (GB/s)."""
        if self.duration_us <= 0:
            return 0.0
        return self.total_bytes / self.duration_us / 1000.0

    # -- serialization ---------------------------------------------------------
    def save_csv(self, path: str | Path) -> None:
        """Write the trace as ``timestamp_us,kind,offset,size`` rows."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["timestamp_us", "kind", "offset", "size"])
            for event in self.events:
                writer.writerow([f"{event.timestamp_us:.3f}", event.kind.value,
                                 event.offset, event.size])

    @classmethod
    def load_csv(cls, path: str | Path, name: Optional[str] = None) -> "Trace":
        """Read a trace previously written by :meth:`save_csv`."""
        trace = cls(name=name or Path(path).stem)
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                trace.append(TraceEvent(
                    timestamp_us=float(row["timestamp_us"]),
                    kind=IOKind(row["kind"]),
                    offset=int(row["offset"]),
                    size=int(row["size"]),
                ))
        return trace


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

def synthesize_uniform_trace(duration_us: float, load_gbps: float, io_size: int = 64 * KiB,
                             write_ratio: float = 1.0, region_bytes: int = 1 << 30,
                             seed: int = 0, name: str = "uniform") -> Trace:
    """A trace whose offered load is constant at ``load_gbps``."""
    if load_gbps <= 0 or duration_us <= 0:
        raise ValueError("duration and load must be positive")
    rng = random.Random(seed)
    interval = io_size / (load_gbps * 1000.0)
    trace = Trace(name=name)
    timestamp = 0.0
    while timestamp < duration_us:
        kind = IOKind.WRITE if rng.random() < write_ratio else IOKind.READ
        offset = rng.randrange(max(1, region_bytes // io_size)) * io_size
        trace.append(TraceEvent(timestamp, kind, offset, io_size))
        timestamp += interval
    return trace


def synthesize_bursty_trace(duration_us: float, mean_load_gbps: float,
                            burst_factor: float = 8.0, burst_fraction: float = 0.1,
                            io_size: int = 64 * KiB, write_ratio: float = 1.0,
                            region_bytes: int = 1 << 30, period_us: float = 100_000.0,
                            seed: int = 0, name: str = "bursty") -> Trace:
    """An on/off trace: short bursts at ``burst_factor`` times the mean load.

    ``burst_fraction`` of every ``period_us`` window is a burst; the rest of
    the window carries the residual load so that the long-run average equals
    ``mean_load_gbps``.  This is the adversarial arrival process for a
    throughput-budgeted ESSD (Implication 4).
    """
    if not 0 < burst_fraction < 1:
        raise ValueError("burst_fraction must be in (0, 1)")
    if burst_factor * burst_fraction > 1.0 + 1e-9:
        raise ValueError("burst_factor * burst_fraction must be <= 1 "
                         "(otherwise the residual load would be negative)")
    rng = random.Random(seed)
    burst_load = mean_load_gbps * burst_factor
    residual_load = mean_load_gbps * (1.0 - burst_factor * burst_fraction) \
        / (1.0 - burst_fraction)
    trace = Trace(name=name)
    window_start = 0.0
    while window_start < duration_us:
        burst_end = window_start + burst_fraction * period_us
        window_end = min(window_start + period_us, duration_us)
        for phase_start, phase_end, load in (
                (window_start, min(burst_end, duration_us), burst_load),
                (min(burst_end, duration_us), window_end, residual_load)):
            if load <= 0 or phase_end <= phase_start:
                continue
            interval = io_size / (load * 1000.0)
            timestamp = phase_start
            while timestamp < phase_end:
                kind = IOKind.WRITE if rng.random() < write_ratio else IOKind.READ
                offset = rng.randrange(max(1, region_bytes // io_size)) * io_size
                trace.append(TraceEvent(timestamp, kind, offset, io_size))
                timestamp += interval
        window_start += period_us
    return trace


def synthesize_diurnal_trace(duration_us: float, mean_load_gbps: float,
                             peak_to_trough: float = 4.0, io_size: int = 64 * KiB,
                             write_ratio: float = 0.7, region_bytes: int = 1 << 30,
                             cycles: int = 2, seed: int = 0,
                             name: str = "diurnal") -> Trace:
    """A sinusoidal day/night load curve, a milder form of burstiness."""
    if peak_to_trough < 1:
        raise ValueError("peak_to_trough must be >= 1")
    rng = random.Random(seed)
    trace = Trace(name=name)
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    timestamp = 0.0
    while timestamp < duration_us:
        phase = 2.0 * math.pi * cycles * timestamp / duration_us
        load = mean_load_gbps * (1.0 + amplitude * math.sin(phase))
        load = max(load, mean_load_gbps / (10.0 * peak_to_trough))
        interval = io_size / (load * 1000.0)
        kind = IOKind.WRITE if rng.random() < write_ratio else IOKind.READ
        offset = rng.randrange(max(1, region_bytes // io_size)) * io_size
        trace.append(TraceEvent(timestamp, kind, offset, io_size))
        timestamp += interval
    return trace


#: Named trace families usable from the sweep layer (``trace-<family>``
#: cell patterns) and from fleet tenants (``{"trace": "<family>", ...}``).
TRACE_FAMILIES = {
    "uniform": synthesize_uniform_trace,
    "bursty": synthesize_bursty_trace,
    "diurnal": synthesize_diurnal_trace,
}


def synthesize_trace(family: str, **params) -> Trace:
    """Synthesize a trace by family name, forwarding generator knobs.

    ``family`` is one of :data:`TRACE_FAMILIES`; ``params`` are passed to the
    matching ``synthesize_*_trace`` function (``duration_us``,
    ``mean_load_gbps`` / ``load_gbps``, ``burst_factor``, ``peak_to_trough``,
    ...).  This is the single entry point the scenario grids and fleet
    topologies go through, so an axis named after a generator knob lands on
    the generator unchanged.
    """
    try:
        synthesize = TRACE_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(TRACE_FAMILIES))
        raise ValueError(f"unknown trace family {family!r}; known: {known}") \
            from None
    return synthesize(**params)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    """Measurements of an open-loop trace replay."""

    trace_name: str
    device_name: str
    ios_completed: int = 0
    bytes_transferred: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    timeline: ThroughputTimeline = field(default_factory=ThroughputTimeline)
    #: Requests still outstanding when the replay window closed.
    unfinished: int = 0

    @property
    def mean_latency_us(self) -> float:
        return self.latency.mean()

    @property
    def p999_latency_us(self) -> float:
        return self.latency.p999()


def replay_trace(sim: "Simulator", device: BlockDevice, trace: Trace,
                 scale_region: bool = True, run: bool = True,
                 on_complete: Optional[Callable[..., None]] = None,
                 ) -> ReplayResult:
    """Replay ``trace`` open-loop (requests are issued at their timestamps).

    Offsets are wrapped into the device's address space when ``scale_region``
    is set, so traces synthesized for a different capacity still apply.
    With ``run=False`` the replay is only scheduled (several replays can then
    share one simulation) and the caller advances the simulator itself; note
    that ``unfinished`` is only meaningful once the simulation has drained.
    ``on_complete(request, now_us)`` fires per completed request (the fleet
    layer's replication hook).
    """
    result = ReplayResult(trace_name=trace.name, device_name=device.name)
    outstanding = {"count": 0}

    def issue(event: TraceEvent):
        offset = event.offset
        if scale_region:
            offset = (offset % max(device.logical_block_size,
                                   device.capacity_bytes - event.size))
            offset -= offset % device.logical_block_size
        submit = device.read(offset, event.size) if event.kind is IOKind.READ \
            else device.write(offset, event.size)
        outstanding["count"] += 1
        request = yield submit
        outstanding["count"] -= 1
        if on_complete is not None:
            on_complete(request, sim.now)
        result.ios_completed += 1
        result.bytes_transferred += request.size
        result.latency.record(request.latency)
        result.timeline.record(sim.now, request.size)

    def driver():
        start = sim.now
        for event in trace.events:
            target = start + event.timestamp_us
            if target > sim.now:
                yield sim.timeout(target - sim.now)
            sim.process(issue(event))

    sim.process(driver())
    if run:
        sim.run()
        result.unfinished = outstanding["count"]
    return result
