"""Tests for the EBS building blocks: chunk map, QoS, replication, backend, network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebs.backend import ElasticBackend
from repro.ebs.chunk_map import ChunkMap
from repro.ebs.config import QosProfile, aws_io2_profile
from repro.ebs.network import DatacenterNetwork, NetworkProfile
from repro.ebs.qos import QosManager
from repro.ebs.replication import ReplicationPolicy
from repro.ebs.storage_node import StorageNode
from repro.ebs.config import NodeProfile
from repro.host.io import IOKind, KiB, MiB
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# ChunkMap
# ---------------------------------------------------------------------------

def make_map(capacity=64 * MiB, chunk=1 * MiB, nodes=8, replicas=3):
    return ChunkMap(capacity, chunk, nodes, replicas, seed=11)


def test_chunk_map_split_aligns_to_chunks():
    chunk_map = make_map()
    subs = chunk_map.split(512 * KiB, 2 * MiB)
    assert sum(sub.size for sub in subs) == 2 * MiB
    assert len(subs) == 3
    assert subs[0].offset_in_chunk == 512 * KiB
    assert subs[1].offset_in_chunk == 0


def test_chunk_map_single_chunk_request():
    chunk_map = make_map()
    subs = chunk_map.split(0, 256 * KiB)
    assert len(subs) == 1
    assert subs[0].chunk_index == 0


def test_chunk_map_placement_is_deterministic_and_distinct():
    chunk_map = make_map()
    for chunk in range(chunk_map.num_chunks):
        group = chunk_map.placement_group(chunk)
        assert group == chunk_map.placement_group(chunk)
        assert len(set(group)) == 3
        assert all(0 <= node < 8 for node in group)


def test_chunk_map_spreads_chunks_across_nodes():
    chunk_map = make_map(capacity=256 * MiB)
    usage = [0] * chunk_map.num_nodes
    for chunk in range(chunk_map.num_chunks):
        for node in chunk_map.placement_group(chunk):
            usage[node] += 1
    assert min(usage) > 0  # every node hosts something


def test_chunk_map_rejects_bad_requests():
    chunk_map = make_map()
    with pytest.raises(ValueError):
        chunk_map.split(0, 0)
    with pytest.raises(ValueError):
        chunk_map.split(63 * MiB, 2 * MiB)
    with pytest.raises(ValueError):
        chunk_map.chunk_of(64 * MiB)
    with pytest.raises(ValueError):
        ChunkMap(64 * MiB, 1 * MiB, num_nodes=2, replication_factor=3)


@settings(max_examples=40, deadline=None)
@given(offset_kib=st.integers(min_value=0, max_value=60 * 1024),
       size_kib=st.integers(min_value=4, max_value=4096))
def test_chunk_map_split_covers_request_exactly(offset_kib, size_kib):
    """Property: split() tiles the byte range exactly, in order, within chunks."""
    chunk_map = make_map()
    offset = offset_kib * KiB
    size = min(size_kib * KiB, chunk_map.capacity_bytes - offset)
    if size <= 0:
        return
    subs = chunk_map.split(offset, size)
    assert sum(sub.size for sub in subs) == size
    position = offset
    for sub in subs:
        assert sub.chunk_index == position // chunk_map.chunk_size
        assert sub.offset_in_chunk == position % chunk_map.chunk_size
        assert sub.offset_in_chunk + sub.size <= chunk_map.chunk_size
        position += sub.size


# ---------------------------------------------------------------------------
# QoS
# ---------------------------------------------------------------------------

def test_qos_iops_accounting_charges_per_256k():
    sim = Simulator()
    qos = QosManager(sim, QosProfile(max_throughput_bytes_per_us=1000,
                                     max_iops=10_000, iops_accounting_bytes=256 * KiB))
    assert qos.iops_tokens_for(4 * KiB) == 1
    assert qos.iops_tokens_for(256 * KiB) == 1
    assert qos.iops_tokens_for(257 * KiB) == 2
    assert qos.iops_tokens_for(1 * MiB) == 4


def test_qos_byte_bucket_limits_throughput():
    sim = Simulator()
    qos = QosManager(sim, QosProfile(max_throughput_bytes_per_us=100.0,
                                     max_iops=1e9, iops_accounting_bytes=1 * KiB,
                                     burst_bytes=1 * KiB))
    finish = []

    def consumer():
        for _ in range(10):
            yield from qos.admit(IOKind.WRITE, 1 * KiB)
        finish.append(sim.now)

    sim.process(consumer())
    sim.run()
    # 10 KiB at 100 B/us needs >= ~92 us beyond the 1 KiB burst.
    assert finish[0] >= (10 * KiB - 1 * KiB) / 100.0 - 1e-6
    assert qos.stats.requests_admitted == 10


def test_qos_flow_limit_throttles_only_writes():
    sim = Simulator()
    qos = QosManager(sim, QosProfile(max_throughput_bytes_per_us=1e6,
                                     max_iops=1e9, burst_bytes=1 * MiB))
    qos.engage_write_limit(10.0)
    assert qos.flow_limited
    times = {}

    def run(kind, label):
        start = sim.now
        yield from qos.admit(kind, 64 * KiB)
        times[label] = sim.now - start

    def driver():
        yield from run(IOKind.READ, "read")
        yield from run(IOKind.WRITE, "write1")
        yield from run(IOKind.WRITE, "write2")

    sim.process(driver())
    sim.run()
    assert times["read"] == pytest.approx(0.0)
    # The second write must wait for the 10 B/us limited bucket to refill.
    assert times["write2"] > 1000.0
    qos.release_write_limit()
    assert not qos.flow_limited


# ---------------------------------------------------------------------------
# Replication / network / node
# ---------------------------------------------------------------------------

def test_replication_policy_validation_and_describe():
    policy = ReplicationPolicy(3, 2)
    assert not policy.waits_for_all
    assert policy.acknowledgements_needed() == 2
    assert "3-way" in policy.describe()
    with pytest.raises(ValueError):
        ReplicationPolicy(2, 3)
    with pytest.raises(ValueError):
        ReplicationPolicy(0, 0)


def test_network_latency_scales_with_payload():
    sim = Simulator()
    network = DatacenterNetwork(sim, NetworkProfile(one_way_latency_us=50,
                                                    flow_bytes_per_us=100,
                                                    jitter_mean_us=0.0))
    small = network.one_way_delay(1 * KiB)
    large = network.one_way_delay(100 * KiB)
    assert large > small
    assert small == pytest.approx(50 + 1024 / 100)
    assert network.stats.messages == 0  # one_way_delay alone doesn't transfer

    def proc():
        yield from network.round_trip(4 * KiB, 256)

    sim.process(proc())
    sim.run()
    assert network.stats.messages == 2
    assert network.stats.bytes_carried == 4 * KiB + 256


def test_storage_node_bandwidth_bucket_limits_sustained_rate():
    sim = Simulator()
    node = StorageNode(sim, 0, NodeProfile(concurrency=4, bandwidth_bytes_per_us=100.0,
                                           write_processing_us=1.0, media_write_us=0.0,
                                           min_charge_bytes=0))
    finish = []

    def writer():
        for _ in range(8):
            yield from node.write(64 * KiB)
        finish.append(sim.now)

    sim.process(writer())
    sim.run()
    total_bytes = 8 * 64 * KiB
    assert finish[0] >= (total_bytes - node._bandwidth.capacity) / 100.0 - 1e-6
    assert node.stats.writes == 8
    assert node.stats.bytes_written == total_bytes


def test_storage_node_sequential_read_path_is_cheaper():
    sim = Simulator()
    profile = NodeProfile(read_processing_us=200, seq_read_processing_us=20,
                          media_read_us=80, media_read_bytes_per_us=1e9)
    node = StorageNode(sim, 0, profile)
    durations = {}

    def reads():
        start = sim.now
        yield from node.read(4 * KiB, sequential=False)
        durations["random"] = sim.now - start
        start = sim.now
        yield from node.read(4 * KiB, sequential=True)
        durations["sequential"] = sim.now - start

    sim.process(reads())
    sim.run()
    assert durations["sequential"] < durations["random"]


# ---------------------------------------------------------------------------
# Backend flow limiting
# ---------------------------------------------------------------------------

def test_backend_engages_flow_limit_at_threshold():
    sim = Simulator()
    profile = aws_io2_profile(64 * MiB)
    qos = QosManager(sim, profile.qos)
    backend = ElasticBackend(sim, profile, qos)
    threshold = backend.flow_limit_threshold_bytes
    assert threshold == int(2.55 * 64 * MiB)
    backend.record_write(threshold - 1)
    assert not qos.flow_limited
    backend.record_write(1)
    assert qos.flow_limited
    assert backend.stats.flow_limit_engaged_at_bytes == threshold
    description = backend.describe()
    assert description["flow_limited"] is True
    assert description["written_capacity_factor"] >= 2.55


def test_backend_without_threshold_never_limits():
    from repro.ebs.config import alibaba_pl3_profile
    sim = Simulator()
    profile = alibaba_pl3_profile(64 * MiB)
    qos = QosManager(sim, profile.qos)
    backend = ElasticBackend(sim, profile, qos)
    backend.record_write(100 * 64 * MiB)
    assert not qos.flow_limited
    backend.record_read(4 * KiB)
    assert backend.stats.bytes_read == 4 * KiB
