"""Timer-wheel edge cases (``Simulator(timer_wheel=True)``, the default).

The wheel buckets near-future deadlines in exact-deadline slots and moves
a whole slot onto the immediate deque when the clock reaches it; far-future
deadlines cascade straight to the heap.  These tests pin the corners of
that design: timeouts cancelled (interrupted) while they sit on the wheel,
the slot-vs-heap cascade at the horizon boundary, interleaving with
zero-delay FIFO events, and the schedule-introspection helpers.
"""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.engine import DEFAULT_WHEEL_HORIZON_US, EmptySchedule


def all_kernels(workload):
    """Run ``workload`` on every kernel variant, returning the three logs."""
    return [workload(Simulator(fast_path=fast, timer_wheel=wheel))
            for fast, wheel in ((False, False), (True, False), (True, True))]


# ---------------------------------------------------------------------------
# Cancellation while on the wheel
# ---------------------------------------------------------------------------

def test_timeout_cancelled_while_on_the_wheel_fires_harmlessly():
    """Interrupting a process detaches it from the timeout it waits on; the
    timeout stays scheduled in its wheel slot and must fire as a no-op
    without perturbing the ordering of its slot neighbours."""
    def workload(sim):
        log = []

        def sleeper(label):
            try:
                yield sim.timeout(10.0)
                log.append((sim.now, label, "woke"))
            except Interrupt as interrupt:
                log.append((sim.now, label, f"interrupted:{interrupt.cause}"))
                yield sim.timeout(10.0)
                log.append((sim.now, label, "woke-late"))

        victims = [sim.process(sleeper(label)) for label in "abc"]

        def canceller():
            yield sim.timeout(4.0)
            victims[1].interrupt("cancel")

        sim.process(canceller())
        sim.run()
        return log

    legacy, prewheel, wheel = all_kernels(workload)
    assert legacy == prewheel == wheel
    assert (4.0, "b", "interrupted:cancel") in wheel
    assert (14.0, "b", "woke-late") in wheel
    # The uncancelled slot neighbours still fire at the original deadline.
    assert [entry for entry in wheel if entry[0] == 10.0] == \
        [(10.0, "a", "woke"), (10.0, "c", "woke")]


def test_cancelled_slot_timeout_does_not_block_run_completion():
    """A wheel slot whose only entry lost its callbacks must still drain."""
    sim = Simulator()

    def sleeper():
        yield sim.timeout(5.0)

    process = sim.process(sleeper())
    sim.run(until=1.0)
    process.interrupt()
    with pytest.raises(Interrupt):  # uncaught interrupt surfaces from run()
        sim.run()
    # The orphaned timeout still sits in its slot; a follow-up run drains
    # it as a harmless no-op instead of wedging the schedule.
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0 and sim.now == 5.0


# ---------------------------------------------------------------------------
# Horizon boundary: wheel slots vs heap cascade
# ---------------------------------------------------------------------------

def test_delays_beyond_the_horizon_cascade_to_the_heap():
    sim = Simulator(wheel_horizon_us=100.0)
    sim.timeout(100.0)   # at the horizon: wheel slot
    sim.timeout(100.0)   # same deadline: same slot, no new slot time
    sim.timeout(100.1)   # beyond: straight to the heap
    assert len(sim._wheel_times) == 1
    assert len(sim._wheel_buckets[100.0]) == 2
    assert len(sim._queue) == 1
    assert sim.pending_events == 3
    assert sim.peek() == 100.0


def test_wheel_and_heap_entries_at_the_same_deadline_merge_by_sequence():
    """The same absolute deadline can be reached from the heap (scheduled
    when it was beyond the horizon) and from a wheel slot (scheduled
    closer in); processing must follow scheduling order exactly."""
    def workload(sim):
        log = []

        def waiter(label, start, delay):
            yield sim.timeout(start)
            yield sim.timeout(delay)
            log.append((sim.now, label))
            yield sim.timeout(0)
            log.append((sim.now, label + "-relay"))

        # Both reach t=200: "far" schedules 200 out at t=0 (heap), "near"
        # schedules 50 out at t=150 (wheel slot).
        sim.process(waiter("far", 0.0, 200.0))
        sim.process(waiter("near", 150.0, 50.0))
        sim.run()
        return log

    runs = [workload(Simulator(fast_path=fast, timer_wheel=wheel,
                               wheel_horizon_us=100.0))
            for fast, wheel in ((False, False), (True, False), (True, True))]
    assert runs[0] == runs[1] == runs[2]
    assert [label for _, label in runs[2]] == \
        ["far", "near", "far-relay", "near-relay"]


def test_default_horizon_is_generous_but_finite():
    sim = Simulator()
    sim.timeout(DEFAULT_WHEEL_HORIZON_US)
    sim.timeout(DEFAULT_WHEEL_HORIZON_US * 2)
    assert len(sim._wheel_times) == 1 and len(sim._queue) == 1


# ---------------------------------------------------------------------------
# Zero-delay FIFO interleaving
# ---------------------------------------------------------------------------

def test_slot_batch_preserves_fifo_against_zero_delay_events():
    """When a slot's deadline arrives, its entries must run before any
    zero-delay event scheduled *by* them, but after zero-delay events of a
    same-time heap dispatch that preceded the slot by sequence number."""
    def workload(sim):
        log = []

        def ticker(label, delay):
            yield sim.timeout(delay)
            log.append((sim.now, label))
            yield sim.timeout(0)
            log.append((sim.now, label + "-echo"))

        for index in range(4):
            sim.process(ticker(f"t{index}", 7.0))
        sim.run()
        return log

    legacy, prewheel, wheel = all_kernels(workload)
    assert legacy == prewheel == wheel
    # All four timeouts share one slot and fire in creation order, then the
    # zero-delay echoes follow in the same order.
    assert [label for _, label in wheel] == \
        ["t0", "t1", "t2", "t3", "t0-echo", "t1-echo", "t2-echo", "t3-echo"]


def test_sub_resolution_delay_at_large_clock_keeps_sequence_order():
    """A positive delay below the clock's float resolution rounds to
    ``now``; it must still fire before later-scheduled zero-delay events
    on every kernel (regression: the wheel parked it in a slot keyed at
    the current time, which the deque fast path overtook)."""
    def workload(sim):
        order = []

        def proc():
            tiny = sim.timeout(1e-9, value="tiny")   # 2**40 + 1e-9 == 2**40
            zero = sim.timeout(0.0, value="zero")
            for event in (tiny, zero):
                event.callbacks.append(
                    lambda ev: order.append(ev.value))
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        return order

    runs = [workload(Simulator(start_time=float(2 ** 40), fast_path=fast,
                               timer_wheel=wheel))
            for fast, wheel in ((False, False), (True, False), (True, True))]
    assert runs[0] == runs[1] == runs[2] == ["tiny", "zero"]


def test_run_until_time_stops_between_wheel_slots():
    sim = Simulator()
    hits = []

    def ticker():
        for _ in range(5):
            yield sim.timeout(3.0)
            hits.append(sim.now)

    sim.process(ticker())
    sim.run(until=7.5)
    assert hits == [3.0, 6.0]
    assert sim.now == 7.5
    assert sim.peek() == 9.0
    sim.run()
    assert hits == [3.0, 6.0, 9.0, 12.0, 15.0]


def test_run_until_event_sitting_on_the_wheel():
    sim = Simulator()
    marker = sim.timeout(5.0, value="ding")
    sim.timeout(5.0)
    sim.timeout(9.0)
    assert sim.run(until=marker) == "ding"
    assert sim.now == 5.0


def test_step_through_wheel_slots_matches_run():
    def workload(sim, step):
        log = []

        def ticker(label, delay):
            for i in range(3):
                yield sim.timeout(delay)
                log.append((sim.now, label, i))

        for label, delay in (("a", 2.0), ("b", 2.0), ("c", 3.0)):
            sim.process(ticker(label, delay))
        if step:
            while True:
                try:
                    sim.step()
                except EmptySchedule:
                    break
        else:
            sim.run()
        return log

    assert workload(Simulator(), step=True) == \
        workload(Simulator(), step=False)
