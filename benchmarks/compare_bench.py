#!/usr/bin/env python3
"""CI benchmark-regression gate: fresh ``BENCH_*.json`` vs committed baselines.

The benchmark suites (``test_bench_kernel.py``, ``test_bench_fleet.py``)
write their artifacts to the repository root on every run; the blessed
numbers live under ``benchmarks/baselines/``.  This script compares the
tracked metrics and **fails (exit 1) when any of them regresses more than
the tolerance** (default 10%), printing a delta table and appending a
markdown copy to ``--summary`` (pass ``$GITHUB_STEP_SUMMARY`` in CI).

Tracked metrics are deliberately host-independent:

* kernel fast/legacy *speedup ratios* -- both kernels run interleaved on
  the same machine, so the ratio survives slow or noisy CI hosts;
* fleet *coordination counts* (tasks per simulated second, batching task
  cut) -- fully deterministic.

Raw wall-clock numbers (events/sec, fleet ``speedup_vs_serial``) are
recorded in the artifacts for the trajectory but not gated: a single-core
runner cannot reproduce them.

Baselines are committed per interpreter version (``baselines/py3.11/``,
``baselines/py3.12/``, ...) because the speedup ratios drift across
CPython releases; the matching subdirectory is picked automatically, with
a fallback to the flat layout for repos that predate the split.

Updating a baseline is an explicit act: re-run the benchmark suite on a
quiet machine and copy the artifact into the matching
``benchmarks/baselines/py<major>.<minor>/`` directory in the same PR that
justifies the change.

Usage::

    python benchmarks/compare_bench.py [--tolerance 0.10]
        [--baseline-dir benchmarks/baselines] [--current-dir .]
        [--summary "$GITHUB_STEP_SUMMARY"]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default location of the blessed artifacts.
BASELINE_DIR = _REPO_ROOT / "benchmarks" / "baselines"


def resolve_baseline_dir(directory: Path,
                         python_version: Optional[str] = None) -> Path:
    """Descend into the ``py<major>.<minor>`` subdirectory matching the
    running interpreter when one exists; otherwise keep the flat layout."""
    if python_version is None:
        python_version = f"{sys.version_info[0]}.{sys.version_info[1]}"
    versioned = directory / f"py{python_version}"
    return versioned if versioned.is_dir() else directory

#: (artifact file, dotted metric path, direction).  ``higher`` metrics
#: regress by falling below baseline * (1 - tolerance), ``lower`` metrics
#: by rising above baseline * (1 + tolerance).
TRACKED: tuple[tuple[str, str, str], ...] = (
    ("BENCH_kernel.json", "events_per_sec.immediate.speedup", "higher"),
    ("BENCH_kernel.json", "events_per_sec.mixed.speedup", "higher"),
    ("BENCH_kernel.json", "events_per_sec.timer.speedup", "higher"),
    ("BENCH_kernel.json", "request_roundtrips_per_sec.speedup", "higher"),
    ("BENCH_fleet.json", "coordination.task_cut", "higher"),
    ("BENCH_fleet.json",
     "coordination.variants.batched.tasks_per_sim_second", "lower"),
    # Macro-vs-discrete validation harness: the approximation's error
    # envelope must not widen, and the (saturated) speedup must not
    # collapse back toward per-device cost.
    ("BENCH_macro.json", "validation.max_p50_err", "lower"),
    ("BENCH_macro.json", "validation.max_p95_err", "lower"),
    ("BENCH_macro.json", "validation.max_throughput_err", "lower"),
    ("BENCH_macro.json", "speedup.macro_vs_discrete", "higher"),
)

#: Absolute wall-clock floors: ``(artifact, metric, floor, skip flag)``.
#: Unlike the relative TRACKED gates these compare against a fixed target
#: rather than a committed baseline -- but wall-clock scaling only means
#: anything when the host has the cores, so a truthy value at the *skip
#: flag* path in the current artifact downgrades the row to informational
#: (the 1-2 core tier-1 runners) instead of failing it.  On a >= 4-core
#: runner the flag is false and the floor is a real gate.
FLOORS: tuple[tuple[str, str, float, str], ...] = (
    ("BENCH_fleet.json", "shards.4.by_transport.shm.scaling_efficiency",
     0.7, "shards.4.by_transport.shm.scaling_informational"),
    ("BENCH_fleet.json", "shards.2.by_transport.shm.speedup_vs_serial",
     1.0, "shards.2.by_transport.shm.scaling_informational"),
)


def lookup(payload: Any, dotted: str) -> Optional[float]:
    """Resolve ``a.b.c`` through nested dicts; None when any hop is missing."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def load_artifact(directory: Path, name: str) -> Optional[dict]:
    path = directory / name
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def compare(baseline_dir: Path, current_dir: Path,
            tolerance: float) -> tuple[list[dict[str, Any]], int]:
    """Build one row per tracked metric; return (rows, regression count).

    A missing or unreadable *current* artifact/metric counts as a
    regression (the gate must not pass vacuously); a missing *baseline*
    metric is reported as new and passes (commit the fresh artifact as its
    baseline in the same PR).
    """
    rows: list[dict[str, Any]] = []
    regressions = 0
    for artifact, metric, direction in TRACKED:
        base = lookup(load_artifact(baseline_dir, artifact) or {}, metric)
        current = lookup(load_artifact(current_dir, artifact) or {}, metric)
        if current is None:
            status = "MISSING"
            regressions += 1
            delta = None
        elif base is None:
            status = "new"
            delta = None
        elif base == 0:
            # A zero baseline can never gate anything (every relative
            # delta would be undefined); refuse it rather than pass
            # vacuously -- recommit a real baseline.
            status = "BAD-BASELINE"
            regressions += 1
            delta = None
        else:
            delta = (current - base) / base
            regressed = delta < -tolerance if direction == "higher" \
                else delta > tolerance
            if regressed:
                status = "REGRESSED"
                regressions += 1
            else:
                status = "ok"
        rows.append({
            "artifact": artifact,
            "metric": metric,
            "direction": direction,
            "baseline": base,
            "current": current,
            "delta": delta,
            "status": status,
        })
    for artifact, metric, floor, skip_flag in FLOORS:
        current_payload = load_artifact(current_dir, artifact) or {}
        current = lookup(current_payload, metric)
        informational = bool(lookup(current_payload, skip_flag))
        delta = None
        if current is None:
            status = "MISSING"
            regressions += 1
        elif informational:
            # The artifact itself says this host cannot measure scaling
            # (cpu_count < shards) -- record the number, gate nothing.
            status = "info-only"
        else:
            delta = (current - floor) / floor
            if current < floor:
                status = "BELOW-FLOOR"
                regressions += 1
            else:
                status = "ok"
        rows.append({
            "artifact": artifact,
            "metric": metric,
            "direction": "higher",
            "baseline": floor,
            "current": current,
            "delta": delta,
            "status": status,
        })
    return rows, regressions


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def _fmt_delta(row: dict[str, Any]) -> str:
    if row["delta"] is None:
        return "-"
    arrow = "" if row["direction"] == "higher" else " (lower is better)"
    return f"{row['delta']:+.1%}{arrow}"


def render_table(rows: list[dict[str, Any]], markdown: bool = False) -> str:
    headers = ["metric", "baseline", "current", "delta", "status"]
    body = [[f"{row['artifact']}:{row['metric']}", _fmt(row["baseline"]),
             _fmt(row["current"]), _fmt_delta(row), row["status"]]
            for row in rows]
    if markdown:
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "|".join("---" for _ in headers) + "|"]
        lines += ["| " + " | ".join(line) + " |" for line in body]
        return "\n".join(lines)
    widths = [max(len(str(line[col])) for line in [headers] + body)
              for col in range(len(headers))]
    lines = ["  ".join(str(cell).ljust(width)
                       for cell, width in zip(line, widths)).rstrip()
             for line in [headers] + body]
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a tracked BENCH_* metric regresses vs the "
                    "committed baselines.")
    parser.add_argument("--baseline-dir", type=Path, default=BASELINE_DIR)
    parser.add_argument("--current-dir", type=Path, default=_REPO_ROOT)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--python-version", default=None,
                        help="pick baselines for this interpreter version "
                             "(e.g. 3.12; default: the running interpreter)")
    parser.add_argument("--summary", default=None,
                        help="append a markdown delta table to this file "
                             "(use $GITHUB_STEP_SUMMARY in CI)")
    args = parser.parse_args(argv)

    baseline_dir = resolve_baseline_dir(args.baseline_dir,
                                        args.python_version)
    rows, regressions = compare(baseline_dir, args.current_dir,
                                args.tolerance)
    print(f"benchmark regression gate: tolerance {args.tolerance:.0%}, "
          f"baselines from {baseline_dir}")
    print(render_table(rows))
    verdict = "PASS" if regressions == 0 else \
        f"FAIL ({regressions} tracked metric(s) regressed or missing)"
    print(verdict)

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write("## Benchmark regression gate\n\n")
            handle.write(render_table(rows, markdown=True))
            handle.write(f"\n\n**{verdict}** (tolerance "
                         f"{args.tolerance:.0%})\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
