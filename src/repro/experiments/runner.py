"""Run every paper experiment and render a combined report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.common import DeviceKind, ExperimentScale
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.table1 import DeviceConfigRow, render_table1, run_table1


@dataclass
class EvaluationReport:
    """All reproduced tables and figures in one object."""

    scale: ExperimentScale
    table1: list[DeviceConfigRow] = field(default_factory=list)
    figure2: Optional[Figure2Result] = None
    figure3: Optional[Figure3Result] = None
    figure4: Optional[Figure4Result] = None
    figure5: Optional[Figure5Result] = None

    def render(self) -> str:
        sections = ["# Reproduced evaluation artifacts", ""]
        sections.append("## Table I -- device configurations")
        sections.append(render_table1(self.table1))
        if self.figure2 is not None:
            sections.append("\n## Figure 2 -- latency and latency gap")
            for device in (DeviceKind.ESSD1, DeviceKind.ESSD2):
                sections.append(self.figure2.render(device, "mean"))
                sections.append(self.figure2.render(device, "p999"))
        if self.figure3 is not None:
            sections.append("\n## Figure 3 -- sustained random writes (GC)")
            sections.append(self.figure3.render())
        if self.figure4 is not None:
            sections.append("\n## Figure 4 -- random vs sequential writes")
            for device in (DeviceKind.ESSD1, DeviceKind.ESSD2, DeviceKind.SSD):
                sections.append(self.figure4.render(device))
        if self.figure5 is not None:
            sections.append("\n## Figure 5 -- mixed read/write throughput")
            sections.append(self.figure5.render())
        return "\n".join(sections)


def run_all(scale: Optional[ExperimentScale] = None,
            include: tuple[str, ...] = ("table1", "figure2", "figure3",
                                        "figure4", "figure5"),
            quick: bool = False) -> EvaluationReport:
    """Run the selected experiments.

    ``quick=True`` shrinks grids and write volumes so the whole sweep stays
    in the tens of seconds (used by tests and the quickstart example).
    """
    scale = scale or (ExperimentScale.small() if quick else ExperimentScale.default())
    report = EvaluationReport(scale=scale)
    if "table1" in include:
        report.table1 = run_table1(scale)
    if "figure2" in include:
        report.figure2 = run_figure2(
            scale,
            ios_per_cell=80 if quick else 250,
            io_sizes=(4096, 262144) if quick else (4096, 65536, 262144),
            queue_depths=(1, 8) if quick else (1, 4, 16),
        )
    if "figure3" in include:
        report.figure3 = run_figure3(scale, capacity_factor=1.2 if quick else 3.0)
    if "figure4" in include:
        report.figure4 = run_figure4(
            scale,
            ios_per_cell=150 if quick else 800,
            io_sizes=(4096, 65536) if quick else (4096, 16384, 65536, 262144),
            queue_depths=(1, 32) if quick else (1, 8, 32),
        )
    if "figure5" in include:
        report.figure5 = run_figure5(
            scale,
            ios_per_point=200 if quick else 1200,
            write_ratios=(0, 50, 100) if quick else (0, 25, 50, 75, 100),
        )
    return report
