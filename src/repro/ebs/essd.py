"""The elastic SSD (ESSD) block device.

The request path mirrors a production elastic block store:

1. the virtual block service in the compute node (client overhead),
2. QoS admission against the volume's throughput and IOPS budgets,
3. chunk-aligned splitting and dispatch to the storage cluster, where writes
   fan out to the chunk's replicas and reads go to one replica,
4. completion once every chunk-level sub-request has finished.

The backend accounts cumulative writes and may engage provider-side flow
limiting (Observation 2).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.ebs.backend import ElasticBackend
from repro.ebs.cluster import StorageCluster
from repro.ebs.config import EssdProfile, aws_io2_profile
from repro.ebs.qos import QosManager
from repro.host.device import BlockDevice
from repro.host.io import IOKind, IORequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


class EssdDevice(BlockDevice):
    """A simulated cloud elastic SSD volume."""

    def __init__(self, sim: "Simulator", profile: Optional[EssdProfile] = None,
                 name: Optional[str] = None):
        profile = profile or aws_io2_profile()
        super().__init__(sim, profile.capacity_bytes, profile.logical_block_size,
                         name or profile.name)
        self.profile = profile
        self.qos = QosManager(sim, profile.qos)
        self.cluster = StorageCluster(sim, profile)
        self.backend = ElasticBackend(sim, profile, self.qos)
        self._rng = random.Random(profile.seed)
        self._last_read_end: Optional[int] = None
        self._sequential_reads = 0
        # Per-I/O constants, precomputed once for the flattened ``_pipeline``.
        # ``_hiccup_lambda`` is the exact value ``_client_overhead`` computes
        # per draw, so hoisting it changes nothing numerically.
        self._client_base_us = profile.client_overhead_us
        self._hiccup_p = profile.hiccup_probability
        self._hiccup_lambda = (1.0 / profile.hiccup_mean_us
                               if profile.hiccup_mean_us > 0 else 0.0)
        self._per_sub_us = profile.per_subrequest_overhead_us

    # -- convenience ---------------------------------------------------------------
    @property
    def flow_limited(self) -> bool:
        """Whether the provider has engaged write flow limiting."""
        return self.qos.flow_limited

    def preload(self, offset: int = 0, size: Optional[int] = None) -> None:
        """Interface parity with :class:`repro.ssd.SsdDevice`.

        An ESSD needs no preconditioning for reads (the backend always has
        the data somewhere), so this is a no-op.
        """

    # -- request service -----------------------------------------------------------
    def _serve(self, request: IORequest):
        tracer = self.tracer
        if tracer is not None:
            tracer.enter(request, "service")  # virtual-block-service overhead
        yield self.sim.timeout(self._client_overhead(request))
        if request.kind is IOKind.FLUSH:
            # Replicated writes are durable on completion; flush is a no-op
            # beyond its client-side cost.
            return request
        if request.kind is IOKind.TRIM:
            return request
        if tracer is not None:
            tracer.enter(request, "queue")  # QoS admission (volume budgets)
        yield from self.qos.admit(request.kind, request.size)
        if tracer is not None:
            tracer.enter(request, "network")  # cluster fan-out + media
        sequential = self._note_access(request)
        subrequests = self.cluster.split(request.offset, request.size)
        if len(subrequests) == 1:
            yield from self._dispatch(subrequests[0], request.kind, sequential)
        else:
            pending = [self.sim.process(self._dispatch(sub, request.kind, sequential))
                       for sub in subrequests]
            yield self.sim.all_of(pending)
        if request.kind is IOKind.WRITE:
            self.backend.record_write(request.size)
        else:
            self.backend.record_read(request.size)
        return request

    def _pipeline(self, request: IORequest):
        """Flattened fast-path request pipeline: one generator frame that
        inlines :meth:`_serve`, the client-overhead model, and the hot
        single-chunk dispatch (:meth:`_serve` stays the semantic reference
        run by ``fast_path=False`` submissions).  Event order and RNG draw
        order match :meth:`_serve` exactly.
        """
        sim = self.sim
        tracer = self.tracer
        if tracer is not None:
            tracer.enter(request, "service")
        # _client_overhead, inlined: identical arithmetic and draw order.
        overhead = self._client_base_us
        if self._hiccup_p > 0 and self._rng.random() < self._hiccup_p:
            overhead += self._rng.expovariate(self._hiccup_lambda)
        yield sim.timeout(overhead)
        kind = request.kind
        if kind is IOKind.FLUSH or kind is IOKind.TRIM:
            self._finish(request)
            return request
        if tracer is not None:
            tracer.enter(request, "queue")
        size = request.size
        yield from self.qos.admit(kind, size)
        if tracer is not None:
            tracer.enter(request, "network")
        sequential = self._note_access(request)
        subrequests = self.cluster.split(request.offset, size)
        if len(subrequests) == 1:
            # _dispatch, inlined for the hot single-chunk case.
            yield sim.timeout(self._per_sub_us)
            if kind is IOKind.WRITE:
                yield from self.cluster.write_subrequest(subrequests[0])
            else:
                yield from self.cluster.read_subrequest(subrequests[0], sequential)
        else:
            pending = [sim.process(self._dispatch(sub, kind, sequential))
                       for sub in subrequests]
            yield sim.all_of(pending)
        if kind is IOKind.WRITE:
            self.backend.record_write(size)
        else:
            self.backend.record_read(size)
        self._finish(request)
        return request

    def _dispatch(self, sub, kind: IOKind, sequential: bool):
        yield self.sim.timeout(self.profile.per_subrequest_overhead_us)
        if kind is IOKind.WRITE:
            yield from self.cluster.write_subrequest(sub)
        else:
            yield from self.cluster.read_subrequest(sub, sequential)

    # -- helpers ---------------------------------------------------------------------
    def _client_overhead(self, request: IORequest) -> float:
        overhead = self.profile.client_overhead_us
        if (self.profile.hiccup_probability > 0
                and self._rng.random() < self.profile.hiccup_probability):
            overhead += self._rng.expovariate(1.0 / self.profile.hiccup_mean_us)
        return overhead

    def _note_access(self, request: IORequest) -> bool:
        """Track read sequentiality (enables the node-side readahead path)."""
        if request.kind is not IOKind.READ:
            self._last_read_end = None
            self._sequential_reads = 0
            return False
        sequential = self._last_read_end is not None and \
            request.offset == self._last_read_end
        if sequential:
            self._sequential_reads += 1
        else:
            self._sequential_reads = 0
        self._last_read_end = request.end_offset
        return sequential and self._sequential_reads >= 2

    # -- reporting ---------------------------------------------------------------------
    def describe(self) -> dict:
        """Summary of configuration and runtime statistics (for reports)."""
        return {
            "name": self.name,
            "kind": "essd",
            "provider": self.profile.provider,
            "volume_type": self.profile.volume_type,
            "capacity_bytes": self.capacity_bytes,
            "max_throughput_gbps": round(self.profile.max_throughput_gbps, 2),
            "max_iops": self.profile.qos.max_iops,
            "chunk_size": self.profile.chunk_size,
            "replication": self.cluster.replication.describe(),
            "storage_nodes": self.profile.storage_nodes,
            "host_reads": self.stats.reads_completed,
            "host_writes": self.stats.writes_completed,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
            "flow_limited": self.flow_limited,
            "written_capacity_factor": round(self.backend.written_capacity_factor, 3),
        }
