"""The :class:`Device` protocol every simulated storage device satisfies.

The protocol is the single submission contract between the three layers of
the stack: workloads (:mod:`repro.workload`) drive any object that
implements it, the sweep subsystem (:mod:`repro.experiments`) builds devices
only through the :mod:`repro.devices.registry`, and the kernel
(:mod:`repro.sim`) neither knows nor cares what a device is.

A device must provide:

* ``submit(request) -> Event`` -- accept an :class:`~repro.host.io.IORequest`
  and return an event that succeeds with the completed request;
* ``describe() -> dict`` -- a JSON-serialisable summary of configuration and
  runtime statistics;
* ``stats`` -- cumulative :class:`~repro.host.device.DeviceStats` counters;
* ``preload()`` -- precondition the address space for read workloads (no-op
  where meaningless);
* ``set_tracer(tracer)`` -- attach a :class:`repro.sim.trace.Tracer` (pass
  ``None`` to detach).

:class:`repro.host.BlockDevice` implements the whole contract, so concrete
models (the local SSD, the elastic SSD, the loopback device) only write
``_serve``.  Third-party devices need not inherit from it -- anything that
quacks per this protocol works end to end, including through
``python -m repro.experiments run``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.device import DeviceStats
    from repro.host.io import IORequest
    from repro.sim import Event
    from repro.sim.trace import Tracer


@runtime_checkable
class Device(Protocol):
    """Structural type of a simulated storage device (see module docstring)."""

    name: str
    capacity_bytes: int
    logical_block_size: int
    stats: "DeviceStats"

    def submit(self, request: "IORequest") -> "Event":
        """Submit a request; the returned event succeeds with the completed
        request."""
        ...  # pragma: no cover - protocol stub

    def describe(self) -> dict:
        """JSON-serialisable configuration + runtime statistics summary."""
        ...  # pragma: no cover - protocol stub

    def preload(self, offset: int = 0, size: Optional[int] = None) -> None:
        """Precondition ``[offset, offset+size)`` for read workloads."""
        ...  # pragma: no cover - protocol stub

    def set_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach (or detach, with ``None``) a request-path tracer."""
        ...  # pragma: no cover - protocol stub
