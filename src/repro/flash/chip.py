"""Die-level flash command execution.

:class:`FlashArray` owns one :class:`~repro.sim.resources.Resource` per die
and one per channel.  Dies execute at most one array operation at a time;
data transfers additionally reserve the die's channel bus, which is shared by
all dies on that channel.  The FTL (:mod:`repro.ssd.ftl`) calls the
``read_page`` / ``program_page`` / ``erase_block`` generator helpers with
``yield from``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


class FlashOp(enum.Enum):
    """Kinds of flash array operations (for statistics)."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass
class FlashArrayStats:
    """Operation counters and busy-time accounting for a flash array."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    bytes_read: int = 0
    bytes_programmed: int = 0
    die_busy_us: dict = field(default_factory=dict)

    def add_busy(self, die: int, duration: float) -> None:
        self.die_busy_us[die] = self.die_busy_us.get(die, 0.0) + duration


class FlashArray:
    """A bank of flash dies with per-die and per-channel contention."""

    def __init__(self, sim: "Simulator", geometry: FlashGeometry, timing: FlashTiming):
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self._dies = [Resource(sim, capacity=1) for _ in range(geometry.total_dies)]
        self._channels = [Resource(sim, capacity=1) for _ in range(geometry.channels)]
        self.stats = FlashArrayStats()

    # -- helpers ------------------------------------------------------------
    def _die_resource(self, die: int) -> Resource:
        if not 0 <= die < self.geometry.total_dies:
            raise ValueError(f"die {die} out of range")
        return self._dies[die]

    def _channel_resource(self, die: int) -> Resource:
        return self._channels[self.geometry.channel_of_die(die)]

    def die_queue_length(self, die: int) -> int:
        """Commands waiting for the given die (used by the GC scheduler)."""
        return self._die_resource(die).queue_length + self._die_resource(die).users

    # -- operations ---------------------------------------------------------
    def read_page(self, die: int, num_bytes: int):
        """Generator: read ``num_bytes`` from one page of ``die``.

        The array read (tR) occupies only the die; the data transfer occupies
        both the die and its channel.
        """
        timing = self.timing
        die_res = self._die_resource(die)
        chan_res = self._channel_resource(die)
        start = self.sim.now
        yield die_res.request()
        try:
            yield self.sim.timeout(timing.command_overhead_us + timing.read_us)
            yield chan_res.request()
            try:
                yield self.sim.timeout(timing.transfer_us(num_bytes))
            finally:
                chan_res.release()
        finally:
            die_res.release()
        self.stats.reads += 1
        self.stats.bytes_read += num_bytes
        self.stats.add_busy(die, self.sim.now - start)

    def program_page(self, die: int, num_bytes: int, planes: int = 1):
        """Generator: program ``num_bytes`` into ``die``.

        ``planes`` > 1 models a multi-plane program: the transfer covers all
        planes' data but a single tPROG is paid, which is how the write path
        reaches the device's sequential-write bandwidth.
        """
        if planes < 1 or planes > self.geometry.planes_per_die:
            raise ValueError(f"planes must be in [1, {self.geometry.planes_per_die}]")
        timing = self.timing
        die_res = self._die_resource(die)
        chan_res = self._channel_resource(die)
        start = self.sim.now
        yield die_res.request()
        try:
            yield chan_res.request()
            try:
                yield self.sim.timeout(
                    timing.command_overhead_us + timing.transfer_us(num_bytes))
            finally:
                chan_res.release()
            yield self.sim.timeout(timing.program_us)
        finally:
            die_res.release()
        self.stats.programs += 1
        self.stats.bytes_programmed += num_bytes
        self.stats.add_busy(die, self.sim.now - start)

    def erase_block(self, die: int):
        """Generator: erase one block of ``die``."""
        die_res = self._die_resource(die)
        start = self.sim.now
        yield die_res.request()
        try:
            yield self.sim.timeout(self.timing.command_overhead_us + self.timing.erase_us)
        finally:
            die_res.release()
        self.stats.erases += 1
        self.stats.add_busy(die, self.sim.now - start)

    # -- theoretical limits (used by tests and calibration) -----------------
    def peak_read_bandwidth(self) -> float:
        """Upper bound on read bandwidth in bytes/us (channel-limited)."""
        per_channel = self.timing.channel_bytes_per_us
        return per_channel * self.geometry.channels

    def peak_program_bandwidth(self) -> float:
        """Upper bound on program bandwidth in bytes/us (die-limited)."""
        page = self.geometry.page_size * self.geometry.planes_per_die
        per_die = page / self.timing.program_latency_us(page)
        return per_die * self.geometry.total_dies
