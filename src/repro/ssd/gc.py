"""Greedy garbage collection.

One background worker per die watches that die's free-block count.  When it
drops below the low watermark the worker picks the FULL block with the fewest
valid slots on that die, relocates the still-valid data through the GC write
frontier, erases the block, and returns it to the free list.  Workers on
different dies run in parallel (as real controllers do), but every worker
competes with host I/O for its die and channel -- which is exactly what
produces the local SSD's throughput collapse in Figure 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.ssd.allocator import WriteStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.ftl import Ftl


@dataclass
class GcStats:
    """Counters describing garbage-collection activity."""

    invocations: int = 0
    blocks_erased: int = 0
    slots_relocated: int = 0
    pages_read: int = 0
    #: Simulation time (us) spent inside GC passes, summed over all per-die
    #: workers (can exceed wall-clock simulation time).
    busy_time_us: float = 0.0
    #: (time_us, total_free_blocks) samples taken at each invocation.
    pressure_samples: list = field(default_factory=list)


class GarbageCollector:
    """Per-die greedy garbage collectors for one :class:`~repro.ssd.ftl.Ftl`."""

    def __init__(self, ftl: "Ftl"):
        self.ftl = ftl
        self.sim = ftl.sim
        self.config = ftl.config
        self.stats = GcStats()
        self._dies = ftl.allocator.total_dies
        self._wakeups: list = [None] * self._dies
        self._active = [False] * self._dies
        for die in range(self._dies):
            self.sim.process(self._run(die))

    # -- control -----------------------------------------------------------------
    def kick(self, die: Optional[int] = None) -> None:
        """Wake the collector for ``die`` (or all dies if ``None``)."""
        dies = range(self._dies) if die is None else (die,)
        for index in dies:
            wakeup = self._wakeups[index]
            if wakeup is not None and not wakeup.triggered:
                wakeup.succeed(None)

    @property
    def is_active(self) -> bool:
        """Whether any per-die worker is currently relocating or erasing."""
        return any(self._active)

    @property
    def active_workers(self) -> int:
        """Number of dies currently performing garbage collection."""
        return sum(self._active)

    def pressure(self) -> int:
        """Smallest per-die free-block count (lower = more pressure)."""
        return self.ftl.allocator.min_free_blocks()

    # -- per-die worker -----------------------------------------------------------
    def _run(self, die: int):
        allocator = self.ftl.allocator
        low = self.ftl.gc_low_watermark
        high = self.ftl.gc_high_watermark
        while True:
            if allocator.free_blocks(die) >= low:
                self._wakeups[die] = self.sim.event()
                yield self._wakeups[die]
                continue
            progressed = False
            while allocator.free_blocks(die) < high:
                victim = self._select_victim(die)
                if victim is None:
                    break
                started = self.sim.now
                self._active[die] = True
                try:
                    yield from self._collect(die, victim)
                finally:
                    self._active[die] = False
                self.stats.busy_time_us += self.sim.now - started
                progressed = True
            if not progressed:
                # Nothing reclaimable on this die right now (all candidates
                # fully valid); wait until the host invalidates something.
                self._wakeups[die] = self.sim.event()
                yield self._wakeups[die]

    # -- victim selection -----------------------------------------------------------
    def _select_victim(self, die: int) -> Optional[int]:
        """Greedy: the FULL block on ``die`` with the fewest valid slots.

        Returns ``None`` when no block would yield net free space (i.e. every
        candidate is completely valid), which happens only when the logical
        space is genuinely full of live data.
        """
        allocator = self.ftl.allocator
        mapping = self.ftl.mapping
        best_block = None
        best_valid = allocator.slots_per_block  # exclude fully-valid blocks
        for block_id in allocator.gc_candidates(die):
            valid = mapping.valid_slots_in_block(block_id)
            if valid < best_valid:
                best_valid = valid
                best_block = block_id
        return best_block

    # -- collection -----------------------------------------------------------------
    def _collect(self, die: int, block_id: int):
        ftl = self.ftl
        allocator = ftl.allocator
        mapping = ftl.mapping
        self.stats.invocations += 1
        self.stats.pressure_samples.append((self.sim.now, allocator.total_free_blocks()))

        valid_lbns = mapping.valid_lbns_in_block(block_id)
        if valid_lbns:
            # Read every flash page that still holds valid data.
            base_slot = allocator.first_slot_of_block(block_id)
            pages = sorted({(mapping.lookup(lbn) - base_slot) // ftl.slots_per_page
                            for lbn in valid_lbns
                            if allocator.block_of_slot(mapping.lookup(lbn)) == block_id})
            for _page in pages:
                yield from ftl.flash.read_page(die, ftl.config.geometry.page_size)
                self.stats.pages_read += 1
            # Relocate through the GC frontier.  Blocks overwritten by the
            # host in the meantime are skipped by the validity filter.
            slot_lo = base_slot
            slot_hi = base_slot + allocator.slots_per_block

            def still_in_victim(lbn: int) -> bool:
                slot = mapping.lookup(lbn)
                return slot_lo <= slot < slot_hi

            relocated = yield from ftl.write_slots(
                valid_lbns, WriteStream.GC, validate=still_in_victim, preferred_die=die)
            self.stats.slots_relocated += relocated

        if mapping.valid_slots_in_block(block_id) != 0:
            # The host raced a write into our relocation window; retry later.
            return
        yield from ftl.flash.erase_block(die)
        mapping.clear_block(block_id)
        allocator.release_block(block_id)
        self.stats.blocks_erased += 1
        ftl.notify_space_available()
