"""A bounded submission queue in front of a block device.

The queue caps the number of requests simultaneously outstanding at the
device (the *queue depth*), which is how FIO's ``iodepth`` behaves with an
asynchronous I/O engine.  The workload runner in :mod:`repro.workload` uses
one :class:`SubmissionQueue` per job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.host.io import IORequest
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.protocol import Device
    from repro.sim import Simulator


class SubmissionQueue:
    """Limits outstanding requests to ``depth`` and tracks queue statistics."""

    def __init__(self, sim: "Simulator", device: "Device", depth: int):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.sim = sim
        self.device = device
        self.depth = depth
        self._slots = Resource(sim, capacity=depth)
        self.submitted = 0
        self.completed = 0

    @property
    def outstanding(self) -> int:
        """Requests currently being serviced by the device."""
        return self._slots.users

    @property
    def waiting(self) -> int:
        """Requests waiting for a free queue slot."""
        return self._slots.queue_length

    def submit(self, request: IORequest):
        """Simulation process: wait for a slot, run the request, release.

        Usage from another process::

            completed = yield sim.process(queue.submit(request))
        """
        yield self._slots.request()
        self.submitted += 1
        try:
            completed = yield self.device.submit(request)
        finally:
            self._slots.release()
        self.completed += 1
        return completed

    def drain(self):
        """Simulation process: wait until no request is outstanding or queued."""
        while self._slots.users > 0 or self._slots.queue_length > 0:
            yield self.sim.timeout(1.0)
