#!/usr/bin/env python3
"""Implication 4 in practice: smooth a bursty workload under a throughput budget.

A bursty tenant (short 8x-the-mean bursts) is replayed against an ESSD twice:
once as-is, and once shaped by the I/O smoother to the budget it actually
needs.  The example prints the latency the bursts cost, the budget the
smoother recommends, and the monthly saving at a linear $/GBps price.

Usage::

    python examples/burst_smoothing.py
"""

from repro.ebs import EssdDevice, aws_io2_profile
from repro.host.io import KiB, MiB
from repro.implications import IoSmoother
from repro.sim import Simulator
from repro.workload import replay_trace, synthesize_bursty_trace


def replay(profile, trace, label):
    sim = Simulator()
    device = EssdDevice(sim, profile)
    result = replay_trace(sim, device, trace)
    print(f"  {label:18s} mean latency {result.mean_latency_us:9.1f} us   "
          f"P99.9 {result.p999_latency_us:10.1f} us   "
          f"({result.ios_completed} I/Os)")
    return result


def main() -> None:
    profile = aws_io2_profile(512 * MiB)

    print("Synthesizing a bursty write trace (mean 0.4 GB/s, 8x bursts)...")
    trace = synthesize_bursty_trace(
        duration_us=600_000,
        mean_load_gbps=0.4,
        burst_factor=8.0,
        burst_fraction=0.1,
        io_size=64 * KiB,
        region_bytes=512 * MiB,
        seed=11,
    )
    print(f"  events: {len(trace)}, mean load {trace.mean_load_gbps():.2f} GB/s, "
          f"peak load {trace.peak_load_gbps():.2f} GB/s")

    smoother = IoSmoother(delay_tolerance_us=50_000.0)
    plan = smoother.plan(trace)
    print("\nSmoothing plan (Implication 4):")
    print(f"  budget needed for raw bursts : {plan.unshaped_budget_gbps:.2f} GB/s")
    print(f"  budget after smoothing       : {plan.shaped_budget_gbps:.2f} GB/s")
    print(f"  worst added delay            : {plan.max_shaping_delay_us / 1000:.1f} ms "
          f"(tolerance {plan.delay_tolerance_us / 1000:.0f} ms)")
    print(f"  budget saving                : {plan.budget_saving:.0%}")
    print(f"  at $60 per GB/s-month        : ${plan.monthly_cost_saving(60.0):.0f}/month saved")

    print("\nReplaying against the ESSD (provider budget enforced by its QoS):")
    replay(profile, trace, "raw bursts")
    shaped = smoother.shape(trace, plan.shaped_budget_gbps)
    replay(profile, shaped, "smoothed arrivals")


if __name__ == "__main__":
    main()
