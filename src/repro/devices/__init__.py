"""Unified device layer: the submission protocol and the factory registry.

The stack is layered kernel -> devices -> workloads -> sweeps; this package
is the middle layer's public face:

* :class:`Device` -- the structural protocol every simulated device
  satisfies (``submit``/``describe``/``stats``/``preload``/``set_tracer``).
* :func:`create_device` / :func:`register_device` / :func:`device_names` --
  the factory registry workloads and experiments build devices through.
* :class:`LoopbackDevice` -- the minimal reference implementation.

See :mod:`repro.devices.protocol` for the contract and
:mod:`repro.devices.registry` for how to add a device family.
"""

from repro.devices import catalog  # noqa: F401  (registers the built-ins)
from repro.devices.loopback import LoopbackDevice
from repro.devices.protocol import Device
from repro.devices.registry import (
    create_device,
    device_names,
    profile_fields,
    register_device,
    register_profile_fields,
)

__all__ = [
    "Device",
    "LoopbackDevice",
    "create_device",
    "device_names",
    "profile_fields",
    "register_device",
    "register_profile_fields",
]
