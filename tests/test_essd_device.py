"""End-to-end tests of the ESSD device model (the contract's mechanisms)."""


import pytest

from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.host.io import KiB, MiB
from repro.sim import Simulator
from repro.workload.fio import FioJob, run_job


def make_essd(profile_fn=aws_io2_profile, capacity=256 * MiB):
    sim = Simulator()
    device = EssdDevice(sim, profile_fn(capacity))
    return sim, device


def run_fio(sim, device, **kwargs):
    job = FioJob(**kwargs)
    return run_job(sim, device, job)


def test_profile_validation():
    profile = aws_io2_profile(256 * MiB)
    assert profile.num_chunks == 256 * MiB // profile.chunk_size
    assert profile.max_throughput_gbps == pytest.approx(3.0)
    with pytest.raises(ValueError):
        aws_io2_profile(0)


def test_small_write_latency_dominated_by_network_and_software():
    sim, device = make_essd()
    result = run_fio(sim, device, name="w", pattern="randwrite", io_size=4 * KiB,
                     queue_depth=1, io_count=200)
    mean = result.latency.mean()
    assert 200 < mean < 450  # paper: ~333 us for ESSD-1


def test_essd2_has_lower_base_latency_than_essd1():
    sim1, dev1 = make_essd(aws_io2_profile)
    sim2, dev2 = make_essd(alibaba_pl3_profile)
    r1 = run_fio(sim1, dev1, name="a", pattern="randwrite", io_size=4 * KiB,
                 queue_depth=1, io_count=150)
    r2 = run_fio(sim2, dev2, name="b", pattern="randwrite", io_size=4 * KiB,
                 queue_depth=1, io_count=150)
    assert r2.latency.mean() < r1.latency.mean()


def test_latency_per_byte_improves_with_io_size():
    sim, device = make_essd()
    small = run_fio(sim, device, name="s", pattern="randwrite", io_size=4 * KiB,
                    queue_depth=1, io_count=100)
    sim2, device2 = make_essd()
    large = run_fio(sim2, device2, name="l", pattern="randwrite", io_size=256 * KiB,
                    queue_depth=1, io_count=100)
    per_byte_small = small.latency.mean() / (4 * KiB)
    per_byte_large = large.latency.mean() / (256 * KiB)
    assert per_byte_large < per_byte_small / 5


def test_throughput_capped_at_budget_for_reads_and_writes():
    for pattern in ("randread", "randwrite"):
        sim, device = make_essd(aws_io2_profile)
        result = run_fio(sim, device, name="cap", pattern=pattern, io_size=256 * KiB,
                         queue_depth=32, io_count=1200, ramp_ios=64)
        assert result.throughput_gbps <= device.profile.max_throughput_gbps * 1.08


def test_random_writes_faster_than_sequential_writes_on_essd2():
    sim, device = make_essd(alibaba_pl3_profile)
    rand = run_fio(sim, device, name="r", pattern="randwrite", io_size=64 * KiB,
                   queue_depth=32, io_count=800, ramp_ios=32)
    sim2, device2 = make_essd(alibaba_pl3_profile)
    seq = run_fio(sim2, device2, name="s", pattern="write", io_size=64 * KiB,
                  queue_depth=32, io_count=800, ramp_ios=32)
    gain = rand.throughput_gbps / seq.throughput_gbps
    assert gain > 1.5  # paper reports up to 2.79x for ESSD-2


def test_random_write_gain_modest_on_essd1_small_ios():
    sim, device = make_essd(aws_io2_profile)
    rand = run_fio(sim, device, name="r", pattern="randwrite", io_size=4 * KiB,
                   queue_depth=32, io_count=800, ramp_ios=32)
    sim2, device2 = make_essd(aws_io2_profile)
    seq = run_fio(sim2, device2, name="s", pattern="write", io_size=4 * KiB,
                  queue_depth=32, io_count=800, ramp_ios=32)
    gain = rand.throughput_gbps / seq.throughput_gbps
    assert 1.1 < gain < 2.2  # paper reports up to 1.52x for ESSD-1


def test_flow_limiting_engages_after_threshold_writes():
    sim, device = make_essd(aws_io2_profile, capacity=96 * MiB)
    assert not device.flow_limited
    job = FioJob(name="flood", pattern="randwrite", io_size=256 * KiB, queue_depth=16,
                 total_bytes=int(2.7 * device.capacity_bytes))
    result = run_job(sim, device, job)
    assert device.flow_limited
    samples = result.timeline.binned(100_000.0)
    # Throughput after the flow limit must be far below the early throughput.
    assert samples[-1].gigabytes_per_second < 0.6 * max(
        s.gigabytes_per_second for s in samples)


def test_essd2_sustains_throughput_with_no_flow_limit():
    sim, device = make_essd(alibaba_pl3_profile, capacity=96 * MiB)
    job = FioJob(name="flood", pattern="randwrite", io_size=256 * KiB, queue_depth=16,
                 total_bytes=int(3 * device.capacity_bytes))
    result = run_job(sim, device, job)
    assert not device.flow_limited
    samples = result.timeline.binned(100_000.0)
    peak = max(s.gigabytes_per_second for s in samples)
    assert samples[-1].gigabytes_per_second > 0.7 * peak


def test_reads_and_flushes_do_not_count_towards_flow_limit():
    sim, device = make_essd(aws_io2_profile, capacity=96 * MiB)
    result = run_fio(sim, device, name="reads", pattern="randread", io_size=256 * KiB,
                     queue_depth=8, io_count=500)
    assert result.ios_completed == 500
    assert device.backend.stats.bytes_written == 0
    assert not device.flow_limited


def test_describe_and_stats():
    sim, device = make_essd()

    def proc():
        yield device.write(0, 4 * KiB)
        yield device.read(0, 4 * KiB)
        yield device.flush()

    sim.process(proc())
    sim.run()
    info = device.describe()
    assert info["kind"] == "essd"
    assert info["host_writes"] == 1
    assert info["host_reads"] == 1
    assert info["replication"].startswith("3-way")
    assert device.stats.flushes_completed == 1


def test_requests_split_across_chunks_complete_atomically():
    sim, device = make_essd(aws_io2_profile)
    chunk = device.profile.chunk_size
    offset = chunk - 64 * KiB  # straddles a chunk boundary

    def proc():
        request = yield device.write(offset, 128 * KiB)
        return request

    sim.process(proc())
    sim.run()
    assert device.stats.bytes_written == 128 * KiB
    assert device.cluster.stats.subrequest_writes == 2
    assert device.cluster.stats.replica_writes == 2 * device.profile.replication_factor


def test_unaligned_or_oversized_requests_rejected():
    _, device = make_essd()
    with pytest.raises(ValueError):
        device.read(3, 4096)
    with pytest.raises(ValueError):
        device.write(0, device.capacity_bytes + 4096)
