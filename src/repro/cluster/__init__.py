"""Sharded fleet simulation: cluster-scale topologies on shard runners.

Layer 5 of the stack (kernel -> devices -> workloads -> sweeps -> cluster):

* :mod:`repro.cluster.topology` -- declarative fleet descriptions
  (:class:`FleetTopology`: device groups x tenants x replication edges).
* :mod:`repro.cluster.shard` -- :class:`ShardWorker`, one simulator owning
  a slice of the fleet, advancing in bounded time epochs.
* :mod:`repro.cluster.coordinator` -- :class:`FleetCoordinator`:
  device-affinity partitioning and the conservative epoch barrier for
  cross-shard replica messages, driven per coupling component.
  ``shards=1`` is the serial path; every layout is bit-identical.
* :mod:`repro.cluster.transport` -- how grants and message batches move
  between coordinator and shards (:class:`ShardTransport`): in-process
  calls, a dedicated executor process per shard, or shared-memory rings;
  all execution knobs collapse into :class:`FleetRunConfig`.
* :mod:`repro.cluster.metrics` -- per-tenant / per-group / fleet-wide
  metric merges from the per-shard payloads.
* :mod:`repro.cluster.macro` -- calibrated mean-field aggregates for
  ``mode="macro"`` device groups: fleet size becomes a constant-cost
  parameter (100k+ devices), with every macro metric flagged
  ``approximate`` and validated against the discrete model by the
  macro-vs-discrete harness.

The sweep layer runs fleets through ``CellSpec.fleet``; the CLI exposes
``python -m repro.experiments fleet <scenario> [--shards N] [--macro G]``.
"""

from repro.cluster.coordinator import (
    FleetCoordinator,
    partition_topology,
    run_fleet,
    run_fleet_serial,
)
from repro.cluster.faults import FaultEvent, FaultInjector, FaultPolicy
from repro.cluster.macro import MacroCalibration, MacroGroup, calibrate_workload
from repro.cluster.metrics import fleet_headline, merge_shard_payloads
from repro.cluster.shard import ReplicaMessage, ShardPlan, ShardWorker
from repro.cluster.transport import (
    ExecutorTransport,
    FleetRunConfig,
    InProcessTransport,
    SharedMemoryTransport,
    ShardTransport,
    create_transport,
)
from repro.cluster.topology import (
    DeviceGroup,
    FleetTopology,
    ReplicationEdge,
    Tenant,
    edge,
    fault,
    fleet,
    group,
    tenant,
)

__all__ = [
    "FleetTopology",
    "DeviceGroup",
    "Tenant",
    "ReplicationEdge",
    "FaultEvent",
    "FaultPolicy",
    "FaultInjector",
    "fleet",
    "group",
    "tenant",
    "edge",
    "fault",
    "ShardPlan",
    "ShardWorker",
    "ReplicaMessage",
    "MacroCalibration",
    "MacroGroup",
    "calibrate_workload",
    "FleetCoordinator",
    "FleetRunConfig",
    "ShardTransport",
    "InProcessTransport",
    "ExecutorTransport",
    "SharedMemoryTransport",
    "create_transport",
    "partition_topology",
    "run_fleet",
    "run_fleet_serial",
    "merge_shard_payloads",
    "fleet_headline",
]
