"""Mapping from the volume's logical address space to placement groups.

The volume is divided into fixed-size *chunks*.  Each chunk is assigned a
*placement group*: an ordered list of ``replication_factor`` distinct storage
nodes chosen by a deterministic pseudo-random hash of the chunk index.  The
first node of the group acts as the read preference (reads round-robin over
the group to spread load).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Knuth's multiplicative hash constant, used for deterministic placement.
_HASH_MULTIPLIER = 2654435761


@dataclass(frozen=True)
class SubRequest:
    """A chunk-aligned piece of a host request."""

    chunk_index: int
    offset_in_chunk: int
    size: int


class ChunkMap:
    """Chunk-granular placement of a volume over a storage cluster."""

    def __init__(self, capacity_bytes: int, chunk_size: int,
                 num_nodes: int, replication_factor: int, seed: int = 0):
        if chunk_size <= 0 or capacity_bytes <= 0:
            raise ValueError("capacity and chunk size must be positive")
        if replication_factor > num_nodes:
            raise ValueError("replication factor cannot exceed the node count")
        self.capacity_bytes = capacity_bytes
        self.chunk_size = chunk_size
        self.num_nodes = num_nodes
        self.replication_factor = replication_factor
        self.seed = seed
        self.num_chunks = -(-capacity_bytes // chunk_size)

    # -- placement -------------------------------------------------------------
    def chunk_of(self, offset: int) -> int:
        """Chunk index containing byte ``offset``."""
        if not 0 <= offset < self.capacity_bytes:
            raise ValueError(f"offset {offset} outside the volume")
        return offset // self.chunk_size

    def placement_group(self, chunk_index: int) -> tuple[int, ...]:
        """The ordered node ids storing replicas of ``chunk_index``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise ValueError(f"chunk {chunk_index} out of range")
        start = ((chunk_index + self.seed) * _HASH_MULTIPLIER) % self.num_nodes
        # The walk from ``start`` visits nodes at a fixed stride.  A stride
        # sharing a factor with ``num_nodes`` only ever reaches the coset
        # ``{start + k*gcd(stride, num_nodes)}`` -- for example stride 2 on 8
        # nodes touches 4 of them -- so a replication factor above that coset
        # size would loop forever.  Strides co-prime with ``num_nodes``
        # generate the full cyclic group (every node is reached within
        # ``num_nodes`` steps), so we derive a candidate stride from the hash
        # and then advance it until ``gcd(stride, num_nodes) == 1``; stride 1
        # (linear probing) is always co-prime, so the search terminates.
        if self.num_nodes > self.replication_factor:
            stride = 1 + (((chunk_index + self.seed) * 40503)
                          % (self.num_nodes - 1))
            while math.gcd(stride, self.num_nodes) != 1:
                stride = stride % self.num_nodes + 1
        else:
            stride = 1
        group = []
        node = start
        while len(group) < self.replication_factor:
            if node % self.num_nodes not in group:
                group.append(node % self.num_nodes)
            node += stride
        return tuple(group)

    def read_replica(self, chunk_index: int, salt: int = 0) -> int:
        """Pick one replica of the chunk to serve a read (load spreading)."""
        group = self.placement_group(chunk_index)
        return group[salt % len(group)]

    # -- request splitting ---------------------------------------------------------
    def split(self, offset: int, size: int) -> list[SubRequest]:
        """Split a host request into chunk-aligned sub-requests."""
        if size <= 0:
            raise ValueError("size must be positive")
        if offset < 0 or offset + size > self.capacity_bytes:
            raise ValueError("request outside the volume")
        subrequests = []
        position = offset
        remaining = size
        while remaining > 0:
            chunk_index = position // self.chunk_size
            offset_in_chunk = position - chunk_index * self.chunk_size
            take = min(remaining, self.chunk_size - offset_in_chunk)
            subrequests.append(SubRequest(chunk_index, offset_in_chunk, take))
            position += take
            remaining -= take
        return subrequests

    def chunks_touched(self, offset: int, size: int) -> int:
        """Number of distinct chunks a request spans."""
        return len(self.split(offset, size))
