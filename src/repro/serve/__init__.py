"""Persistent experiment service: submit fleets to a running process.

``python -m repro.experiments serve --socket /tmp/repro.sock`` starts an
:class:`ExperimentServer`: a long-lived process that accepts scenario and
fleet submissions -- registered names or inline YAML/JSON documents (see
:mod:`repro.config`) -- over a line-delimited JSON protocol on a unix
socket or localhost TCP, schedules them on the shared
:class:`~repro.experiments.sweep.SweepRunner` pool with the existing
result cache, and streams incremental per-cell metrics plus a terminal
result back to subscribed clients.

Determinism contract: server-side execution runs the exact same cells
through the exact same runner as the batch CLI, so it hits the same
``$REPRO_SWEEP_CACHE`` keys and returns bit-identical metrics -- a serve
submission is a remote ``fleet``/``run`` invocation, never a different
experiment.

Admission control: the job queue is bounded (``--max-pending``);
submissions beyond the bound are rejected immediately with a reason
instead of queueing unboundedly, mirroring the overload-shedding
semantics the simulated fleets themselves implement.

* :mod:`repro.serve.protocol` -- the wire format (one JSON object per
  line) and the framing helper shared by both ends.
* :mod:`repro.serve.server` -- :class:`ExperimentServer`.
* :mod:`repro.serve.client` -- :class:`ServeClient`, backing the
  ``submit`` CLI verb and the tests.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import TERMINAL_EVENTS, LineChannel
from repro.serve.server import ExperimentServer

__all__ = [
    "ExperimentServer",
    "LineChannel",
    "ServeClient",
    "TERMINAL_EVENTS",
]
