"""Tests for multi-stream sweep cells (noisy neighbor, mixed fleet),
cache fingerprinting, and the persistent worker pool."""

import json

import pytest

from repro.experiments import sweep as sweep_module
from repro.experiments.scenarios import get_scenario, scenario
from repro.experiments.sweep import (
    CellSpec,
    SweepRunner,
    model_fingerprint,
    quick_cells,
    run_cell,
    shared_pool,
    shutdown_shared_pool,
)
from repro.host.io import KiB, MiB

#: A fast noisy-neighbor scenario: two streams on one small SSD.
NOISY = scenario(
    "noisy-under-test", "test-only noisy neighbor",
    devices=("SSD",),
    base={"io_count": 25, "preload": True, "trace": True,
          "ssd_capacity_bytes": 64 * MiB, "essd_capacity_bytes": 96 * MiB},
    streams={
        "victim": {"pattern": "randread", "io_size": 4 * KiB, "queue_depth": 1},
        "neighbor": {"pattern": "randwrite", "io_size": 64 * KiB, "io_count": 15},
    },
    grid={"neighbor.queue_depth": (1, 8)},
    seed=13, seed_mode="derived",
)

#: A fast mixed-fleet scenario: two device families under one clock.
FLEET = scenario(
    "fleet-under-test", "test-only mixed fleet",
    devices=("fleet",),
    base={"pattern": "randwrite", "io_size": 16 * KiB, "queue_depth": 2,
          "io_count": 20, "preload": False, "trace": True,
          "ssd_capacity_bytes": 64 * MiB, "essd_capacity_bytes": 96 * MiB},
    streams={"on-ssd": {"device": "SSD"}, "on-essd2": {"device": "ESSD-2"}},
    seed=19,
)


# ---------------------------------------------------------------------------
# Scenario expansion with streams
# ---------------------------------------------------------------------------

def test_stream_axis_targets_the_named_stream():
    cells = NOISY.cells()
    assert len(cells) == 2
    depths = []
    for cell in cells:
        overrides = dict(dict(cell.streams)["neighbor"])
        depths.append(overrides["queue_depth"])
        victim = dict(dict(cell.streams)["victim"])
        assert victim["queue_depth"] == 1
    assert depths == [1, 8]


def test_unknown_stream_axis_raises():
    bad = scenario("bad-stream-axis", "d", devices=("SSD",),
                   base={"io_count": 5},
                   streams={"a": {}},
                   grid={"nobody.queue_depth": (1,)})
    with pytest.raises(ValueError, match="unknown stream"):
        bad.cells()


def test_stream_cells_roundtrip_through_json_payload():
    cell = NOISY.cells()[0]
    clone = CellSpec.from_payload(json.loads(json.dumps(cell.to_payload())))
    assert clone == cell
    assert clone.cache_key() == cell.cache_key()


def test_stream_contents_change_the_cache_key():
    cells = NOISY.cells()
    assert cells[0].cache_key() != cells[1].cache_key()
    single = CellSpec(device="SSD", io_count=25)
    assert single.cache_key() != cells[0].cache_key()


def test_quick_cells_shrinks_stream_budgets():
    quick = quick_cells(NOISY.cells(), io_count=10)[0]
    assert quick.io_count == 10
    for _name, overrides in quick.streams:
        fields = dict(overrides)
        if "io_count" in fields:
            assert fields["io_count"] <= 10


# ---------------------------------------------------------------------------
# Multi-stream execution
# ---------------------------------------------------------------------------

def test_noisy_neighbor_cell_reports_streams_and_trace():
    metrics = run_cell(quick_cells(NOISY.cells(), io_count=12)[0])
    assert set(metrics["streams"]) == {"victim", "neighbor"}
    victim = metrics["streams"]["victim"]
    assert victim["device"] == "SSD"
    assert victim["ios_completed"] == 12
    trace = metrics["trace"]
    assert trace["completed_requests"] >= 12
    assert {"queue", "service", "media"} <= set(trace["stages"])
    assert metrics["ios_completed"] == sum(
        s["ios_completed"] for s in metrics["streams"].values())


def test_mixed_fleet_cell_traces_both_device_families():
    metrics = run_cell(FLEET.cells()[0])
    assert {"on-ssd", "on-essd2"} == set(metrics["streams"])
    assert metrics["streams"]["on-ssd"]["device"] == "SSD"
    assert metrics["streams"]["on-essd2"]["device"] == "ESSD-2"
    per_device = metrics["trace"]["devices"]
    assert set(per_device) == {"SSD", "ESSD-2"}
    assert "media" in per_device["SSD"]
    assert "network" in per_device["ESSD-2"]


def test_multi_stream_cells_are_deterministic():
    cell = quick_cells(NOISY.cells(), io_count=10)[0]
    assert run_cell(cell) == run_cell(cell)


def test_traced_single_job_cell_keeps_classic_metrics():
    """trace=True on a single-job cell is additive: the classic metrics
    (series, write amplification, per-direction throughput) survive and a
    breakdown is attached on top."""
    base = dict(device="SSD", pattern="randwrite", io_count=10,
                preload=False, series_bin_us="auto",
                ssd_capacity_bytes=64 * MiB)
    plain = run_cell(CellSpec(**base))
    traced = run_cell(CellSpec(**base, trace=True))
    assert "trace" not in plain
    trace = traced.pop("trace")
    assert traced == plain  # identical physics and schema otherwise
    assert {"series", "write_amplification", "read_throughput_gbps"} <= set(traced)
    assert trace["completed_requests"] == 10
    assert {"queue", "service", "media"} <= set(trace["stages"])


def test_registered_multi_tenant_scenarios_expand():
    noisy = get_scenario("noisy-neighbor")
    assert all(cell.streams for cell in noisy.cells())
    fleet = get_scenario("mixed-fleet")
    devices_used = {dict(overrides).get("device")
                    for cell in fleet.cells()
                    for _name, overrides in cell.streams}
    assert devices_used == {"SSD", "ESSD-1", "ESSD-2"}


def test_serial_and_parallel_identical_for_stream_cells():
    cells = quick_cells(NOISY.cells(), io_count=8)
    serial = SweepRunner(parallel=False).run_cells("noisy", cells)
    parallel = SweepRunner(parallel=True, max_workers=2).run_cells("noisy", cells)
    assert [o.metrics for o in serial.outcomes] == [o.metrics for o in parallel.outcomes]


# ---------------------------------------------------------------------------
# Cache fingerprint
# ---------------------------------------------------------------------------

def test_model_fingerprint_is_stable_within_a_process():
    assert model_fingerprint() == model_fingerprint()
    assert len(model_fingerprint()) == 16


def test_cache_key_tracks_model_fingerprint(monkeypatch):
    cell = CellSpec(device="SSD", io_count=5)
    before = cell.cache_key()
    monkeypatch.setattr(sweep_module, "model_fingerprint", lambda: "deadbeefdeadbeef")
    after = cell.cache_key()
    assert before != after
    # CACHE_VERSION still works as a manual override on top.
    monkeypatch.setattr(sweep_module, "CACHE_VERSION", -1)
    assert cell.cache_key() not in (before, after)


def test_model_edit_invalidates_cache_entries(tmp_path, monkeypatch):
    from repro.experiments.sweep import SweepCache
    cache = SweepCache(tmp_path)
    cell = CellSpec(device="SSD", io_count=5)
    cache.store("s", cell, {"iops": 1.0})
    assert cache.load("s", cell) == {"iops": 1.0}
    # A model-source change moves the key -> the old entry is unreachable.
    monkeypatch.setattr(sweep_module, "model_fingerprint", lambda: "0" * 16)
    assert cache.load("s", cell) is None


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------

def test_shared_pool_is_reused_across_runs():
    shutdown_shared_pool()
    try:
        first = shared_pool(2)
        assert shared_pool(2) is first
        assert shared_pool(1) is first  # smaller request reuses the pool
        bigger = shared_pool(3)
        assert bigger is not first  # growth recreates
        assert shared_pool(2) is bigger
    finally:
        shutdown_shared_pool()


def test_runner_uses_one_pool_for_consecutive_sweeps():
    shutdown_shared_pool()
    try:
        cells = quick_cells(NOISY.cells(), io_count=6)
        runner = SweepRunner(parallel=True, max_workers=2)
        runner.run_cells("noisy-a", cells)
        pool_after_first = sweep_module._SHARED_POOL
        assert pool_after_first is not None
        runner.run_cells("noisy-b", cells)
        assert sweep_module._SHARED_POOL is pool_after_first
    finally:
        shutdown_shared_pool()
