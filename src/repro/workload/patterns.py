"""Address-pattern generators for workloads.

A pattern produces ``(kind, offset)`` pairs given an I/O size and a target
address range.  The four FIO patterns the paper uses map to:

* ``randread`` / ``randwrite`` -- :class:`RandomPattern`
* ``read`` / ``write`` (sequential) -- :class:`SequentialPattern`
* ``randrw`` with a write percentage -- :class:`MixedPattern` wrapping a
  random pattern.

A Zipfian pattern is included for skewed-workload experiments (it is not used
by the paper's figures but is exercised by the examples and advisors).
"""

from __future__ import annotations

import abc
import random
from typing import Optional

import numpy as np

from repro.host.io import IOKind


class AccessPattern(abc.ABC):
    """Produces the offsets (and kinds) of a workload's requests."""

    def __init__(self, region_bytes: int, io_size: int, region_offset: int = 0):
        if io_size <= 0:
            raise ValueError("io_size must be positive")
        if region_bytes < io_size:
            raise ValueError("region must be at least one I/O in size")
        self.region_bytes = region_bytes
        self.io_size = io_size
        self.region_offset = region_offset
        self.slots = region_bytes // io_size

    @abc.abstractmethod
    def next_offset(self) -> int:
        """The byte offset of the next request."""

    def next_kind(self) -> IOKind:
        """The kind of the next request (patterns are single-kind by default)."""
        return IOKind.READ

    def next(self) -> tuple[IOKind, int]:
        """Convenience: (kind, offset) of the next request."""
        return self.next_kind(), self.next_offset()


class SequentialPattern(AccessPattern):
    """Strictly increasing offsets, wrapping at the end of the region."""

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, start_slot: int = 0):
        super().__init__(region_bytes, io_size, region_offset)
        self.kind = kind
        self._cursor = start_slot % self.slots

    def next_offset(self) -> int:
        offset = self.region_offset + self._cursor * self.io_size
        self._cursor = (self._cursor + 1) % self.slots
        return offset

    def next_kind(self) -> IOKind:
        return self.kind


class RandomPattern(AccessPattern):
    """Uniformly random aligned offsets."""

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, seed: int = 0):
        super().__init__(region_bytes, io_size, region_offset)
        self.kind = kind
        self._rng = random.Random(seed)

    def next_offset(self) -> int:
        return self.region_offset + self._rng.randrange(self.slots) * self.io_size

    def next_kind(self) -> IOKind:
        return self.kind


class ZipfianPattern(AccessPattern):
    """Zipf-skewed offsets (hot spots), as produced by many real applications."""

    def __init__(self, region_bytes: int, io_size: int, kind: IOKind = IOKind.READ,
                 region_offset: int = 0, seed: int = 0, theta: float = 1.1):
        super().__init__(region_bytes, io_size, region_offset)
        if theta <= 1.0:
            raise ValueError("theta must be > 1 for a proper Zipf distribution")
        self.kind = kind
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        # A fixed permutation decorrelates rank from address.
        self._permutation = np.random.default_rng(seed + 7).permutation(self.slots)

    def next_offset(self) -> int:
        rank = int(self._rng.zipf(self.theta))
        slot = self._permutation[(rank - 1) % self.slots]
        return self.region_offset + int(slot) * self.io_size

    def next_kind(self) -> IOKind:
        return self.kind


class MixedPattern(AccessPattern):
    """Wraps a base pattern and flips each request to WRITE with a probability."""

    def __init__(self, base: AccessPattern, write_ratio: float, seed: int = 0):
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        super().__init__(base.region_bytes, base.io_size, base.region_offset)
        self.base = base
        self.write_ratio = write_ratio
        self._rng = random.Random(seed)

    def next_offset(self) -> int:
        return self.base.next_offset()

    def next_kind(self) -> IOKind:
        return IOKind.WRITE if self._rng.random() < self.write_ratio else IOKind.READ


def make_pattern(name: str, region_bytes: int, io_size: int,
                 write_ratio: Optional[float] = None, seed: int = 0,
                 region_offset: int = 0) -> AccessPattern:
    """Build a pattern from a FIO-style name.

    Supported names: ``read``, ``write``, ``randread``, ``randwrite``,
    ``randrw`` (requires ``write_ratio``), ``zipfread``, ``zipfwrite``.
    """
    name = name.lower()
    if name == "read":
        return SequentialPattern(region_bytes, io_size, IOKind.READ, region_offset)
    if name == "write":
        return SequentialPattern(region_bytes, io_size, IOKind.WRITE, region_offset)
    if name == "randread":
        return RandomPattern(region_bytes, io_size, IOKind.READ, region_offset, seed)
    if name == "randwrite":
        return RandomPattern(region_bytes, io_size, IOKind.WRITE, region_offset, seed)
    if name == "zipfread":
        return ZipfianPattern(region_bytes, io_size, IOKind.READ, region_offset, seed)
    if name == "zipfwrite":
        return ZipfianPattern(region_bytes, io_size, IOKind.WRITE, region_offset, seed)
    if name == "randrw":
        if write_ratio is None:
            raise ValueError("randrw requires a write_ratio")
        base = RandomPattern(region_bytes, io_size, IOKind.READ, region_offset, seed)
        return MixedPattern(base, write_ratio, seed=seed + 1)
    raise ValueError(f"unknown pattern name: {name!r}")
