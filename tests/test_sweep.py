"""Tests for the scenario-sweep subsystem (grid, hashing, cache, runner, CLI)."""

import json

import pytest

from repro.experiments import runner as _paper_runner  # noqa: F401 (registers figures)
from repro.experiments.cli import main as cli_main
from repro.experiments.scenarios import (
    all_scenarios,
    get_scenario,
    register,
    scenario,
)
from repro.experiments.sweep import (
    CellOutcome,
    CellSpec,
    SweepCache,
    SweepResult,
    SweepRunner,
    diff_results,
    expand_grid,
    quick_cells,
    run_cell,
    spec_hash,
)
from repro.host.io import KiB, MiB

#: A tiny two-device sweep used throughout (small capacities, few I/Os).
TINY_SWEEP = scenario(
    "tiny-sweep-under-test",
    "test-only sweep",
    devices=("SSD", "ESSD-2"),
    base={"pattern": "randwrite", "io_count": 30, "preload": False,
          "ssd_capacity_bytes": 64 * MiB, "essd_capacity_bytes": 96 * MiB},
    grid={"io_size": (4 * KiB, 64 * KiB), "queue_depth": (1, 4)},
    seed=7,
    seed_mode="derived",
)


# ---------------------------------------------------------------------------
# Grid expansion and hashing
# ---------------------------------------------------------------------------

def test_expand_grid_cartesian_product_and_order():
    points = expand_grid({"b": (1, 2), "a": ("x", "y", "z")})
    assert len(points) == 6
    # Axes iterate sorted by name; earlier axes vary slowest.
    assert points[0] == {"a": "x", "b": 1}
    assert points[1] == {"a": "x", "b": 2}
    assert points[-1] == {"a": "z", "b": 2}


def test_expand_grid_empty_and_invalid():
    assert expand_grid({}) == [{}]
    with pytest.raises(ValueError):
        expand_grid({"a": ()})
    with pytest.raises(TypeError):
        expand_grid({"a": 5})


def test_spec_hash_stable_and_sensitive():
    assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})
    assert spec_hash({"a": 1}) != spec_hash({"a": 2})
    cell = CellSpec(device="SSD", io_size=4096)
    assert cell.cache_key() == CellSpec(device="SSD", io_size=4096).cache_key()
    assert cell.cache_key() != CellSpec(device="SSD", io_size=8192).cache_key()
    # Labels are cosmetic: renaming them must not invalidate the cache.
    relabelled = CellSpec(device="SSD", io_size=4096, labels=(("name", "x"),))
    assert relabelled.cache_key() == cell.cache_key()


def test_cell_spec_payload_roundtrip():
    cell = CellSpec(device="ESSD-1", pattern="zipfrw", write_ratio=0.3,
                    pattern_params=(("theta", 1.2),), labels=(("device", "ESSD-1"),))
    clone = CellSpec.from_payload(json.loads(json.dumps(cell.to_payload())))
    assert clone == cell
    assert clone.cache_key() == cell.cache_key()


# ---------------------------------------------------------------------------
# Scenario registry and expansion
# ---------------------------------------------------------------------------

def test_scenario_expansion_devices_times_grid():
    cells = TINY_SWEEP.cells()
    assert len(cells) == 2 * 4
    devices = {cell.device for cell in cells}
    assert devices == {"SSD", "ESSD-2"}
    # Grid axes that match CellSpec fields land on the field; labels carry
    # the full grid point.
    sizes = {cell.io_size for cell in cells}
    assert sizes == {4 * KiB, 64 * KiB}
    assert all(dict(cell.labels)["device"] == cell.device for cell in cells)
    # Derived seeding: no two cells share a seed.
    seeds = [cell.seed for cell in cells]
    assert len(set(seeds)) == len(seeds)


def test_scenario_grid_may_sweep_seed_and_device_fields():
    spec = scenario("seed-sweep-under-test", "d", devices=("SSD",),
                    base={"pattern": "randwrite", "io_count": 10,
                          "preload": False},
                    grid={"seed": (1, 2, 3)})
    cells = spec.cells()
    assert [cell.seed for cell in cells] == [1, 2, 3]
    assert all(cell.device == "SSD" for cell in cells)


def test_quick_cells_shrinks_byte_bounded_floods():
    from repro.experiments.sweep import quick_cells
    flood = CellSpec(device="SSD", pattern="randwrite", io_size=4096,
                     total_bytes=400 * MiB)
    counted = CellSpec(device="SSD", pattern="randwrite", io_size=4096,
                       io_count=500)
    quick = quick_cells([flood, counted], io_count=60)
    assert quick[0].total_bytes == 50 * MiB
    assert quick[1].io_count == 60


def test_diff_flags_zero_baseline_going_nonzero():
    import math
    cell = CellSpec(device="SSD")
    a = SweepResult("s", [CellOutcome(cell, {"throughput_gbps": 0.0})])
    b = SweepResult("s", [CellOutcome(cell, {"throughput_gbps": 2.0})])
    rows = diff_results(a, b)
    assert rows[0]["relative_change"] == math.inf
    assert diff_results(a, a)[0]["relative_change"] == 0.0


def test_scenario_non_field_axes_become_pattern_params():
    spec = scenario("zipf-under-test", "d", devices=("ESSD-2",),
                    base={"pattern": "zipfread", "io_count": 10},
                    grid={"theta": (1.1, 1.3)})
    cells = spec.cells()
    assert [dict(cell.pattern_params)["theta"] for cell in cells] == [1.1, 1.3]


def test_registry_contains_paper_and_characterization_scenarios():
    names = {spec.name for spec in all_scenarios()}
    assert {"figure2", "figure3", "figure4", "figure5", "table1"} <= names
    assert {"zipf-hotspot", "hot-cold", "bursty-duty-cycle",
            "rw-ratio-sweep"} <= names
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")
    with pytest.raises(ValueError):
        register(get_scenario("figure2"))
    with pytest.raises(ValueError):
        scenario("x", "d", devices=(), seed_mode="nope")


# ---------------------------------------------------------------------------
# find / diff edge cases
# ---------------------------------------------------------------------------

def test_find_missing_and_ambiguous_labels_raise():
    cell_a = CellSpec(device="SSD", io_size=4096, labels=(("qd", 1),))
    cell_b = CellSpec(device="SSD", io_size=8192, labels=(("qd", 1),))
    result = SweepResult("s", [CellOutcome(cell_a, {}), CellOutcome(cell_b, {})])
    with pytest.raises(KeyError):
        result.find(device="ESSD-1")  # no match
    with pytest.raises(KeyError, match="2 cells"):
        result.find(qd=1)  # ambiguous
    assert result.find(io_size=8192).cell == cell_b
    empty = SweepResult("empty")
    with pytest.raises(KeyError):
        empty.find(device="SSD")


def test_diff_handles_mismatched_grids():
    cell_a = CellSpec(device="SSD", io_size=4096)
    cell_b = CellSpec(device="SSD", io_size=8192)
    a = SweepResult("s", [CellOutcome(cell_a, {"throughput_gbps": 1.0})])
    b = SweepResult("s", [CellOutcome(cell_b, {"throughput_gbps": 2.0})])
    rows = diff_results(a, b)
    assert len(rows) == 2
    # A cell missing on one side reports the present value, no change.
    by_size = {row["cell"]["io_size"]: row for row in rows}
    assert by_size[4096]["throughput_gbps_a"] == 1.0
    assert by_size[4096]["throughput_gbps_b"] is None
    assert by_size[4096]["relative_change"] is None
    assert by_size[8192]["throughput_gbps_a"] is None
    assert by_size[8192]["relative_change"] is None


def test_diff_treats_nan_metrics_as_incomparable():
    import math
    cell = CellSpec(device="SSD")
    nan = SweepResult("s", [CellOutcome(cell, {"throughput_gbps": math.nan})])
    ok = SweepResult("s", [CellOutcome(cell, {"throughput_gbps": 1.0})])
    for a, b in ((nan, ok), (ok, nan), (nan, nan)):
        rows = diff_results(a, b)
        assert rows[0]["relative_change"] is None
    # A metric key absent from the metrics dict behaves the same way.
    missing = SweepResult("s", [CellOutcome(cell, {})])
    assert diff_results(missing, ok)[0]["relative_change"] is None


# ---------------------------------------------------------------------------
# Device-param axes and the trace workload family
# ---------------------------------------------------------------------------

def test_device_param_axes_route_to_device_params_and_cache_key():
    spec = scenario("repl-under-test", "d", devices=("ESSD-2",),
                    base={"pattern": "randwrite", "io_count": 10,
                          "preload": False},
                    grid={"replication_factor": (1, 3),
                          "chunk_size": (512 * KiB,)})
    cells = spec.cells()
    assert [dict(cell.device_params)["replication_factor"]
            for cell in cells] == [1, 3]
    assert all(dict(cell.device_params)["chunk_size"] == 512 * KiB
               for cell in cells)
    # Device params are physics: they must split the cache key.
    assert cells[0].cache_key() != cells[1].cache_key()
    assert "replication_factor" not in dict(cells[0].pattern_params)


def test_replication_scenario_registered_and_sweeps_the_axis():
    spec = get_scenario("replication")
    cells = spec.cells()
    assert len(cells) == 2 * 3 * 2  # devices x factors x chunk sizes
    factors = {dict(cell.device_params)["replication_factor"] for cell in cells}
    assert factors == {1, 2, 3}


def test_trace_family_cell_replays_open_loop():
    cell = CellSpec(device="LOOP", pattern="trace-uniform", io_size=8192,
                    pattern_params=(("duration_us", 5_000.0),
                                    ("load_gbps", 0.5)),
                    preload=False, seed=3)
    metrics = run_cell(cell)
    assert metrics["ios_completed"] > 0
    assert metrics["unfinished"] == 0
    assert metrics["offered_mean_gbps"] == pytest.approx(0.5, rel=0.15)
    assert run_cell(cell) == metrics  # deterministic
    quick = quick_cells([cell])[0]
    assert dict(quick.pattern_params)["duration_us"] == 5_000.0


def test_trace_csv_roundtrip_through_the_family_entry_point(tmp_path):
    from repro.workload.trace import Trace, synthesize_trace

    trace = synthesize_trace("bursty", duration_us=30_000.0,
                             mean_load_gbps=0.4, io_size=16384, seed=11)
    assert len(trace) > 0
    path = tmp_path / "trace.csv"
    trace.save_csv(path)
    loaded = Trace.load_csv(path)
    assert len(loaded) == len(trace)
    assert [(e.timestamp_us, e.kind, e.offset, e.size) for e in loaded] == \
        [(round(e.timestamp_us, 3), e.kind, e.offset, e.size) for e in trace]
    assert loaded.total_bytes == trace.total_bytes


def test_quick_cells_shrink_trace_and_fleet_cells():
    import json
    from repro.experiments.sweep import quick_cells as shrink

    trace_cell = CellSpec(device="ESSD-2", pattern="trace-bursty",
                          pattern_params=(("duration_us", 900_000.0),))
    quick = shrink([trace_cell])[0]
    assert dict(quick.pattern_params)["duration_us"] == 100_000.0

    fleet_cell = get_scenario("datacenter-diurnal").cells()[0]
    quick = shrink([fleet_cell])[0]
    payload = json.loads(quick.fleet)
    durations = [t["workload"]["duration_us"] for t in payload["tenants"]]
    assert all(duration <= 100_000.0 for duration in durations)


# ---------------------------------------------------------------------------
# Runner: determinism, parallelism, cache
# ---------------------------------------------------------------------------

def _metrics_of(result: SweepResult) -> list[dict]:
    return [outcome.metrics for outcome in result.outcomes]


def test_serial_and_parallel_execution_are_identical():
    cells = TINY_SWEEP.cells()
    serial = SweepRunner(parallel=False).run_cells("tiny", cells)
    parallel = SweepRunner(parallel=True, max_workers=2).run_cells("tiny", cells)
    assert _metrics_of(serial) == _metrics_of(parallel)
    assert [outcome.cell for outcome in serial.outcomes] \
        == [outcome.cell for outcome in parallel.outcomes]


def test_same_seed_reruns_are_deterministic():
    cell = TINY_SWEEP.cells()[0]
    assert run_cell(cell) == run_cell(cell)


def test_cache_hits_and_force(tmp_path):
    cells = TINY_SWEEP.cells()[:2]
    first = SweepRunner(cache_dir=tmp_path).run_cells("tiny", cells)
    assert first.cache_hits == 0
    second = SweepRunner(cache_dir=tmp_path).run_cells("tiny", cells)
    assert second.cache_hits == len(cells)
    assert _metrics_of(first) == _metrics_of(second)
    forced = SweepRunner(cache_dir=tmp_path, force=True).run_cells("tiny", cells)
    assert forced.cache_hits == 0
    assert _metrics_of(forced) == _metrics_of(first)


def test_cache_ignores_corrupt_and_mismatched_entries(tmp_path):
    cache = SweepCache(tmp_path)
    cell = TINY_SWEEP.cells()[0]
    path = cache.store("tiny", cell, {"throughput_gbps": 1.0})
    assert cache.load("tiny", cell) == {"throughput_gbps": 1.0}
    path.write_text("{not json")
    assert cache.load("tiny", cell) is None
    payload = {"version": -1, "metrics": {"throughput_gbps": 2.0}}
    path.write_text(json.dumps(payload))
    assert cache.load("tiny", cell) is None


def test_cache_store_survives_crash_mid_write(tmp_path, monkeypatch):
    """A writer dying mid-store must never corrupt an existing entry.

    The store path is temp-file + os.replace; simulate the crash by making
    the payload serializer blow up after the previous entry is in place."""
    cache = SweepCache(tmp_path)
    cell = TINY_SWEEP.cells()[0]
    cache.store("tiny", cell, {"throughput_gbps": 1.0})

    import repro.experiments.sweep as sweep_module

    def explode(payload):
        raise RuntimeError("simulated crash mid-write")

    monkeypatch.setattr(sweep_module, "canonical_json", explode)
    with pytest.raises(RuntimeError, match="simulated crash"):
        cache.store("tiny", cell, {"throughput_gbps": 2.0})
    monkeypatch.undo()

    # The prior entry is intact and loadable, and the aborted write left
    # no temp file behind to confuse later directory scans.
    assert cache.load("tiny", cell) == {"throughput_gbps": 1.0}
    entry_dir = cache.path_for("tiny", cell).parent
    assert [p.name for p in entry_dir.iterdir()] == \
        [cache.path_for("tiny", cell).name]

    # And a subsequent healthy store atomically replaces the entry.
    cache.store("tiny", cell, {"throughput_gbps": 3.0})
    assert cache.load("tiny", cell) == {"throughput_gbps": 3.0}


def test_cache_concurrent_stores_never_tear(tmp_path):
    """Racing writers of the same cell each publish a complete file: a
    reader polling throughout must only ever see a fully-formed entry."""
    import threading

    cache = SweepCache(tmp_path)
    cell = TINY_SWEEP.cells()[0]
    cache.store("tiny", cell, {"value": -1.0})
    stop = threading.Event()
    torn: list = []

    def reader():
        while not stop.is_set():
            metrics = cache.load("tiny", cell)
            if metrics is None or "value" not in metrics:
                torn.append(metrics)

    def writer(worker: int):
        for round_index in range(50):
            cache.store("tiny", cell,
                        {"value": float(worker * 100 + round_index)})

    observer = threading.Thread(target=reader)
    writers = [threading.Thread(target=writer, args=(index,))
               for index in range(4)]
    observer.start()
    for thread in writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    observer.join()
    assert torn == []
    assert "value" in cache.load("tiny", cell)


def test_sweep_result_save_load_find_and_diff(tmp_path):
    cells = TINY_SWEEP.cells()[:3]
    result = SweepRunner().run_cells("tiny", cells)
    path = result.save(tmp_path / "sweep.json")
    loaded = SweepResult.load(path)
    assert _metrics_of(loaded) == _metrics_of(result)
    first = cells[0]
    found = loaded.find(device=first.device,
                        io_size=first.io_size, queue_depth=first.queue_depth)
    assert found.cell == first
    with pytest.raises(KeyError):
        loaded.find(device="nope")
    rows = diff_results(result, loaded)
    assert len(rows) == len(cells)
    assert all(row["relative_change"] == pytest.approx(0.0) for row in rows)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list_and_static_table1(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure4" in out and "bursty-duty-cycle" in out
    assert cli_main(["run", "table1"]) == 0
    assert "Alibaba Cloud PL3" in capsys.readouterr().out


def test_cli_run_parallel_with_cache_and_diff(tmp_path, capsys):
    register(TINY_SWEEP, replace=True)
    cache = str(tmp_path / "cache")
    out_a = str(tmp_path / "a.json")
    out_b = str(tmp_path / "b.json")
    assert cli_main(["run", TINY_SWEEP.name, "--workers", "2",
                     "--cache-dir", cache, "--out", out_a]) == 0
    first = capsys.readouterr().out
    assert "0 cached" in first
    # Second run: every cell is a cache hit and the sweep is identical.
    assert cli_main(["run", TINY_SWEEP.name, "--workers", "2",
                     "--cache-dir", cache, "--out", out_b]) == 0
    second = capsys.readouterr().out
    assert f"{len(TINY_SWEEP.cells())} cached" in second
    metrics_a = [entry["metrics"] for entry in json.loads(open(out_a).read())["cells"]]
    metrics_b = [entry["metrics"] for entry in json.loads(open(out_b).read())["cells"]]
    assert metrics_a == metrics_b
    assert cli_main(["diff", out_a, out_b]) == 0
    assert "0 cells changed" in capsys.readouterr().out
