"""Declarative scenario registry for the sweep subsystem.

A *scenario* is a named, reproducible description of a characterization
experiment: which devices to simulate, which workload pattern to run, and a
parameter grid (I/O size x queue depth x pattern knobs x ...) to sweep.
Scenarios expand to independent :class:`~repro.experiments.sweep.CellSpec`
cells and execute through :class:`~repro.experiments.sweep.SweepRunner`,
which parallelises across worker processes and caches results as JSON.

Adding a scenario
-----------------
Call :func:`register` (usually at import time) with a spec built by
:func:`scenario`::

    register(scenario(
        "my-sweep", "what it characterises",
        devices=("SSD", "ESSD-2"),
        base={"pattern": "randwrite", "io_count": 400, "preload": False},
        grid={"io_size": (4096, 65536), "queue_depth": (1, 16)},
    ))

Grid axes whose names match :class:`CellSpec` fields (``io_size``,
``queue_depth``, ``write_ratio``, ...) set those fields; any other axis name
(``theta``, ``duty_cycle``, ``hot_fraction``, ...) is forwarded to the
pattern through ``pattern_params``.  Every expanded cell carries its grid
point in ``labels`` so results can be looked up by parameters.

The paper's figures are registered too (``figure2`` ... ``figure5``,
``table1``): their modules define the cells, this registry makes them
runnable from the CLI (``python -m repro.experiments run figure4``).

Cache layout: see :mod:`repro.experiments.sweep` -- one JSON file per cell
under ``<cache-dir>/<scenario>/<sha256(cell)>.json``, keyed by the canonical
JSON of the cell spec and the cache version.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.experiments.sweep import CellSpec, derive_seed, expand_grid
from repro.host.io import KiB, MiB

#: CellSpec field names a grid axis may target directly.
_CELL_FIELDS = {f.name for f in dataclasses.fields(CellSpec)}

#: Axes routed into ``CellSpec.device_params`` (device-profile overrides)
#: rather than the job or the pattern.
_DEVICE_PARAM_AXES = {"replication_factor", "write_quorum", "chunk_size"}

#: Default scaled capacities for registry scenarios (kept small so a CLI
#: sweep of dozens of cells finishes in seconds per worker).
DEFAULT_SSD_CAPACITY = 96 * MiB
DEFAULT_ESSD_CAPACITY = 192 * MiB


@dataclass(frozen=True)
class ScenarioSpec:
    """A named sweep: devices x parameter grid over one workload family.

    With ``streams`` set, every cell runs several concurrent workload
    streams in one simulation (noisy neighbor / mixed fleet): each stream
    inherits the cell's job fields and applies its own overrides, including
    an optional per-stream ``device``.  A grid axis named
    ``<stream>.<field>`` targets that stream's override instead of the cell.
    """

    name: str
    description: str
    devices: tuple[str, ...]
    base: tuple[tuple[str, Any], ...] = ()
    grid: tuple[tuple[str, tuple], ...] = ()
    #: Concurrent streams per cell: tuple of (name, overrides) pairs.
    streams: tuple[tuple[str, tuple], ...] = ()
    #: A fleet scenario: the canonical JSON of a
    #: :class:`repro.cluster.FleetTopology` payload.  Grid axes named
    #: ``fleet.<field>`` override a topology top-level field, and
    #: ``fleet.<group-or-tenant>.<field>`` a group field / tenant workload
    #: knob -- that is how a sweep explores fleet *shape* axes.
    fleet: Optional[str] = None
    #: Fleet execution knobs as the sorted non-default pairs of a
    #: :class:`repro.cluster.FleetRunConfig` (the document ``run:`` block).
    #: Execution only -- never part of a cell's cache key.
    fleet_run: tuple[tuple[str, Any], ...] = ()
    seed: int = 17
    #: "fixed" uses ``seed`` for every cell (paper-figure behaviour);
    #: "derived" derives a per-cell seed from the grid point, so no two cells
    #: share an RNG stream.
    seed_mode: str = "fixed"
    tags: tuple[str, ...] = ()
    #: Escape hatch for scenarios whose cells need per-cell logic (the paper
    #: figures).  Not part of the declarative payload.
    cell_builder: Optional[Callable[[], list[CellSpec]]] = field(
        default=None, compare=False)

    def grid_points(self) -> list[dict[str, Any]]:
        return expand_grid({axis: values for axis, values in self.grid})

    def cells(self) -> list[CellSpec]:
        """Expand the scenario into independent cell specs."""
        if self.cell_builder is not None:
            return self.cell_builder()
        cells = []
        base = dict(self.base)
        for device in self.devices:
            for point in self.grid_points():
                fields = dict(base)
                pattern_params = dict(fields.pop("pattern_params", ()))
                device_params = dict(fields.pop("device_params", ()))
                fleet_overrides: dict[str, Any] = {}
                stream_overrides = {name: dict(overrides)
                                    for name, overrides in self.streams}
                for axis, value in point.items():
                    if axis.startswith("fleet."):
                        if self.fleet is None:
                            raise ValueError(
                                f"grid axis {axis!r} needs a fleet topology "
                                f"(scenario(..., fleet=...))")
                        fleet_overrides[axis] = value
                    elif "." in axis:
                        stream_name, _, stream_field = axis.partition(".")
                        if stream_name not in stream_overrides:
                            raise ValueError(
                                f"grid axis {axis!r} targets unknown stream "
                                f"{stream_name!r} (streams: "
                                f"{sorted(stream_overrides)})")
                        stream_overrides[stream_name][stream_field] = value
                    elif axis in _DEVICE_PARAM_AXES:
                        device_params[axis] = value
                    elif axis in _CELL_FIELDS:
                        fields[axis] = value
                    else:
                        pattern_params[axis] = value
                if device_params:
                    fields["device_params"] = tuple(sorted(device_params.items()))
                if self.fleet is not None:
                    payload = json.loads(self.fleet)
                    for axis, value in fleet_overrides.items():
                        _apply_fleet_axis(payload, axis, value)
                    # Round-trip through FleetTopology so an invalid
                    # override (bad group field, broken invariant) fails at
                    # expansion time, not inside a worker process.
                    fields["fleet"] = _canonical_fleet(payload)
                    if self.fleet_run:
                        fields.setdefault("fleet_run", self.fleet_run)
                if stream_overrides:
                    fields["streams"] = tuple(sorted(
                        (name, tuple(sorted(overrides.items())))
                        for name, overrides in stream_overrides.items()))
                labels = {"device": device, **point}
                seed = self.seed if self.seed_mode == "fixed" \
                    else derive_seed(self.seed, labels)
                # setdefault keeps a base/grid entry named "device" or "seed"
                # authoritative (a grid axis may sweep seeds, for example).
                fields.setdefault("device", device)
                fields.setdefault("seed", seed)
                fields.setdefault("ssd_capacity_bytes", DEFAULT_SSD_CAPACITY)
                fields.setdefault("essd_capacity_bytes", DEFAULT_ESSD_CAPACITY)
                cells.append(CellSpec(
                    pattern_params=tuple(sorted(pattern_params.items())),
                    labels=tuple(sorted(labels.items())),
                    **fields,
                ))
        return cells

    def to_document(self) -> dict[str, Any]:
        """The YAML/JSON document form (see :mod:`repro.config`).

        ``cell_builder`` scenarios (the paper figures) have no declarative
        form and raise :class:`repro.config.ConfigError`.
        """
        from repro.config import scenario_to_document

        return scenario_to_document(self)

    @classmethod
    def from_document(cls, document: Mapping[str, Any],
                      path: str = "scenario") -> "ScenarioSpec":
        """Build from a document, validating with path-addressed errors."""
        from repro.config import scenario_from_document

        return scenario_from_document(document, path=path)


def _apply_fleet_axis(payload: dict, axis: str, value: Any) -> None:
    """Apply a ``fleet.*`` grid axis onto a topology payload (in place).

    ``fleet.<field>`` sets a topology top-level field (``epoch_us``,
    ``seed``, ...); ``fleet.<name>.<field>`` sets a device-group field
    (``count``, ``capacity_bytes``, ...) or, when ``<name>`` is a tenant, a
    workload knob.  Groups win name collisions.  Two deeper forms serve the
    fault scenarios: ``fleet.fault_policy.<field>`` sets a
    :class:`~repro.cluster.FaultPolicy` knob (rebuild pacing / admission
    control), and ``fleet.<group>.device_params.<field>`` a device-profile
    override such as the SSD's over-provisioning ratio.
    """
    import repro.cluster as cluster

    path = axis.split(".")[1:]
    if len(path) == 1:
        known = {f.name for f in dataclasses.fields(cluster.FleetTopology)}
        if path[0] not in known:
            # An unknown top-level key would be silently dropped by
            # FleetTopology.from_payload -- a no-op axis, not an error.
            raise ValueError(f"fleet axis {axis!r} is not a FleetTopology "
                             f"field (known: {sorted(known)})")
        payload[path[0]] = value
        return
    if len(path) == 2:
        head, leaf = path
        for group in payload.get("groups", ()):
            if group.get("name") == head:
                group[leaf] = value
                return
        for tenant in payload.get("tenants", ()):
            if tenant.get("name") == head:
                tenant.setdefault("workload", {})[leaf] = value
                return
        if head == "fault_policy":
            known = {f.name for f in dataclasses.fields(cluster.FaultPolicy)}
            if leaf not in known:
                raise ValueError(f"fleet axis {axis!r} is not a FaultPolicy "
                                 f"field (known: {sorted(known)})")
            policy = dict(payload.get("fault_policy") or {})
            policy[leaf] = value
            payload["fault_policy"] = policy
            return
    if len(path) == 3 and path[1] == "device_params":
        head, _, leaf = path
        for group in payload.get("groups", ()):
            if group.get("name") == head:
                params = dict(tuple(pair)
                              for pair in group.get("device_params", ()))
                params[leaf] = value
                group["device_params"] = [list(pair)
                                          for pair in sorted(params.items())]
                return
    raise ValueError(f"fleet axis {axis!r} matches no topology element")


def _canonical_fleet(fleet: Any) -> Optional[str]:
    """Normalise a topology argument (object / payload / JSON) to canonical
    JSON, round-tripping through :class:`FleetTopology` so it validates."""
    if fleet is None:
        return None
    from repro.cluster import FleetTopology

    if isinstance(fleet, FleetTopology):
        return fleet.canonical()
    if isinstance(fleet, str):
        return FleetTopology.from_json(fleet).canonical()
    return FleetTopology.from_payload(fleet).canonical()


def _canonical_run(run: Any) -> tuple:
    """Normalise a run-config argument (``FleetRunConfig`` / mapping /
    pairs / ``None``) to the sorted non-default pairs stored on the spec."""
    if run is None:
        return ()
    from repro.cluster import FleetRunConfig

    if isinstance(run, FleetRunConfig):
        return run.to_pairs()
    if isinstance(run, Mapping):
        return FleetRunConfig(**dict(run)).to_pairs()
    return FleetRunConfig.from_pairs(run).to_pairs()


def scenario(name: str, description: str, devices: Sequence[str],
             base: Optional[Mapping[str, Any]] = None,
             grid: Optional[Mapping[str, Sequence[Any]]] = None,
             streams: Optional[Mapping[str, Mapping[str, Any]]] = None,
             fleet: Any = None,
             run: Any = None,
             seed: int = 17, seed_mode: str = "fixed",
             tags: Sequence[str] = (),
             cell_builder: Optional[Callable[[], list[CellSpec]]] = None,
             ) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from plain dicts (normalised to tuples)."""
    if seed_mode not in ("fixed", "derived"):
        raise ValueError(f"unknown seed_mode {seed_mode!r}")
    return ScenarioSpec(
        name=name,
        description=description,
        devices=tuple(devices),
        base=tuple(sorted((base or {}).items())),
        grid=tuple((axis, tuple(values)) for axis, values in (grid or {}).items()),
        streams=tuple(sorted(
            (stream_name, tuple(sorted(overrides.items())))
            for stream_name, overrides in (streams or {}).items())),
        fleet=_canonical_fleet(fleet),
        fleet_run=_canonical_run(run),
        seed=seed,
        seed_mode=seed_mode,
        tags=tuple(tags),
        cell_builder=cell_builder,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (error on duplicate unless ``replace``)."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    load_user_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def all_scenarios() -> list[ScenarioSpec]:
    load_user_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# User scenario documents ($REPRO_SCENARIO_PATH)
# ---------------------------------------------------------------------------

#: The ``$REPRO_SCENARIO_PATH`` value last scanned (``None`` = never) and
#: the warnings that scan produced.  The scan re-runs whenever the variable
#: changes (tests flip it per-case) and is otherwise a no-op.
_SCANNED_PATH: Optional[str] = None
_SCAN_WARNINGS: list[tuple[str, str]] = []


def load_user_scenarios(force: bool = False) -> list[tuple[str, str]]:
    """Register scenario documents from ``$REPRO_SCENARIO_PATH``.

    Every ``*.yaml`` / ``*.yml`` / ``*.json`` file in the listed directories
    is loaded through :mod:`repro.config` and registered with
    ``replace=True`` (user documents may shadow built-ins deliberately).
    Returns ``(file, message)`` warnings for files that failed to load --
    callers surface them; a bad file never aborts the scan.  Memoized on the
    environment value; pass ``force=True`` to rescan (e.g. after editing a
    document in a live ``serve`` process).
    """
    global _SCANNED_PATH

    import os

    raw = os.environ.get("REPRO_SCENARIO_PATH", "")
    if raw == _SCANNED_PATH and not force:
        return list(_SCAN_WARNINGS)
    _SCANNED_PATH = raw
    _SCAN_WARNINGS.clear()
    if not raw:
        return []
    from repro.config import scan_scenario_dirs

    specs, warnings = scan_scenario_dirs()
    for spec in specs:
        register(spec, replace=True)
    _SCAN_WARNINGS.extend(warnings)
    return list(warnings)


# ---------------------------------------------------------------------------
# Built-in characterization scenarios
# ---------------------------------------------------------------------------

_ALL_DEVICES = ("SSD", "ESSD-1", "ESSD-2")
_ESSDS = ("ESSD-1", "ESSD-2")

register(scenario(
    "latency-grid",
    "Latency vs I/O size and queue depth for all devices (Figure 2 family)",
    devices=_ALL_DEVICES,
    base={"pattern": "randwrite", "io_count": 120, "preload": False},
    grid={"io_size": (4 * KiB, 64 * KiB, 256 * KiB), "queue_depth": (1, 4, 16)},
    tags=("latency", "paper-adjacent"),
))

register(scenario(
    "rand-vs-seq-write",
    "Random vs sequential write throughput grid (Figure 4 family)",
    devices=_ALL_DEVICES,
    base={"io_count": 300, "ramp_ios": 16, "preload": False},
    grid={"pattern": ("randwrite", "write"),
          "io_size": (16 * KiB, 64 * KiB), "queue_depth": (8, 32)},
    seed=43,
    tags=("throughput", "paper-adjacent"),
))

register(scenario(
    "rw-ratio-sweep",
    "Mixed read/write ratio sweep at fixed I/O size (Figure 5 family)",
    devices=_ALL_DEVICES,
    base={"pattern": "randrw", "io_size": 128 * KiB, "queue_depth": 16,
          "io_count": 250, "ramp_ios": 16, "preload": True},
    grid={"write_ratio": (0.0, 0.25, 0.5, 0.75, 1.0)},
    seed=57,
    tags=("throughput", "mixed"),
))

register(scenario(
    "zipf-hotspot",
    "Zipf-skewed random access: how hot-spot skew shapes latency and IOPS",
    devices=_ESSDS,
    base={"pattern": "zipfrw", "io_size": 4 * KiB, "queue_depth": 8,
          "io_count": 300, "preload": True},
    grid={"theta": (1.05, 1.2, 1.5), "write_ratio": (0.0, 0.5)},
    seed=11,
    seed_mode="derived",
    tags=("skew",),
))

register(scenario(
    "hot-cold",
    "Hot/cold locality sweep: a small hot set absorbs most of the traffic",
    devices=_ALL_DEVICES,
    base={"pattern": "hotcoldwrite", "io_size": 16 * KiB, "queue_depth": 8,
          "io_count": 300, "preload": False},
    grid={"hot_fraction": (0.05, 0.2), "hot_access_fraction": (0.7, 0.95)},
    seed=23,
    seed_mode="derived",
    tags=("skew",),
))

register(scenario(
    "bursty-duty-cycle",
    "On/off bursty writes: duty cycle vs sustained throughput and tail",
    devices=_ESSDS,
    # queue_depth stays 1: the on/off phases are per worker stream (see
    # BurstyPattern), so a single closed-loop worker is what actually makes
    # the device-level arrival process bursty.
    base={"pattern": "bursty-randwrite", "io_size": 64 * KiB, "queue_depth": 1,
          "io_count": 300, "preload": False,
          "pattern_params": (("burst_ios", 32), ("service_estimate_us", 150.0))},
    grid={"duty_cycle": (0.25, 0.5, 0.9)},
    seed=31,
    seed_mode="derived",
    tags=("bursty",),
))

register(scenario(
    "noisy-neighbor",
    "Latency-sensitive 4K random reads vs a bulk sequential writer sharing "
    "one device; sweeps the neighbor's queue depth, traces the request path",
    devices=("SSD", "ESSD-2"),
    base={"io_count": 200, "preload": True, "trace": True},
    streams={
        "victim": {"pattern": "randread", "io_size": 4 * KiB,
                   "queue_depth": 1, "io_count": 200},
        "neighbor": {"pattern": "randwrite", "io_size": 256 * KiB,
                     "io_count": 120},
    },
    grid={"neighbor.queue_depth": (1, 8, 32)},
    seed=61,
    seed_mode="derived",
    tags=("multi-tenant", "trace"),
))

register(scenario(
    "mixed-fleet",
    "SSD + ESSD-1 + ESSD-2 serving the same workload under one clock, with "
    "per-stage latency breakdowns from the trace layer",
    devices=("fleet",),
    base={"pattern": "randwrite", "queue_depth": 8, "io_count": 150,
          "preload": True, "trace": True},
    streams={
        "on-ssd": {"device": "SSD"},
        "on-essd1": {"device": "ESSD-1"},
        "on-essd2": {"device": "ESSD-2"},
    },
    grid={"io_size": (16 * KiB, 128 * KiB)},
    seed=67,
    seed_mode="derived",
    tags=("multi-tenant", "fleet", "trace"),
))

register(scenario(
    "replication",
    "Replication-factor x chunk-size grid over the EBS cluster: how much "
    "write latency and throughput the durability level and striping "
    "granularity cost",
    devices=_ESSDS,
    base={"pattern": "randwrite", "io_size": 64 * KiB, "queue_depth": 8,
          "io_count": 200, "ramp_ios": 8, "preload": False},
    grid={"replication_factor": (1, 2, 3),
          "chunk_size": (512 * KiB, 2 * MiB)},
    seed=71,
    seed_mode="derived",
    tags=("ebs", "replication"),
))

register(scenario(
    "trace-arrivals",
    "Open-loop bursty arrivals (workload/trace.py) replayed against the "
    "ESSDs: offered load and burst factor vs completion tail",
    devices=_ESSDS,
    base={"pattern": "trace-bursty", "io_size": 64 * KiB, "preload": False,
          "pattern_params": (("duration_us", 150_000.0),
                             ("period_us", 20_000.0))},
    grid={"mean_load_gbps": (0.4, 1.2), "burst_factor": (4.0, 8.0)},
    seed=83,
    seed_mode="derived",
    tags=("bursty", "trace"),
))


def _fleet_smoke_topology():
    """64+ devices across mixed SSD/ESSD groups with one replication edge."""
    from repro.cluster import edge, fleet, group, tenant

    return fleet(
        "fleet-smoke",
        groups=[
            group("web", "SSD", 16),
            group("db", "SSD", 12),
            group("db-mirror", "SSD", 12),
            group("cache", "ESSD-2", 12),
            group("bulk", "ESSD-1", 12),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4 * KiB,
                   queue_depth=2, io_count=60),
            tenant("oltp", "db", pattern="randwrite", io_size=16 * KiB,
                   queue_depth=4, io_count=60),
            tenant("lookup", "cache", pattern="randrw", io_size=16 * KiB,
                   queue_depth=4, write_ratio=0.3, io_count=40),
            tenant("ingest", "bulk", pattern="write", io_size=256 * KiB,
                   queue_depth=8, io_count=40),
        ],
        edges=[edge("db", "db-mirror", replication_factor=2)],
        epoch_us=1000.0,
        seed=101,
    )


register(scenario(
    "fleet-smoke",
    "Cluster-scale smoke fleet: 64+ mixed SSD/ESSD devices, four tenants, "
    "a 2-way replication edge; sweeps the web tier's size",
    devices=("fleet",),
    fleet=_fleet_smoke_topology(),
    grid={"fleet.web.count": (16, 24)},
    tags=("fleet", "cluster"),
))


def _datacenter_diurnal_topology():
    """Trace-driven fleet: diurnal + bursty arrival processes on ESSDs."""
    from repro.cluster import edge, fleet, group, tenant

    return fleet(
        "datacenter-diurnal",
        groups=[
            group("pl3", "ESSD-2", 16),
            group("pl3-mirror", "ESSD-2", 8),
            group("io2", "ESSD-1", 8),
        ],
        tenants=[
            tenant("diurnal", "pl3", trace="diurnal",
                   duration_us=200_000.0, mean_load_gbps=0.2,
                   peak_to_trough=4.0, io_size=64 * KiB, write_ratio=0.7),
            tenant("bursty", "io2", trace="bursty",
                   duration_us=200_000.0, mean_load_gbps=0.25,
                   burst_factor=6.0, burst_fraction=0.1,
                   period_us=25_000.0, io_size=64 * KiB),
        ],
        # The diurnal writers mirror asynchronously onto a second ESSD-2
        # tier: a long trace-driven fleet with steady replica traffic, the
        # shape the coordinator's batched run-ahead windows target.
        edges=[edge("pl3", "pl3-mirror")],
        epoch_us=5000.0,
        seed=131,
    )


register(scenario(
    "datacenter-diurnal",
    "Trace-driven fleet (workload/trace.py): a diurnal day/night curve on "
    "16 PL3 volumes next to on/off bursts on 8 io2 volumes",
    devices=("fleet",),
    fleet=_datacenter_diurnal_topology(),
    grid={"fleet.diurnal.mean_load_gbps": (0.2, 0.4)},
    tags=("fleet", "cluster", "trace"),
))

def _failover_storm_topology():
    """Replicated ESSD store with a hot spare: one device fails mid-run and
    is rebuilt onto the promoted spare while a second device drains."""
    from repro.cluster import FaultPolicy, edge, fault, fleet, group, tenant

    return fleet(
        "failover-storm",
        groups=[
            group("store", "ESSD-2", 8),
            group("mirror", "ESSD-2", 8),
            # The spare tier sits idle until a failure promotes it; no
            # preload so its first writes are the rebuild chunks.
            group("spare", "ESSD-2", 2, preload=False),
        ],
        tenants=[
            tenant("oltp", "store", pattern="randwrite", io_size=64 * KiB,
                   queue_depth=8, io_count=300),
            tenant("reads", "mirror", pattern="randread", io_size=4 * KiB,
                   queue_depth=2, io_count=300),
        ],
        edges=[edge("store", "mirror", replication_factor=2)],
        faults=[
            fault("fail", "store", at_us=1_500.0, device=0,
                  repair_after_us=8_000.0, spare="spare"),
            fault("drain", "mirror", at_us=2_500.0, device=3,
                  repair_after_us=4_000.0),
        ],
        fault_policy=FaultPolicy(rebuild_chunk_bytes=128 * KiB,
                                 shed_penalty_us=150.0),
        epoch_us=500.0,
        seed=211,
    )


register(scenario(
    "failover-storm",
    "Device failure in a replicated ESSD store: re-replication onto a hot "
    "spare competes with foreground traffic while a mirror device drains; "
    "sweeps the rebuild admission rate (chunks released per epoch)",
    devices=("fleet",),
    fleet=_failover_storm_topology(),
    grid={"fleet.fault_policy.rebuild_chunks_per_epoch": (2, 8, 32)},
    tags=("fleet", "cluster", "faults"),
))


def _gc_cliff_topology():
    """Mirrored SSD tier filling toward its GC cliff when a device fails:
    rebuild traffic lands on the survivors exactly as garbage collection
    starts charging for every foreground write."""
    from repro.cluster import FaultPolicy, edge, fault, fleet, group, tenant

    capacity = 96 * MiB
    return fleet(
        "gc-cliff",
        groups=[
            group("store", "SSD", 4, capacity_bytes=capacity, preload=False),
            group("mirror", "SSD", 4, capacity_bytes=capacity, preload=False),
        ],
        tenants=[
            # A 1.5x-capacity random-write flood: the device crosses its GC
            # cliff mid-run, and the fault below lands while it is climbing.
            tenant("flood", "store", pattern="randwrite", io_size=128 * KiB,
                   queue_depth=16, total_bytes=int(1.5 * capacity)),
        ],
        edges=[edge("store", "mirror")],
        # No spare: the rebuild storm round-robins onto the surviving store
        # devices, which are themselves deep into their flood.
        faults=[fault("fail", "store", at_us=30_000.0, device=1,
                      repair_after_us=60_000.0)],
        fault_policy=FaultPolicy(rebuild_chunk_bytes=256 * KiB,
                                 rebuild_chunks_per_epoch=4),
        epoch_us=2_000.0,
        seed=223,
    )


register(scenario(
    "gc-cliff",
    "Rebuild storm vs garbage collection: a mirrored SSD tier fails one "
    "device mid-flood; sweeps over-provisioning ratio x write-footprint "
    "utilization to map how much OP headroom the rebuild window needs",
    devices=("fleet",),
    fleet=_gc_cliff_topology(),
    grid={"fleet.store.device_params.op_ratio": (0.07, 0.2),
          "fleet.flood.region_bytes": (48 * MiB, 96 * MiB)},
    tags=("fleet", "cluster", "faults", "gc"),
))


def _macro_100k_topology():
    """100k devices as four calibrated macro groups: fleet size is a
    constant-cost parameter, so the whole run is four aggregate processes
    plus their per-tenant calibration probes."""
    from repro.cluster import fleet, group, tenant

    return fleet(
        "fleet-macro-100k",
        groups=[
            group("web", "SSD", 40_000, mode="macro"),
            group("db", "SSD", 25_000, mode="macro"),
            group("cache", "ESSD-2", 20_000, mode="macro"),
            group("bulk", "ESSD-1", 15_000, mode="macro"),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4 * KiB,
                   queue_depth=4, io_count=400),
            tenant("oltp", "db", pattern="randwrite", io_size=16 * KiB,
                   queue_depth=8, io_count=300),
            tenant("lookup", "cache", pattern="randrw", io_size=16 * KiB,
                   queue_depth=4, write_ratio=0.3, io_count=300),
            tenant("ingest", "bulk", pattern="write", io_size=256 * KiB,
                   queue_depth=8, io_count=300),
        ],
        # No edges or faults: the coordinator's fast path drains each macro
        # group in one shot, which is what makes 100k devices run in
        # seconds.  fleet --macro on fleet-smoke covers the edged case.
        epoch_us=1000.0,
        seed=241,
    )


register(scenario(
    "fleet-macro-100k",
    "Mean-field fleet at datacenter scale: 100k devices across four macro "
    "groups, advanced as calibrated aggregates (metrics approximate=True); "
    "sweeps the web tier from 40k to 60k devices",
    devices=("fleet",),
    fleet=_macro_100k_topology(),
    grid={"fleet.web.count": (40_000, 60_000)},
    tags=("fleet", "cluster", "macro"),
))


register(scenario(
    "sustained-write-flood",
    "Sustained random-write flood: GC cliff vs provider flow limit "
    "(Figure 3 family)",
    devices=_ALL_DEVICES,
    base={"pattern": "randwrite", "io_size": 128 * KiB, "queue_depth": 32,
          "total_bytes": int(1.6 * DEFAULT_SSD_CAPACITY), "preload": False,
          "series_bin_us": "auto"},
    grid={},
    seed=29,
    tags=("gc", "paper-adjacent"),
))
