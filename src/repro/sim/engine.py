"""The discrete-event simulation loop.

:class:`Simulator` keeps a heap of ``(time, priority, sequence, event)``
entries and processes them in order.  Simulation time is a float in
**microseconds** by convention throughout the repository.

Fast path
---------
Device models spend most of their event budget on *immediately-succeeding*
events: free ``Resource.request`` grants, zero-delay token-bucket grants,
relays for already-processed events, and process bootstraps.  With
``fast_path=True`` (the default) the kernel

* keeps those zero-delay, normal-priority events in a FIFO deque instead of
  the heap (O(1) instead of O(log n)), interleaved with heap entries by
  global sequence number so the processing order is **bit-identical** to
  the heap-only kernel;
* pools :class:`Timeout` and kernel-created grant :class:`Event` objects,
  recycling them (callback list included) once their callbacks have run,
  provided every callback was a plain process resumption -- events held by
  conditions or user code are never recycled (see the pooling discipline
  note in :mod:`repro.sim.events`);
* runs :meth:`Simulator.run` as a tight inlined loop instead of a chain of
  ``step``/``dispatch`` method calls.

Timer wheel
-----------
Delayed events bucket by exact deadline on a **timer wheel**
(``timer_wheel=True``, the default, effective only on the fast path).  The
schedule is a three-level hierarchy:

1. zero-delay, normal-priority events -- the FIFO deque above;
2. near-future deadlines (``delay <= wheel_horizon_us``) -- one wheel slot
   per *distinct* deadline.  Same-deadline timeouts append to their slot in
   O(1) (device fleets synchronize on shared service times and epoch
   grids, so slots run fat); only the first event at a new deadline pays a
   push onto the small heap of distinct slot times;
3. far-future deadlines and urgent-priority events cascade to the classic
   binary heap.

The run loop pops the minimum of the three by ``(time, priority,
sequence)``: slot entries are appended in sequence order and all carry
normal priority, so the merged order is **bit-identical** to both the
heap-only kernel and the pre-wheel fast path (``timer_wheel=False``).

``fast_path=False`` restores the original heap-only, allocation-per-event
behavior; the kernel microbenchmark (``benchmarks/test_bench_kernel.py``)
runs both and records the speedup in ``BENCH_kernel.json``.

The kernel relies on one invariant user code must keep (it always has):
callbacks are never appended to an event that is already being processed.
"""

from __future__ import annotations

import heapq
from collections import deque
from types import MethodType
from typing import Any, Deque, Generator, Iterable, Optional

from repro.sim.events import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)

__all__ = ["EmptySchedule", "Simulator", "PRIORITY_NORMAL", "PRIORITY_URGENT"]

#: Upper bound on each object pool (events / timeouts) so a burst of traffic
#: cannot pin an unbounded amount of memory.
_POOL_LIMIT = 512

#: Default wheel horizon (microseconds).  Deadlines further out than this
#: skip the wheel and go straight to the heap: far-future timers are rare,
#: rarely share deadlines, and would only bloat the heap of slot times.
DEFAULT_WHEEL_HORIZON_US = 65536.0

_PROCESS_RESUME = Process._resume


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulation clock value (microseconds).
    fast_path:
        Enable the zero-delay deque, object pooling, and the inlined run
        loop (see module docstring).  Event ordering is identical either
        way.
    timer_wheel:
        Bucket near-future deadlines on the timer wheel (fast path only).
        ``False`` restores the pre-wheel fast path, again with identical
        event ordering.
    wheel_horizon_us:
        Deadlines more than this far in the future bypass the wheel and
        land on the heap directly.

    Examples
    --------
    >>> sim = Simulator()
    >>> results = []
    >>> def producer():
    ...     yield sim.timeout(5)
    ...     results.append(sim.now)
    >>> _ = sim.process(producer())
    >>> sim.run()
    >>> results
    [5.0]
    """

    def __init__(self, start_time: float = 0.0, fast_path: bool = True,
                 timer_wheel: bool = True,
                 wheel_horizon_us: float = DEFAULT_WHEEL_HORIZON_US):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Zero-delay, normal-priority events at the *current* time, FIFO by
        #: sequence number (stored on the event as ``_seq`` to avoid a tuple
        #: per entry).  Invariant: while non-empty, every entry was scheduled
        #: at ``self._now`` (time never regresses and the run loop drains
        #: this deque before advancing the clock).
        self._immediate: Deque[Event] = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self.fast_path = bool(fast_path)
        self.timer_wheel = bool(timer_wheel) and self.fast_path
        #: Wheel slots: exact deadline -> events at that deadline, appended
        #: in sequence order (so a slot is already internally sorted).  All
        #: slot entries are normal priority and every slot time is strictly
        #: in the future: the moment the clock reaches the minimum slot,
        #: the run loop moves the whole slot onto the immediate deque --
        #: the slot *is* a batch of "events at the current time, FIFO by
        #: sequence", so the deque invariant carries over and per-event
        #: processing rides the deque fast path.
        self._wheel_buckets: dict[float, list[Event]] = {}
        #: Min-heap of the distinct slot times (one entry per live slot).
        self._wheel_times: list[float] = []
        #: Scheduling gate: delays in (0, _wheel_gate] go to the wheel.  A
        #: negative gate (wheel disabled) routes every delay to the heap.
        self._wheel_gate = float(wheel_horizon_us) if self.timer_wheel else -1.0
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self._process_pool: list[Process] = []

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def pending_events(self) -> int:
        """Number of events still sitting in the schedule."""
        return len(self._queue) + len(self._immediate) + \
            sum(len(bucket) for bucket in self._wheel_buckets.values())

    @property
    def scheduled_events(self) -> int:
        """Total events ever scheduled (the microbenchmark's event count)."""
        return self._sequence

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._processed = False
            timeout._defused = False
            # _triggered/_ok stay True; the callback list was cleared when
            # the object was pooled.  The scheduling cascade below mirrors
            # _schedule's fast path (deque -> wheel slot -> heap).
            self._sequence = seq = self._sequence + 1
            timeout._seq = seq
            if delay == 0.0:
                self._immediate.append(timeout)
            elif delay <= self._wheel_gate:
                time = self._now + delay
                if time <= self._now:
                    # Sub-resolution delay: already due (see _schedule).
                    self._immediate.append(timeout)
                else:
                    bucket = self._wheel_buckets.get(time)
                    if bucket is None:
                        self._wheel_buckets[time] = [timeout]
                        heapq.heappush(self._wheel_times, time)
                    else:
                        bucket.append(timeout)
            else:
                heapq.heappush(self._queue, (self._now + delay, PRIORITY_NORMAL,
                                             seq, timeout))
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def _fresh_event(self) -> Event:
        """A kernel-owned (recyclable) event for grants/bootstraps/relays."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = None
            event._ok = True
            event._triggered = False
            event._processed = False
            event._defused = False
            return event
        event = Event(self)
        event._pool_ok = True
        return event

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        self._sequence = seq = self._sequence + 1
        if priority == PRIORITY_NORMAL and self.fast_path:
            if delay == 0.0:
                event._seq = seq
                self._immediate.append(event)
                return
            if delay <= self._wheel_gate:
                event._seq = seq
                time = self._now + delay
                if time <= self._now:
                    # A positive delay below the clock's float resolution
                    # rounds to "already due": the deque keeps it in exact
                    # sequence order (a slot keyed at the current time
                    # would be overtaken by zero-delay events and break
                    # bit-identity with the heap kernels).
                    self._immediate.append(event)
                    return
                bucket = self._wheel_buckets.get(time)
                if bucket is None:
                    self._wheel_buckets[time] = [event]
                    heapq.heappush(self._wheel_times, time)
                else:
                    bucket.append(event)
                return
        heapq.heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if self._immediate:
            return self._now
        next_time = float("inf")
        if self._wheel_times:
            next_time = self._wheel_times[0]
        if self._queue and self._queue[0][0] < next_time:
            next_time = self._queue[0][0]
        return next_time

    def _activate_wheel_slot(self) -> None:
        """Advance the clock to the minimum wheel slot and move the whole
        slot onto the immediate deque: the slot is exactly a batch of
        events at the new current time, FIFO by sequence number, so the
        deque invariant carries over verbatim."""
        wheel_time = heapq.heappop(self._wheel_times)
        self._immediate.extend(self._wheel_buckets.pop(wheel_time))
        self._now = wheel_time

    def _next_event(self) -> Event:
        """Pop the next event in (time, priority, sequence) order."""
        immediate = self._immediate
        queue = self._queue
        if not immediate and self._wheel_times:
            # The minimum wheel slot becomes current unless a heap entry
            # precedes its head by (time, priority, sequence).  At an exact
            # time tie the slot is parked on the deque either way (losing
            # slots must not stay behind a dispatch that may append
            # zero-delay events with larger sequence numbers); the deque
            # branch below then re-merges against the heap.
            wheel_time = self._wheel_times[0]
            if not queue or queue[0][0] >= wheel_time:
                self._activate_wheel_slot()
        if immediate:
            if queue:
                entry = queue[0]
                # The 3-tuple on the right is always decisive before the
                # comparison could reach entry[3] (sequence numbers are
                # unique), so the event object is never compared.
                if entry < (self._now, PRIORITY_NORMAL, immediate[0]._seq):
                    heapq.heappop(queue)
                    self._now = entry[0]
                    return entry[3]
            return immediate.popleft()
        if not queue:
            raise EmptySchedule()
        event_time, _priority, _seq, event = heapq.heappop(queue)
        self._now = event_time
        return event

    def _maybe_recycle(self, event: Event) -> None:
        cls = event.__class__
        if cls is Timeout:
            if event._ok and len(self._timeout_pool) < _POOL_LIMIT:
                self._timeout_pool.append(event)
        elif event._pool_ok and event._ok:
            if cls is Event:
                if len(self._event_pool) < _POOL_LIMIT:
                    self._event_pool.append(event)
            elif cls is Process:
                if len(self._process_pool) < _POOL_LIMIT:
                    event.generator = None
                    event._waiting_on = None
                    self._process_pool.append(event)

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        if not self.fast_path:
            self._step_legacy()
            return
        self._dispatch_checked(self._next_event())

    def _dispatch_checked(self, event: Event) -> None:
        """Dispatch with the pooling-safety audit (see :meth:`_run_fast`)."""
        if not self.fast_path:
            event._run_callbacks()
            return
        event._processed = True
        callbacks = event.callbacks
        recyclable = True
        for callback in callbacks:
            if type(callback) is not MethodType or callback.__func__ is not _PROCESS_RESUME:
                recyclable = False
            callback(event)
        callbacks.clear()
        if not event._ok and not event._defused:
            raise event._value
        if recyclable and callbacks.__len__() == 0:
            self._maybe_recycle(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until the schedule is exhausted.
            * a float -- run until simulation time reaches that value.
            * an :class:`Event` -- run until that event has been processed and
              return its value.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})")

        if self.fast_path:
            return self._run_fast(stop_event, stop_time)
        return self._run_legacy(stop_event, stop_time)

    def _step_legacy(self) -> None:
        """The pre-refactor ``step()``: heap pop + callback swap, verbatim."""
        if not self._queue:
            raise EmptySchedule()
        event_time, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = event_time
        event._run_callbacks()

    def _run_legacy(self, stop_event: Optional[Event],
                    stop_time: Optional[float]) -> Any:
        """The pre-refactor run loop, kept verbatim so ``fast_path=False``
        is a faithful baseline for the kernel microbenchmark."""
        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            self._step_legacy()
        return self._finish(stop_event, stop_time)

    def _run_fast(self, stop_event: Optional[Event],
                  stop_time: Optional[float]) -> Any:
        """Inlined fast-path loop: deque-first pop, in-place callback run,
        object recycling -- identical event order to :meth:`_run_legacy`.

        Per-event overhead is kept minimal: the stop-event test runs *after*
        each dispatch (equivalent to the legacy top-of-loop test, since the
        event only flips to processed inside a dispatch), and the stop-time
        test runs only when the clock would advance (heap pops) -- immediate
        events never move the clock.  A heap entry can only preempt the
        deque when its time has already been reached, so the common case
        costs one float comparison.
        """
        queue = self._queue
        immediate = self._immediate
        wheel_times = self._wheel_times
        wheel_buckets = self._wheel_buckets
        heappop = heapq.heappop
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        process_pool = self._process_pool
        event_cls = Event
        timeout_cls = Timeout
        process_cls = Process
        method_type = MethodType
        resume = _PROCESS_RESUME
        if stop_event is not None and stop_event._processed:
            return stop_event._value
        now = self._now  # local clock mirror; every write updates both
        while True:
            # -- pop next (deque vs wheel vs heap by (time, prio, seq)) ----
            # Wheel slot times are strictly in the future while the deque is
            # non-empty (a slot moves wholesale onto the deque the moment
            # the clock reaches it), so the deque branch only ever has to
            # merge against the heap -- exactly the pre-wheel logic.
            if immediate:
                event = None
                if queue:
                    entry = queue[0]
                    # Invariant: self._now <= stop_time whenever stop_time is
                    # set, so a same-time heap entry needs no stop check.
                    if entry[0] <= now and \
                            entry < (now, PRIORITY_NORMAL, immediate[0]._seq):
                        heappop(queue)
                        event = entry[3]
                if event is None:
                    event = immediate.popleft()
            elif wheel_times:
                wheel_time = wheel_times[0]
                entry = None
                if queue:
                    entry = queue[0]
                    if entry[0] > wheel_time or (
                            entry[0] == wheel_time and (
                                wheel_time, PRIORITY_NORMAL,
                                wheel_buckets[wheel_time][0]._seq) < entry):
                        entry = None
                if entry is not None:
                    if stop_time is not None and entry[0] > stop_time:
                        self._now = stop_time
                        return None
                    heappop(queue)
                    if entry[0] == wheel_time:
                        # The slot shares the heap entry's time: park it on
                        # the deque *before* dispatching, so zero-delay
                        # events scheduled by the dispatch (larger seq)
                        # cannot overtake the slot's entries.
                        heappop(wheel_times)
                        immediate.extend(wheel_buckets.pop(wheel_time))
                    self._now = now = entry[0]
                    event = entry[3]
                else:
                    if stop_time is not None and wheel_time > stop_time:
                        self._now = stop_time
                        return None
                    # Activate the slot: the clock advances to its time and
                    # the whole batch continues on the deque fast path.
                    heappop(wheel_times)
                    bucket = wheel_buckets.pop(wheel_time)
                    self._now = now = wheel_time
                    if len(bucket) == 1:
                        event = bucket[0]
                    else:
                        immediate.extend(bucket)
                        event = immediate.popleft()
            elif queue:
                entry = queue[0]
                if stop_time is not None and entry[0] > stop_time:
                    self._now = stop_time
                    return None
                heappop(queue)
                self._now = now = entry[0]
                event = entry[3]
            else:
                break
            # -- dispatch (inline _dispatch_checked) -----------------------
            event._processed = True
            callbacks = event.callbacks
            if len(callbacks) == 1:
                # The overwhelmingly common case: one process resumption.
                callback = callbacks[0]
                callback(event)
                callbacks.clear()
                if not event._ok and not event._defused:
                    raise event._value
                if not callbacks and type(callback) is method_type \
                        and callback.__func__ is resume:
                    cls = event.__class__
                    if cls is timeout_cls:
                        if event._ok and len(timeout_pool) < _POOL_LIMIT:
                            timeout_pool.append(event)
                    elif cls is event_cls and event._pool_ok and event._ok:
                        if len(event_pool) < _POOL_LIMIT:
                            event_pool.append(event)
                    elif cls is process_cls and event._pool_ok and event._ok:
                        if len(process_pool) < _POOL_LIMIT:
                            event.generator = None
                            event._waiting_on = None
                            process_pool.append(event)
            elif callbacks:
                recyclable = True
                for callback in callbacks:
                    if type(callback) is not method_type or callback.__func__ is not resume:
                        recyclable = False
                    callback(event)
                callbacks.clear()
                if not event._ok and not event._defused:
                    raise event._value
                if recyclable and not callbacks:
                    cls = event.__class__
                    if cls is timeout_cls:
                        if event._ok and len(timeout_pool) < _POOL_LIMIT:
                            timeout_pool.append(event)
                    elif cls is event_cls and event._pool_ok and event._ok:
                        if len(event_pool) < _POOL_LIMIT:
                            event_pool.append(event)
                    elif cls is process_cls and event._pool_ok and event._ok:
                        if len(process_pool) < _POOL_LIMIT:
                            event.generator = None
                            event._waiting_on = None
                            process_pool.append(event)
            elif not event._ok and not event._defused:
                raise event._value
            if stop_event is not None and stop_event._processed:
                return stop_event._value
        return self._finish(stop_event, stop_time)

    def _finish(self, stop_event: Optional[Event],
                stop_time: Optional[float]) -> Any:
        """Common run() epilogue once the schedule has drained."""
        if stop_event is not None:
            if stop_event._processed:
                return stop_event._value
            raise SimulationError(
                "run() ran out of events before the 'until' event triggered")
        if stop_time is not None:
            self._now = max(self._now, stop_time)
        return None

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Run until the schedule is empty; return the number of events processed.

        ``max_events`` acts as a safety valve against runaway simulations.
        """
        processed = 0
        while self._queue or self._immediate or self._wheel_times:
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            processed += 1
        return processed
