#!/usr/bin/env python3
"""Quickstart: simulate the three devices of the paper and print the contract.

Runs a small FIO-style workload against the local SSD and the two ESSD
profiles, prints the latency gap (Observation 1 in miniature), and then runs
the contract checker for ESSD-1.

Usage::

    python examples/quickstart.py
"""

from repro import (
    ContractChecker,
    EssdDevice,
    FioJob,
    Simulator,
    SsdDevice,
    UNWRITTEN_CONTRACT,
    alibaba_pl3_profile,
    aws_io2_profile,
    run_job,
    samsung_970pro_profile,
)
from repro.core import CheckerConfig
from repro.host.io import KiB, MiB


def measure(device_name: str, make_device, pattern: str, io_size: int,
            queue_depth: int) -> float:
    """Run a short job on a fresh device and return its mean latency (us)."""
    sim = Simulator()
    device = make_device(sim)
    device.preload()
    job = FioJob(name="demo", pattern=pattern, io_size=io_size,
                 queue_depth=queue_depth, io_count=200)
    result = run_job(sim, device, job)
    print(f"  {device_name:8s} {pattern:10s} {io_size // KiB:>4d}KiB QD{queue_depth:<2d} "
          f"mean {result.latency.mean():8.1f} us   P99.9 {result.latency.p999():9.1f} us   "
          f"{result.throughput_gbps:5.2f} GB/s")
    return result.latency.mean()


def main() -> None:
    print(UNWRITTEN_CONTRACT.describe())
    print()

    devices = {
        "SSD": lambda sim: SsdDevice(sim, samsung_970pro_profile(256 * MiB)),
        "ESSD-1": lambda sim: EssdDevice(sim, aws_io2_profile(512 * MiB)),
        "ESSD-2": lambda sim: EssdDevice(sim, alibaba_pl3_profile(512 * MiB)),
    }

    print("Small unscaled I/Os (4 KiB, QD1) -- the latency gap at its worst:")
    small = {name: measure(name, make, "randwrite", 4 * KiB, 1)
             for name, make in devices.items()}
    print("Scaled-up I/Os (256 KiB, QD8) -- the gap shrinks:")
    large = {name: measure(name, make, "randwrite", 256 * KiB, 8)
             for name, make in devices.items()}

    for essd in ("ESSD-1", "ESSD-2"):
        print(f"  {essd}: latency gap {small[essd] / small['SSD']:.1f}x at 4KiB/QD1 "
              f"-> {large[essd] / large['SSD']:.1f}x at 256KiB/QD8")

    print("\nRunning the contract checker against ESSD-1 (this takes a minute)...")
    checker = ContractChecker(config=CheckerConfig(
        ssd_capacity_bytes=128 * MiB,
        essd_capacity_bytes=256 * MiB,
        latency_ios=150,
        gc_write_capacity_factor=1.5,
        throughput_window_us=80_000.0,
    ))
    report = checker.run()
    print(report.summary())


if __name__ == "__main__":
    main()
