"""Figure 4: random-write throughput and its gain over sequential writes.

For each device, I/O size, and queue depth, the experiment measures the
throughput of random writes and of sequential writes and reports the
random-over-sequential gain.  The paper's headline numbers are gains of up to
1.52x (ESSD-1) and 2.79x (ESSD-2) while the local SSD shows no meaningful
difference before GC kicks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import (
    DeviceKind,
    ExperimentScale,
    format_table,
    measure_cell,
)
from repro.host.io import KiB
from repro.metrics.stats import throughput_gain
from repro.workload.fio import FioJob

#: Full paper grid.
PAPER_IO_SIZES = (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB)
PAPER_QUEUE_DEPTHS = (1, 2, 4, 8, 16, 32)
#: Reduced default grid.
DEFAULT_IO_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB)
DEFAULT_QUEUE_DEPTHS = (1, 8, 32)


@dataclass(frozen=True)
class ThroughputCell:
    """Random and sequential write throughput at one (size, depth) point."""

    device: DeviceKind
    io_size: int
    queue_depth: int
    random_gbps: float
    sequential_gbps: float

    @property
    def gain(self) -> float:
        return throughput_gain(self.random_gbps, self.sequential_gbps)


@dataclass
class Figure4Result:
    """The full random-vs-sequential write grid."""

    cells: list[ThroughputCell] = field(default_factory=list)

    def cell(self, device: DeviceKind, io_size: int, queue_depth: int) -> ThroughputCell:
        for cell in self.cells:
            if (cell.device is device and cell.io_size == io_size
                    and cell.queue_depth == queue_depth):
                return cell
        raise KeyError((device, io_size, queue_depth))

    def max_gain(self, device: DeviceKind) -> float:
        gains = [cell.gain for cell in self.cells if cell.device is device]
        return max(gains) if gains else 0.0

    def gain_grid(self, device: DeviceKind) -> dict[tuple[int, int], tuple[float, float]]:
        """{(io_size, queue_depth): (random_gbps, sequential_gbps)} for advisors."""
        return {(cell.io_size, cell.queue_depth): (cell.random_gbps, cell.sequential_gbps)
                for cell in self.cells if cell.device is device}

    def render(self, device: DeviceKind) -> str:
        headers = ["IO size", "QD", "Random GB/s", "Sequential GB/s", "Gain"]
        rows = []
        for cell in self.cells:
            if cell.device is not device:
                continue
            rows.append([
                f"{cell.io_size // KiB}KiB",
                str(cell.queue_depth),
                f"{cell.random_gbps:.2f}",
                f"{cell.sequential_gbps:.2f}",
                f"{cell.gain:.2f}x",
            ])
        return (f"Random vs sequential write throughput of {device.value} (Figure 4)\n"
                + format_table(headers, rows))


def run_figure4(scale: Optional[ExperimentScale] = None,
                io_sizes: Sequence[int] = DEFAULT_IO_SIZES,
                queue_depths: Sequence[int] = DEFAULT_QUEUE_DEPTHS,
                ios_per_cell: int = 800,
                devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                 DeviceKind.ESSD2)) -> Figure4Result:
    """Measure the Figure 4 grid (bounded I/O count per cell)."""
    scale = scale or ExperimentScale.default()
    result = Figure4Result()
    for device in devices:
        for io_size in io_sizes:
            for queue_depth in queue_depths:
                throughputs = {}
                for pattern in ("randwrite", "write"):
                    job = FioJob(
                        name=f"fig4-{device.value}-{pattern}-{io_size}-{queue_depth}",
                        pattern=pattern,
                        io_size=io_size,
                        queue_depth=queue_depth,
                        io_count=max(ios_per_cell, queue_depth * 30),
                        ramp_ios=queue_depth,
                        seed=43,
                    )
                    throughputs[pattern] = measure_cell(device, job, scale,
                                                        preload=False).throughput_gbps
                result.cells.append(ThroughputCell(
                    device=device,
                    io_size=io_size,
                    queue_depth=queue_depth,
                    random_gbps=throughputs["randwrite"],
                    sequential_gbps=throughputs["write"],
                ))
    return result
