"""NAND-flash substrate: geometry, operation timing, and die scheduling.

The local SSD model in :mod:`repro.ssd` is built on top of this package.
The abstraction level follows classic SSD simulators: the *die* is the unit
of parallelism, the *page* is the unit of read/program, and the *block* is
the unit of erase.  Channel bandwidth is modelled as a shared bus per
channel that data transfers must reserve.
"""

from repro.flash.geometry import FlashAddress, FlashGeometry
from repro.flash.timing import FlashTiming
from repro.flash.chip import FlashArray, FlashOp

__all__ = [
    "FlashAddress",
    "FlashGeometry",
    "FlashTiming",
    "FlashArray",
    "FlashOp",
]
