"""Corner-case semantics of the simulation kernel.

These tests lock the exact observable behavior of the scheduler --
interleaving of same-time events, interrupt-during-wait, composite events
with already-triggered children, ``run(until=event)`` failure handling --
so the fast-path kernel (immediate-event deque, object pooling) provably
preserves the semantics of the original heap-only kernel.  Every test runs
against both kernels via the ``kernel`` fixture.
"""

import pytest

from repro.sim import Interrupt, Resource, Simulator
from repro.sim.events import SimulationError


@pytest.fixture(params=["fast", "prewheel", "legacy"])
def make_sim(request):
    """Simulator factory for every kernel variant: the timer-wheel fast
    path (default), the pre-wheel fast path, and the legacy kernel."""
    def factory():
        return Simulator(fast_path=(request.param != "legacy"),
                         timer_wheel=(request.param == "fast"))
    return factory


# ---------------------------------------------------------------------------
# Same-time interleaving: zero-delay events vs heap events
# ---------------------------------------------------------------------------

def test_zero_delay_events_interleave_with_heap_events_in_seq_order(make_sim):
    """Events scheduled earlier for time T run before zero-delay events
    scheduled *at* time T (FIFO by global sequence number)."""
    sim = make_sim()
    order = []

    def early(label):
        yield sim.timeout(5)
        order.append(label)

    def trigger():
        yield sim.timeout(5)
        order.append("trigger")
        gate.succeed()

    def waiter():
        yield gate
        order.append("gate")

    gate = sim.event()
    # a's timeout is scheduled before trigger's, both land at t=5; the gate
    # fires with zero delay *while* t=5 events are still pending.
    sim.process(trigger())
    sim.process(early("a"))
    sim.process(early("b"))
    sim.process(waiter())
    sim.run()
    assert order == ["trigger", "a", "b", "gate"]


def test_process_resumed_by_processed_event_keeps_fifo_position(make_sim):
    """Yielding an already-processed event resumes on the next same-time
    turn, after events that were already scheduled."""
    sim = make_sim()
    order = []
    done = sim.event()
    done.succeed("early")

    def sibling():
        yield sim.timeout(0)
        order.append("sibling")

    def late_yielder():
        yield sim.timeout(0)
        value = yield done  # already processed by now
        order.append(("late", value))

    sim.process(late_yielder())
    sim.process(sibling())
    sim.run()
    assert order == ["sibling", ("late", "early")]


def test_immediate_resource_grants_preserve_fifo(make_sim):
    sim = make_sim()
    resource = Resource(sim, capacity=1)
    order = []

    def user(label, hold):
        yield resource.request()
        order.append(("got", label, sim.now))
        yield sim.timeout(hold)
        resource.release()

    for label, hold in (("a", 3), ("b", 2), ("c", 1)):
        sim.process(user(label, hold))
    sim.run()
    assert order == [("got", "a", 0.0), ("got", "b", 3.0), ("got", "c", 5.0)]


# ---------------------------------------------------------------------------
# Interrupt during a resource wait
# ---------------------------------------------------------------------------

def test_interrupt_during_resource_wait_detaches_from_grant(make_sim):
    """An interrupted waiter gets the Interrupt at the current time.  Its
    orphaned grant event still receives the slot on release (the historical
    semantics this suite locks): a third requester must wait for another
    release."""
    sim = make_sim()
    resource = Resource(sim, capacity=1)
    log = []

    def holder():
        yield resource.request()
        yield sim.timeout(50)
        resource.release()

    def waiter():
        try:
            yield resource.request()
            log.append("granted")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def interrupter(target):
        yield sim.timeout(10)
        target.interrupt("cancelled")

    def third():
        yield sim.timeout(20)
        yield resource.request()
        log.append(("third", sim.now))
        resource.release()

    sim.process(holder())
    target = sim.process(waiter())
    sim.process(interrupter(target))
    sim.process(third())
    sim.run(until=200)
    assert ("interrupted", 10.0, "cancelled") in log
    assert "granted" not in log
    # The slot released at t=50 goes to the orphaned event of the interrupted
    # waiter, so the third requester never acquires it.
    assert not any(entry[0] == "third" for entry in log)
    assert resource.users == 1


def test_interrupt_during_store_get_keeps_item_for_others(make_sim):
    from repro.sim import Store
    sim = make_sim()
    store = Store(sim)
    log = []

    def consumer(label):
        item = yield store.get()
        log.append((label, item))

    def impatient():
        try:
            yield store.get()
        except Interrupt:
            log.append("gave up")

    def producer():
        yield sim.timeout(5)
        target.interrupt()
        yield store.put("x")

    target = sim.process(impatient())
    sim.process(producer())
    sim.process(consumer("late"))
    sim.run()
    assert "gave up" in log
    # Historical semantics: the orphaned getter still swallows the first put.
    assert ("late", "x") not in log


# ---------------------------------------------------------------------------
# Conditions with already-triggered / already-processed children
# ---------------------------------------------------------------------------

def test_all_of_with_already_processed_children_triggers_immediately(make_sim):
    sim = make_sim()
    first = sim.timeout(1, value="a")
    second = sim.timeout(2, value="b")
    sim.run()
    assert first.processed and second.processed

    seen = []

    def proc():
        values = yield sim.all_of([first, second])
        seen.append((sim.now, sorted(values.values())))

    sim.process(proc())
    sim.run()
    assert seen == [(2.0, ["a", "b"])]


def test_any_of_with_one_processed_child_collects_only_processed(make_sim):
    sim = make_sim()
    done = sim.timeout(1, value="ready")
    sim.run()
    pending = sim.event()

    seen = []

    def proc():
        values = yield sim.any_of([pending, done])
        seen.append(list(values.values()))

    sim.process(proc())
    sim.run()
    assert seen == [["ready"]]
    assert not pending.triggered


def test_all_of_mixed_processed_and_pending_children(make_sim):
    sim = make_sim()
    done = sim.timeout(1, value="first")
    sim.run()

    seen = []

    def proc():
        late = sim.timeout(10, value="second")
        values = yield sim.all_of([done, late])
        seen.append((sim.now, sorted(values.values())))

    sim.process(proc())
    sim.run()
    assert seen == [(11.0, ["first", "second"])]


def test_condition_value_supports_mapping_protocol(make_sim):
    sim = make_sim()
    results = []

    def proc():
        a = sim.timeout(1, value="a")
        b = sim.timeout(2, value="b")
        values = yield sim.all_of([a, b])
        results.append((values[a], values[b], len(values), dict(values)))

    sim.process(proc())
    sim.run()
    a_value, b_value, length, as_dict = results[0]
    assert (a_value, b_value, length) == ("a", "b", 2)
    assert sorted(as_dict.values()) == ["a", "b"]


# ---------------------------------------------------------------------------
# run(until=event) failure semantics
# ---------------------------------------------------------------------------

def test_run_until_failed_event_raises_when_unhandled(make_sim):
    sim = make_sim()
    event = sim.event()

    def failer():
        yield sim.timeout(3)
        event.fail(RuntimeError("exploded"))

    sim.process(failer())
    with pytest.raises(RuntimeError, match="exploded"):
        sim.run(until=event)


def test_run_until_failed_event_returns_exception_when_defused(make_sim):
    sim = make_sim()
    event = sim.event()

    def failer():
        yield sim.timeout(3)
        event.defuse()
        event.fail(RuntimeError("handled"))

    sim.process(failer())
    value = sim.run(until=event)
    assert isinstance(value, RuntimeError)
    assert str(value) == "handled"


def test_run_until_event_never_triggered_raises(make_sim):
    sim = make_sim()
    event = sim.event()
    sim.process(iter_timeout(sim, 5))
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(until=event)


def test_run_until_failed_process_propagates_exception(make_sim):
    sim = make_sim()

    def bad():
        yield sim.timeout(1)
        raise ValueError("process died")

    process = sim.process(bad())
    with pytest.raises(ValueError, match="process died"):
        sim.run(until=process)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


# ---------------------------------------------------------------------------
# Pooling discipline: recycled objects never corrupt retained references
# ---------------------------------------------------------------------------

def test_condition_children_survive_heavy_timeout_churn(make_sim):
    """Timeouts held by a condition must not be recycled while the condition
    is still pending, even under heavy timeout traffic."""
    sim = make_sim()
    seen = []

    def churn():
        for _ in range(200):
            yield sim.timeout(0.25)

    def proc():
        early = sim.timeout(1, value="early")
        late = sim.timeout(40, value="late")
        values = yield sim.all_of([early, late])
        seen.append(sorted(values.values()))

    sim.process(churn())
    sim.process(proc())
    sim.run()
    assert seen == [["early", "late"]]


#: The three kernel variants that must stay bit-identical: the legacy
#: heap-only kernel, the pre-wheel fast path, and the timer-wheel fast path.
KERNEL_VARIANTS = (
    {"fast_path": False},
    {"fast_path": True, "timer_wheel": False},
    {"fast_path": True, "timer_wheel": True},
)


def test_fast_legacy_and_wheel_kernels_produce_identical_traces():
    """End-to-end determinism check: a workload mixing resources, stores,
    conditions, and zero-delay events runs identically on all kernels."""
    def run_workload(**kernel):
        sim = Simulator(**kernel)
        resource = Resource(sim, capacity=2)
        trace = []

        def worker(label, delay):
            for i in range(5):
                yield resource.request()
                trace.append((sim.now, label, i))
                yield sim.timeout(delay)
                resource.release()
                yield sim.timeout(0)

        for label, delay in (("a", 3.0), ("b", 2.0), ("c", 0.0), ("d", 1.5)):
            sim.process(worker(label, delay))
        sim.run()
        return trace

    legacy, prewheel, wheel = (run_workload(**kernel)
                               for kernel in KERNEL_VARIANTS)
    assert legacy == prewheel == wheel


def test_kernel_variants_identical_across_horizon_and_time_ties():
    """Randomized cross-check: delays straddling the wheel horizon (slots
    vs heap cascade), colliding deadlines, and zero-delay events must order
    identically on every kernel -- including at exact time ties between a
    heap entry (far-scheduled) and a wheel slot (near-scheduled) for the
    same deadline."""
    import random

    def run_workload(**kernel):
        sim = Simulator(wheel_horizon_us=50.0, **kernel)
        out = []

        def worker(wid):
            rng = random.Random(wid)
            for i in range(40):
                delay = rng.choice(
                    [0.0, 0.5, 1.0, 1.0, 7.25, 49.9, 50.0, 50.1, 200.0])
                yield sim.timeout(delay)
                out.append((sim.now, wid, i))

        for wid in range(16):
            sim.process(worker(wid))
        sim.run()
        return out

    legacy, prewheel, wheel = (run_workload(**kernel)
                               for kernel in KERNEL_VARIANTS)
    assert legacy == prewheel == wheel


# ---------------------------------------------------------------------------
# Fast-path flattening: inline resource grants, batched token buckets, and
# pooled submission processes must trace bit-identically on every kernel
# ---------------------------------------------------------------------------

def _run_on_all_kernels(workload):
    return tuple(workload(Simulator(**kernel)) for kernel in KERNEL_VARIANTS)


def test_resource_grants_trace_identically_contended_and_uncontended():
    """The inline uncontended grant (no event allocation, no scheduler
    bounce) and the queued contended grant must produce the same trace:
    phases of a single worker (always uncontended) alternate with phases
    of four workers fighting over two slots."""
    def workload(sim):
        from repro.sim import Resource
        resource = Resource(sim, capacity=2)
        trace = []

        def solo():
            for i in range(6):
                yield resource.request()
                trace.append(("solo", sim.now, i, resource.users,
                              resource.queue_length))
                yield sim.timeout(1.0)
                resource.release()
                yield sim.timeout(9.0)  # drain: next acquire is uncontended

        def crowd(label):
            yield sim.timeout(20.0)  # overlap the middle solo phases
            for i in range(4):
                yield resource.request()
                trace.append((label, sim.now, i, resource.users,
                              resource.queue_length))
                yield sim.timeout(2.5)
                resource.release()

        sim.process(solo())
        for label in ("w0", "w1", "w2", "w3"):
            sim.process(crowd(label))
        sim.run()
        return trace

    legacy, prewheel, wheel = _run_on_all_kernels(workload)
    assert legacy == prewheel == wheel


def test_token_bucket_batched_grants_trace_identically():
    """`consume_sliced` collapses a fully-covered transfer into one grant
    and `consume` grants inline when uncontended; both must keep grant
    times identical to the generic queued path on every kernel.  The
    workload mixes covered amounts (batched single grant), amounts above
    capacity (forced multi-slice), and FIFO contention between workers."""
    def workload(sim):
        from repro.sim.resources import TokenBucket
        bucket = TokenBucket(sim, rate=4.0, capacity=64.0)
        trace = []

        def consumer(label, amounts, start):
            yield sim.timeout(start)
            for i, amount in enumerate(amounts):
                if amount > 16.0:
                    yield from bucket.consume_sliced(amount)
                else:
                    yield bucket.consume(amount)
                trace.append((label, sim.now, i, round(bucket.tokens, 9)))

        # a: uncontended covered grants; b/c: contended, straddling
        # capacity (sliced) and sub-slice amounts interleaved FIFO.
        sim.process(consumer("a", [8.0, 8.0, 8.0], 0.0))
        sim.process(consumer("b", [48.0, 96.0], 5.0))
        sim.process(consumer("c", [4.0, 4.0, 120.0], 5.0))
        sim.run()
        return trace

    legacy, prewheel, wheel = _run_on_all_kernels(workload)
    assert legacy == prewheel == wheel


def test_interrupted_resource_waiter_traces_identically():
    """Interrupting a queued waiter (cancel-while-waiting) must leave the
    same grant order and timestamps on every kernel, including the slot
    that passes through the interrupted waiter's orphaned event."""
    def workload(sim):
        from repro.sim import Resource
        resource = Resource(sim, capacity=1)
        trace = []

        def holder():
            yield resource.request()
            trace.append(("holder", sim.now))
            yield sim.timeout(30.0)
            resource.release()

        def waiter(label):
            try:
                yield resource.request()
                trace.append((label, sim.now))
                yield sim.timeout(5.0)
                resource.release()
            except Interrupt as interrupt:
                trace.append((label, "interrupted", sim.now, interrupt.cause))

        def interrupter(target):
            yield sim.timeout(10.0)
            target.interrupt("cancelled")

        sim.process(holder())
        target = sim.process(waiter("victim"))
        sim.process(waiter("survivor"))
        sim.process(interrupter(target))
        sim.run()
        return trace

    legacy, prewheel, wheel = _run_on_all_kernels(workload)
    assert legacy == prewheel == wheel


def test_pooled_device_submissions_trace_identically_with_zero_delay_churn():
    """Device submissions ride pooled processes on the fast path
    (``spawn_process``); heavy zero-delay churn around them must not
    perturb completion order or timestamps on any kernel -- and the
    flattened pipeline must complete requests identically to the
    pre-refactor ``_complete`` trampoline."""
    def workload(sim):
        from repro.devices.loopback import LoopbackDevice
        device = LoopbackDevice(sim, capacity_bytes=1 << 20,
                                service_time_us=2.0, service_slots=2)
        trace = []

        def churn():
            for _ in range(64):
                yield sim.timeout(0)

        def issuer(label, offset):
            for i in range(8):
                request = yield device.read(offset + i * 4096, 4096)
                trace.append((label, sim.now, i,
                              request.complete_time - request.submit_time))
                yield sim.timeout(0)

        sim.process(churn())
        sim.process(issuer("x", 0))
        sim.process(issuer("y", 1 << 19))
        sim.process(churn())
        sim.run()
        return (trace, device.stats.reads_completed, device.stats.bytes_read)

    legacy, prewheel, wheel = _run_on_all_kernels(workload)
    assert legacy == prewheel == wheel
