"""Fleet-simulation benchmark: shard scaling, determinism, coordination.

Runs the registered ``fleet-smoke`` topology (64+ mixed SSD/ESSD devices,
four tenants, one 2-way replication edge) through the cluster layer at 1,
2, and 4 shards:

* ``shards=1`` is the in-process serial reference path;
* ``shards=2/4`` run each shard in a dedicated worker process behind the
  conservative epoch barrier, once per process transport (``executor``,
  the pickle baseline, and ``shm``, the shared-memory rings).

The hard gate is **bit-identical fleet metrics across every layout and
transport** -- the property that makes sharding safe to use at all.
Wall-clock speedup and scaling efficiency are *recorded* per transport in
``BENCH_fleet.json`` (each ``shards`` entry names the transport that
produced its headline numbers and carries every transport's numbers under
``by_transport``) rather than gated hard: a host with fewer cores than
shards cannot speed up, so those layouts carry a
``scaling_informational`` flag and are exempt from the overhead floor
(the floor still gates layouts the host can parallelise, and
``compare_bench.py`` turns the 4-shard ``shm`` efficiency into a real
floor on multi-core runners).

A second section measures **multi-epoch batching** on the trace-driven
``datacenter-diurnal`` fleet (steady replica traffic over many epochs):
``run_ahead=1`` reproduces one coordinator task per shard per busy epoch,
the default run-ahead window collapses that to one per window.  The gates:
bit-identical payloads between the two, and a strict cut in coordination
tasks per simulated second -- both counts are deterministic, so the
committed baseline (see ``benchmarks/compare_bench.py``) holds future PRs
to the batching win independent of host speed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cluster import FleetCoordinator, FleetRunConfig, FleetTopology
from repro.cluster.coordinator import DEFAULT_RUN_AHEAD
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import quick_cells

_REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = _REPO_ROOT / "BENCH_fleet.json"

#: Sharded runs must stay within this slowdown factor of the serial path
#: even on a single-core machine (catches pathological barrier overhead).
MIN_SPEEDUP = 0.15

SHARD_COUNTS = (1, 2, 4)

#: Process transports measured at every sharded layout.
PROCESS_TRANSPORTS = ("executor", "shm")


def _strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


def _run(topology: FleetTopology, shards: int,
         transport: str) -> tuple[dict, float]:
    coordinator = FleetCoordinator(
        config=FleetRunConfig(shards=shards, transport=transport))
    started = time.perf_counter()
    payload = coordinator.run(topology)
    return payload, time.perf_counter() - started


def _coordination_section() -> dict:
    """Batched vs per-epoch coordination on the datacenter-diurnal fleet.

    Runs the (quick-shrunk) trace-driven topology at 2 in-process shards
    with ``run_ahead=1`` (one task per shard per busy epoch -- the
    pre-batching behavior) and with the default run-ahead window, asserts
    the payloads are bit-identical, and reports the deterministic
    coordination-task counts normalised per simulated second.
    """
    cell = quick_cells(get_scenario("datacenter-diurnal").cells())[0]
    topology = FleetTopology.from_json(cell.fleet)
    assert topology.edges, "datacenter-diurnal lost its replication edge"

    variants = {}
    payloads = {}
    for label, run_ahead in (("per-epoch", 1), ("batched", DEFAULT_RUN_AHEAD)):
        coordinator = FleetCoordinator(shards=2, processes=False,
                                       run_ahead=run_ahead)
        payload = coordinator.run(topology)
        runtime = payload["runtime"]
        assert runtime["batched"], \
            "partition no longer keeps the mirror edge intra-shard"
        sim_seconds = payload["fleet"]["duration_us"] / 1e6
        variants[label] = {
            "run_ahead": run_ahead,
            "epochs": runtime["epochs"],
            "coordinator_rounds": runtime["coordinator_rounds"],
            "coordination_tasks": runtime["coordination_tasks"],
            "tasks_per_sim_second": round(
                runtime["coordination_tasks"] / sim_seconds, 2)
            if sim_seconds > 0 else 0.0,
        }
        payloads[label] = _strip_runtime(payload)

    # Hard gates: batching must not change the physics, and it must cut
    # coordination traffic (both counts are deterministic).
    assert json.dumps(payloads["batched"], sort_keys=True) == \
        json.dumps(payloads["per-epoch"], sort_keys=True), \
        "run-ahead batching changed the fleet metrics"
    assert variants["batched"]["coordination_tasks"] < \
        variants["per-epoch"]["coordination_tasks"], variants

    per_epoch = variants["per-epoch"]["coordination_tasks"]
    batched = variants["batched"]["coordination_tasks"]
    return {
        "topology": topology.name,
        "devices": topology.total_devices,
        "replica_writes": payloads["batched"]["fleet"]["replica_writes"],
        "variants": variants,
        "task_cut": round(per_epoch / batched, 3) if batched else 0.0,
    }


def test_fleet_shard_scaling_and_artifact():
    cell = get_scenario("fleet-smoke").cells()[0]
    topology = FleetTopology.from_json(cell.fleet)
    assert topology.total_devices >= 64

    runs = {}
    runs[(1, "local")] = _run(topology, 1, "local")
    for shards in SHARD_COUNTS[1:]:
        for transport in PROCESS_TRANSPORTS:
            runs[(shards, transport)] = _run(topology, shards, transport)

    # Hard gate: every (layout, transport) pair produces byte-identical
    # fleet metrics.
    reference = json.dumps(_strip_runtime(runs[(1, "local")][0]),
                           sort_keys=True)
    for (shards, transport), (payload_, _) in runs.items():
        assert json.dumps(_strip_runtime(payload_), sort_keys=True) \
            == reference, \
            f"shards={shards} over {transport} diverged from serial"

    serial_wall = runs[(1, "local")][1]
    cpu_count = os.cpu_count() or 1
    payload = {
        "benchmark": "fleet",
        "topology": {
            "name": topology.name,
            "devices": topology.total_devices,
            "groups": len(topology.groups),
            "tenants": len(topology.tenants),
            "edges": len(topology.edges),
            "epoch_us": topology.epoch_us,
        },
        "cpu_count": cpu_count,
        "fleet_ios": runs[(1, "local")][0]["fleet"]["ios_completed"],
        "replica_writes": runs[(1, "local")][0]["fleet"]["replica_writes"],
        "shards": {},
    }

    def scaling_entry(shards: int, transport: str) -> dict:
        run_payload, wall_s = runs[(shards, transport)]
        runtime = run_payload["runtime"]
        speedup = serial_wall / wall_s if wall_s > 0 else 0.0
        return {
            "transport": transport,
            "wall_s": round(wall_s, 4),
            "events": runtime["scheduled_events"],
            "events_per_sec": round(runtime["scheduled_events"] / wall_s)
            if wall_s > 0 else 0,
            "epochs": runtime["epochs"],
            "coordinator_rounds": runtime["coordinator_rounds"],
            "coordination_tasks": runtime["coordination_tasks"],
            "speedup_vs_serial": round(speedup, 3),
            "scaling_efficiency": round(speedup / shards, 3),
            # With fewer cores than shards the workers time-slice one CPU,
            # so speedup/efficiency describe the host, not the simulator --
            # consumers of the artifact must treat them as informational.
            # The flag is per-entry so it stays correct for *every*
            # transport's numbers, not just the headline one.
            "scaling_informational": cpu_count < shards,
        }

    payload["shards"]["1"] = scaling_entry(1, "local")
    for shards in SHARD_COUNTS[1:]:
        # The headline numbers come from the transport auto-resolution
        # would pick on this host; every measured transport keeps its own
        # entry (with its own informational flag) under by_transport.
        auto = FleetRunConfig(shards=shards).resolve_transport()
        entry = scaling_entry(shards, auto)
        entry["by_transport"] = {
            transport: scaling_entry(shards, transport)
            for transport in PROCESS_TRANSPORTS
        }
        payload["shards"][str(shards)] = entry
    payload["headline_speedup"] = payload["shards"]["4"]["speedup_vs_serial"]
    payload["headline_transport"] = payload["shards"]["4"]["transport"]
    payload["headline_informational"] = \
        payload["shards"]["4"]["scaling_informational"]
    payload["coordination"] = _coordination_section()

    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nfleet shard-scaling benchmark -> {ARTIFACT.name}")
    print(json.dumps(payload, indent=2, sort_keys=True))

    # The overhead floor is a *slowdown* bound, so it holds on any host --
    # but only gate layouts the host can actually parallelise; oversubscribed
    # layouts (cpu_count < shards) are recorded as informational only.
    for shards in SHARD_COUNTS[1:]:
        for entry in payload["shards"][str(shards)]["by_transport"].values():
            if entry["scaling_informational"]:
                continue
            assert entry["speedup_vs_serial"] >= MIN_SPEEDUP, payload
