"""Fleet-simulation benchmark: shard-scaling throughput and determinism.

Runs the registered ``fleet-smoke`` topology (64+ mixed SSD/ESSD devices,
four tenants, one 2-way replication edge) through the cluster layer at 1,
2, and 4 shards:

* ``shards=1`` is the in-process serial reference path;
* ``shards=2/4`` run each shard in a dedicated worker process behind the
  conservative epoch barrier.

The hard gate is **bit-identical fleet metrics across every layout** --
the property that makes sharding safe to use at all.  Wall-clock speedup
and scaling efficiency are *recorded* in ``BENCH_fleet.json`` (with the
host's CPU count for context) rather than gated hard: a single-core CI
machine cannot speed up, it can only stay within the overhead floor.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cluster import FleetCoordinator, FleetTopology
from repro.experiments.scenarios import get_scenario

_REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = _REPO_ROOT / "BENCH_fleet.json"

#: Sharded runs must stay within this slowdown factor of the serial path
#: even on a single-core machine (catches pathological barrier overhead).
MIN_SPEEDUP = 0.15

SHARD_COUNTS = (1, 2, 4)


def _strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


def _run(topology: FleetTopology, shards: int) -> tuple[dict, float]:
    coordinator = FleetCoordinator(shards=shards, processes=shards > 1)
    started = time.perf_counter()
    payload = coordinator.run(topology)
    return payload, time.perf_counter() - started


def test_fleet_shard_scaling_and_artifact():
    cell = get_scenario("fleet-smoke").cells()[0]
    topology = FleetTopology.from_json(cell.fleet)
    assert topology.total_devices >= 64

    runs = {}
    for shards in SHARD_COUNTS:
        payload, wall_s = _run(topology, shards)
        runs[shards] = {
            "payload": payload,
            "wall_s": wall_s,
            "events": payload["runtime"]["scheduled_events"],
            "epochs": payload["runtime"]["epochs"],
        }

    # Hard gate: every shard layout produces byte-identical fleet metrics.
    reference = json.dumps(_strip_runtime(runs[1]["payload"]), sort_keys=True)
    for shards in SHARD_COUNTS[1:]:
        assert json.dumps(_strip_runtime(runs[shards]["payload"]),
                          sort_keys=True) == reference, \
            f"shards={shards} diverged from the serial reference"

    serial_wall = runs[1]["wall_s"]
    payload = {
        "benchmark": "fleet",
        "topology": {
            "name": topology.name,
            "devices": topology.total_devices,
            "groups": len(topology.groups),
            "tenants": len(topology.tenants),
            "edges": len(topology.edges),
            "epoch_us": topology.epoch_us,
        },
        "cpu_count": os.cpu_count(),
        "fleet_ios": runs[1]["payload"]["fleet"]["ios_completed"],
        "replica_writes": runs[1]["payload"]["fleet"]["replica_writes"],
        "shards": {},
    }
    for shards in SHARD_COUNTS:
        run = runs[shards]
        speedup = serial_wall / run["wall_s"] if run["wall_s"] > 0 else 0.0
        payload["shards"][str(shards)] = {
            "wall_s": round(run["wall_s"], 4),
            "events": run["events"],
            "events_per_sec": round(run["events"] / run["wall_s"])
            if run["wall_s"] > 0 else 0,
            "epochs": run["epochs"],
            "speedup_vs_serial": round(speedup, 3),
            "scaling_efficiency": round(speedup / shards, 3),
        }
    payload["headline_speedup"] = payload["shards"]["4"]["speedup_vs_serial"]

    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nfleet shard-scaling benchmark -> {ARTIFACT.name}")
    print(json.dumps(payload, indent=2, sort_keys=True))

    for shards in SHARD_COUNTS[1:]:
        assert payload["shards"][str(shards)]["speedup_vs_serial"] \
            >= MIN_SPEEDUP, payload
