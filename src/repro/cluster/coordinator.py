"""Partition a fleet topology into shards and drive them over epochs.

Partitioning (:func:`partition_topology`) is **device-affinity** based:
replication edges connect groups into clusters (union-find), whole clusters
are placed onto the least-loaded shard first (so edges stay intra-shard
whenever the cluster count allows), and only when shards would otherwise
sit empty is a shard's device list split at device granularity.

Execution (:class:`FleetCoordinator`) is a conservative time-window loop
over **coupling components** (:func:`~repro.cluster.transport.coupling_components`):
shard pairs joined by a cross-shard replication edge (or a fault
group/spare pair) may exchange messages and must synchronize; shards no
split edge touches can never see cross-shard traffic.  Each component
picks its own gear:

* **Batched run-ahead** -- a singleton component (every edge/fault that
  touches the shard is intra-shard -- the common case: device-affinity
  placement glues edge clusters together) is granted a window of
  ``run_ahead`` epochs per task.  The shard steps barrier-to-barrier
  internally, self-delivering its own replica messages (see
  :meth:`~repro.cluster.shard.ShardWorker.advance`), and the coordinator
  only rendezvouses once per window: coordination drops from one task per
  shard per busy epoch to one per shard per ``run_ahead`` window.
* **Lockstep** -- shards inside a multi-shard component advance to the
  same barrier per task; emitted messages are routed to the shard owning
  the target device and handed over exactly at their ``delivery_epoch``
  barrier, sorted by the layout-independent key
  ``(delivery_us, origin_index, origin_seq)``.  Other components advance
  concurrently in the same coordinator round -- a split edge only
  lockstops the shards it actually couples.

In both gears a message is injected when its shard's clock sits exactly on
the delivery barrier.  Because seeds, replica delivery times, and
injection order all derive from logical identities (never from the shard
layout, the granted windows, or the transport), ``shards=1`` is
bit-identical to any ``shards=N`` run -- and ``shards=1`` in-process *is*
the serial path.  Topologies without replication edges skip the barrier
loop entirely: each shard drains to completion in a single advance.

How grants and responses physically move between coordinator and shards
is the :class:`~repro.cluster.transport.ShardTransport` contract
(in-process calls, a dedicated single-worker executor per shard, or
shared-memory rings -- see :mod:`repro.cluster.transport`); every knob
lives on :class:`~repro.cluster.transport.FleetRunConfig`.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Optional

from repro.cluster.metrics import merge_shard_payloads
from repro.cluster.shard import ReplicaMessage, ShardPlan, inbox_order
from repro.cluster.topology import FleetTopology
from repro.cluster.transport import (
    DEFAULT_RUN_AHEAD,
    MAX_EPOCHS,
    FleetRunConfig,
    coupling_components,
    create_transport,
)

__all__ = ["partition_topology", "FleetCoordinator", "FleetRunConfig",
           "run_fleet", "run_fleet_serial", "MAX_EPOCHS",
           "DEFAULT_RUN_AHEAD"]

#: Backwards-compatible alias (the key moved next to ReplicaMessage).
_inbox_order = inbox_order


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def partition_topology(topology: FleetTopology, shards: int) -> list[ShardPlan]:
    """Split the fleet's devices into ``shards`` device-affinity slices."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, topology.total_devices)
    group_names = [group.name for group in topology.groups]
    position = {name: index for index, name in enumerate(group_names)}

    # Union-find over groups: replication edges glue groups into clusters.
    parent = {name: name for name in group_names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    couplings = [(edge.source, edge.target) for edge in topology.edges]
    # A hot-spare promotion couples the failed group to its spare group the
    # same way a replication edge couples source to target: rebuild traffic
    # flows between them, so affinity placement keeps them on one shard.
    couplings.extend((fault.group, fault.spare) for fault in topology.faults
                     if fault.spare is not None)
    for source, target in couplings:
        root_a, root_b = find(source), find(target)
        if root_a != root_b:
            # Deterministic union: the earlier-declared group wins.
            if position[root_a] > position[root_b]:
                root_a, root_b = root_b, root_a
            parent[root_b] = root_a

    clusters: dict[str, list[str]] = {}
    for name in group_names:
        clusters.setdefault(find(name), []).append(name)

    sizes = {root: sum(topology.group(name).count for name in members)
             for root, members in clusters.items()}
    # Largest clusters first; ties resolved by declaration order.
    order = sorted(clusters, key=lambda root: (-sizes[root], position[root]))

    assignments: list[list[int]] = [[] for _ in range(shards)]
    for root in order:
        target = min(range(shards), key=lambda sid: (len(assignments[sid]), sid))
        for name in clusters[root]:
            assignments[target].extend(topology.group_indices(name))

    # Fill empty shards (more shards than clusters) by halving the heaviest
    # slice at device granularity -- this may break an edge across shards,
    # which the message-passing loop handles.  A macro group, however, is
    # one indivisible aggregate: splits shift to the nearest atom boundary,
    # and a slice that is one single macro atom simply cannot donate.
    macro_atom: dict[int, int] = {}
    for macro_group in topology.macro_groups():
        indices = topology.group_indices(macro_group.name)
        for index in indices:
            macro_atom[index] = indices[0]

    def _valid_split(devices: list[int], keep: int) -> bool:
        if keep < 1 or keep >= len(devices):
            return False
        left, right = devices[keep - 1], devices[keep]
        return macro_atom.get(left, -1) != macro_atom.get(right, -2)

    while any(not plan for plan in assignments):
        empty = next(sid for sid in range(shards) if not assignments[sid])
        split = None
        for donor in sorted(range(shards),
                            key=lambda sid: (-len(assignments[sid]), sid)):
            devices = assignments[donor]
            if len(devices) < 2:
                break  # heaviest slice already minimal: nothing can donate
            half = len(devices) // 2
            for offset in range(half + 1):
                for keep in (half - offset, half + offset):
                    if _valid_split(devices, keep):
                        split = (donor, keep)
                        break
                if split:
                    break
            if split:
                break
        if split is None:
            break
        donor, keep = split
        assignments[empty] = assignments[donor][keep:]
        assignments[donor] = assignments[donor][:keep]

    return [ShardPlan(shard_id=sid, device_indices=tuple(sorted(indices)))
            for sid, indices in enumerate(assignments)]


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

class FleetCoordinator:
    """Runs a :class:`FleetTopology` over ``shards`` shard simulators.

    All execution knobs live on one
    :class:`~repro.cluster.transport.FleetRunConfig`; pass it as
    ``config=``.  The individual keyword arguments below are **deprecated
    aliases** kept for pre-transport callers -- an explicitly passed
    kwarg overrides the matching ``config`` field.

    Parameters
    ----------
    shards:
        Number of shard simulators (clamped to the device count).
    processes:
        Run each shard in a worker process (default: only when
        ``shards > 1``).  In-process execution produces byte-identical
        payloads -- it is the same ShardWorker code -- so tests and the
        serial path use it directly.
    epoch_us:
        Override the topology's conservative synchronization window.
    run_ahead:
        Epochs granted per coordinator task to shards in singleton
        coupling components (see the module docstring).  ``run_ahead=1``
        restores one-task-per-busy-epoch coordination.
    transport:
        Concrete transport name (see
        :data:`~repro.cluster.transport.TRANSPORTS`); default ``auto``.
    spin_budget:
        Hot-spin iterations before shared-memory waiters sleep.
    config:
        A :class:`FleetRunConfig` carrying all of the above.
    """

    def __init__(self, shards: Optional[int] = None,
                 processes: Optional[bool] = None,
                 epoch_us: Optional[float] = None,
                 max_epochs: Optional[int] = None,
                 run_ahead: Optional[int] = None,
                 transport: Optional[str] = None,
                 spin_budget: Optional[int] = None,
                 config: Optional[FleetRunConfig] = None):
        config = config if config is not None else FleetRunConfig()
        self.config = config.merged(
            shards=shards, processes=processes, epoch_us=epoch_us,
            max_epochs=max_epochs, run_ahead=run_ahead, transport=transport,
            spin_budget=spin_budget)
        # Deprecated attribute aliases (read-only views of the config).
        self.shards = self.config.shards
        self.processes = self.config.resolve_transport() != "local"
        self.epoch_us = self.config.epoch_us
        self.max_epochs = self.config.max_epochs
        self.run_ahead = self.config.run_ahead

    def run(self, topology: FleetTopology) -> dict[str, Any]:
        """Execute the fleet and return the merged metrics payload.

        The payload's ``fleet`` / ``tenants`` / ``groups`` sections are
        bit-identical across shard counts, transports, and run-ahead
        windows; wall-clock and coordination data live under ``runtime``.
        """
        config = self.config
        if config.epoch_us is not None:
            topology = topology.scaled(epoch_us=config.epoch_us)
        plans = partition_topology(topology, config.shards)
        owner = {index: plan.shard_id for plan in plans
                 for index in plan.device_indices}
        started = time.perf_counter()
        transport_kind = config.resolve_transport()
        transport = create_transport(transport_kind, topology, plans,
                                     spin_budget=config.spin_budget)
        components = coupling_components(topology, owner, len(plans))
        lockstep = [component for component in components
                    if len(component) > 1]
        batched = bool(topology.edges or topology.faults) and not lockstep
        epochs = 0
        rounds = 0
        tasks = 0
        try:
            if not topology.edges and not topology.faults:
                # No cross-device dependencies: each shard drains in one go.
                transport.advance_all(None, [[] for _ in plans])
                rounds = 1
                tasks = len(plans)
            else:
                epochs, rounds, tasks = self._run_components(
                    topology, plans, owner, transport, components)
            payloads = transport.collect_all()
            events = transport.scheduled_events()
        finally:
            transport.close()
        wall_s = time.perf_counter() - started
        result = merge_shard_payloads(topology, payloads)
        result["runtime"] = {
            "shards": len(plans),
            "mode": "in-process" if transport_kind == "local"
            else "processes",
            "transport": transport_kind,
            "epochs": epochs,
            "batched": batched,
            "run_ahead": self.run_ahead,
            "components": len(components),
            "lockstep_shards": sum(len(component)
                                   for component in lockstep),
            "coordinator_rounds": rounds,
            "coordination_tasks": tasks,
            "wall_s": wall_s,
            "scheduled_events": events,
            "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
            "cpu_count": os.cpu_count(),
            "partition": [list(plan.device_indices) for plan in plans],
        }
        return result

    def _run_components(self, topology: FleetTopology, plans, owner,
                        transport, components) -> tuple[int, int, int]:
        """Drive every coupling component through its own gear in a
        single coordinator loop.

        Singleton components get batched ``run_ahead`` windows
        (self-delivering their intra-shard traffic and skipping idle
        epochs internally; a shard reporting ``peek == inf`` is drained
        for good -- nothing can revive it without cross-shard traffic).
        Multi-shard components run the conservative epoch-barrier
        lockstep among *their members only*: collected messages wait at
        the coordinator until the barrier matching their
        ``delivery_epoch``; each member then receives them with its clock
        sitting exactly on that barrier, sorted by the
        layout-independent ``inbox_order`` key.  Every round posts all
        grants before waiting on any, so independent components (and the
        shards inside one component) advance concurrently on process
        transports.  Returns ``(epochs, rounds, tasks)``."""
        epoch_us = topology.epoch_us
        overrun = RuntimeError(
            f"fleet {topology.name!r} exceeded {self.max_epochs} "
            f"epochs (epoch_us={epoch_us}); raise epoch_us or max_epochs")
        singles = sorted(component[0] for component in components
                         if len(component) == 1)
        single_set = set(singles)
        groups = [_LockstepGroup(component) for component in components
                  if len(component) > 1]
        group_of = {sid: grp for grp in groups for sid in grp.members}
        peeks = [0.0] * len(plans)
        executed = [0] * len(plans)
        #: Shared run-ahead cursor across the singleton shards (kept
        #: global, not per-shard, so coordination-task counts match the
        #: pre-transport batched gear exactly).
        index = 0
        rounds = 0
        tasks = 0
        while True:
            #: sid -> (until_us, sorted inbox, self_deliver)
            grants: dict[int, tuple] = {}
            active = [sid for sid in singles if peeks[sid] != math.inf]
            if active:
                # Idle skip across windows: start the next grant at the
                # epoch holding the earliest pending event among the
                # self-contained shards.
                start = max(index,
                            math.floor(min(peeks[sid] for sid in active)
                                       / epoch_us))
                index = start + self.run_ahead
                for sid in active:
                    grants[sid] = (index * epoch_us, [], True)
            for grp in groups:
                target = grp.next_barrier(peeks, epoch_us)
                if target is None:
                    continue
                if grp.rounds > self.max_epochs:
                    raise overrun
                for sid, inbox in target.items():
                    grants[sid] = (grp.position * epoch_us,
                                   sorted(inbox, key=inbox_order), False)
            if not grants:
                return (max([executed[sid] for sid in singles]
                            + [grp.rounds for grp in groups],
                            default=0), rounds, tasks)
            rounds += 1
            tasks += len(grants)
            for sid in sorted(grants):
                until_us, inbox, self_deliver = grants[sid]
                transport.post(sid, until_us, inbox, self_deliver)
            for sid in sorted(grants):
                outbound, peek, ran = transport.wait(sid)
                peeks[sid] = peek
                executed[sid] += ran
                if sid in single_set:
                    if outbound:  # pragma: no cover - singleton guarantee
                        raise RuntimeError(
                            f"self-contained shard {sid} emitted a "
                            "cross-shard replica message")
                else:
                    grp = group_of[sid]
                    for message in outbound:
                        # Affinity + coupling guarantee the target stays
                        # inside this component.
                        grp.pending[owner[message.target_index]].append(
                            message)
            if active and max(executed[sid] for sid in singles) \
                    > self.max_epochs:
                raise overrun


class _LockstepGroup:
    """Barrier state for one multi-shard coupling component."""

    def __init__(self, members: list[int]):
        self.members = list(members)
        self.pending: dict[int, list[ReplicaMessage]] = \
            {sid: [] for sid in self.members}
        #: Barrier position as an *integer* epoch index.  The barrier
        #: time is always computed as ``position * epoch_us`` -- the
        #: exact same float-multiplication grid the replication hook
        #: quantizes delivery times onto.  Accumulating
        #: ``barrier += epoch_us`` instead would drift off that grid for
        #: epochs not exactly representable in binary, leaving a
        #: collected message's delivery in the past.
        self.position = 0
        self.rounds = 0
        self.done = False

    def next_barrier(self, peeks: list[float], epoch_us: float,
                     ) -> Optional[dict[int, list[ReplicaMessage]]]:
        """Advance the component's barrier and return the per-member
        handoff (messages due exactly at the *previous* barrier, where
        every member clock now sits), or ``None`` once the component is
        fully drained."""
        if self.done:
            return None
        handoff: dict[int, list[ReplicaMessage]] = \
            {sid: [] for sid in self.members}
        future = math.inf
        due = False
        for sid in self.members:
            keep = []
            for message in self.pending[sid]:
                if message.delivery_epoch == self.position:
                    handoff[sid].append(message)
                    due = True
                else:
                    keep.append(message)
                    if message.delivery_epoch < future:
                        future = message.delivery_epoch
            self.pending[sid] = keep
        targets = []
        if due:
            # Deliveries inject at the current barrier; their writes
            # start here, so the next window spans one epoch.
            targets.append(self.position + 1)
        if future != math.inf:
            targets.append(int(future))
        min_peek = min(peeks[sid] for sid in self.members)
        if min_peek != math.inf:
            # Skip whole idle epochs: jump straight to the barrier just
            # past the earliest pending event.  The advance window still
            # spans at most one epoch of *activity*, so every emitted
            # message remains deliverable at a future barrier.
            targets.append(max(self.position + 1,
                               math.floor(min_peek / epoch_us) + 1))
        if not targets:
            self.done = True
            return None
        self.position = min(targets)
        self.rounds += 1
        return handoff


def run_fleet(topology: FleetTopology,
              config: Optional[FleetRunConfig] = None,
              **overrides: Any) -> dict[str, Any]:
    """Run ``topology`` under ``config`` (plus keyword overrides) and
    return the merged metrics payload -- the one-call entry point."""
    config = (config if config is not None else FleetRunConfig())
    return FleetCoordinator(config=config.merged(**overrides)).run(topology)


def run_fleet_serial(topology: FleetTopology) -> dict[str, Any]:
    """The serial reference path: the whole fleet in one in-process shard."""
    return FleetCoordinator(shards=1, processes=False).run(topology)
