"""Smoke benchmark guard: the unit suite must finish within a wall-clock bound.

The seed suite could hang forever on a scheduler bug; this guard runs the
whole ``tests/`` directory in a subprocess and fails if it does not complete
(successfully) within the budget.  It lives in ``benchmarks/`` so the child
run (``tests/`` only) cannot recurse into it.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

#: Wall-clock budget for the whole unit suite (it completes in ~20 s; the
#: bound leaves generous headroom for slow CI machines while still turning a
#: hang into a failure within minutes).
SUITE_BUDGET_SECONDS = 240.0

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.timeout(SUITE_BUDGET_SECONDS + 60)
def test_unit_suite_completes_within_wall_clock_budget():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    started = time.monotonic()
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "tests", "-q",
             "-p", "no:cacheprovider"],
            cwd=_REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=SUITE_BUDGET_SECONDS,
        )
    except subprocess.TimeoutExpired:
        pytest.fail(f"unit suite did not complete within "
                    f"{SUITE_BUDGET_SECONDS:.0f}s (hang?)")
    elapsed = time.monotonic() - started
    tail = (proc.stdout or "")[-2000:] + (proc.stderr or "")[-500:]
    assert proc.returncode == 0, f"unit suite failed after {elapsed:.1f}s:\n{tail}"
    assert elapsed < SUITE_BUDGET_SECONDS
