"""Fleet simulation: declare a topology, run it sharded, read the metrics.

Run with::

    PYTHONPATH=src python examples/fleet_cluster.py

The cluster layer (``repro.cluster``) simulates *fleets* -- hundreds of
devices -- by partitioning a declarative topology across shard simulators
that run in separate worker processes and synchronize through a
conservative epoch barrier.  Results are bit-identical at any shard count.

Topology schema
---------------
A :class:`~repro.cluster.FleetTopology` is built from three elements (or
loaded from JSON via ``FleetTopology.from_json``; see ``to_payload()`` for
the exact wire format):

``group(name, device, count, capacity_bytes=None, device_params=None,
preload=True, mode="discrete")``
    ``count`` instances of a registered device family (``"SSD"``,
    ``"ESSD-1"``, ``"ESSD-2"``, ``"LOOP"``).  ``device_params`` override
    profile fields (e.g. ``{"replication_factor": 2}``).
    ``mode="macro"`` replaces the ``count`` discrete simulators with one
    calibrated mean-field aggregate (see *Macro groups* below).

``tenant(name, group, **workload)``
    One workload bound to *every* device of the group.  Plain fields make
    a closed-loop FIO job (``pattern``, ``io_size``, ``queue_depth``,
    ``io_count``, ...).  Passing ``trace="bursty" | "diurnal" |
    "uniform"`` instead replays a synthesized open-loop arrival process
    (remaining fields go to the trace generator: ``duration_us``,
    ``mean_load_gbps``, ``burst_factor``, ...).  Every (tenant, device)
    pair derives its own deterministic seed.

``edge(source, target, replication_factor=1)``
    Asynchronous cross-group mirroring: each completed tenant write on
    source device ``i`` fans out to ``replication_factor`` devices of the
    target group.  Deliveries are quantized to the topology's
    ``epoch_us`` window, which is also the shard synchronization barrier.

Fault schedules
---------------
A topology optionally carries a declarative fault schedule
(``faults=[...]``, ``fault_policy=FaultPolicy(...)``) that the runtime
applies at epoch barriers -- fault physics stay bit-identical at any
shard count and any run-ahead window:

``fault(kind, group, at_us, device=None, repair_after_us=None,
spare=None)``
    ``kind="fail"`` takes a device (or the whole group when ``device`` is
    None) offline at the first epoch barrier at/after ``at_us``; offline
    devices *shed* I/O (fast-fail after ``shed_penalty_us``, marked
    ``request.shed``; shed writes never replicate).  A fail also kicks off
    a **re-replication storm**: the lost bytes are re-read in paced chunks
    from the surviving replica holders and re-written to ``spare`` (a cold
    group promoted on failure) or, without a spare, to the surviving
    peers -- rebuild traffic competes with foreground tenants on the same
    simulated devices.  ``kind="drain"`` sheds without rebuilding
    (planned maintenance).  ``repair_after_us`` brings the device back at
    a later barrier (always at least one epoch after the failure).

``FaultPolicy(rebuild_chunk_bytes, rebuild_chunks_per_epoch,
shed_penalty_us, max_inflight)``
    The rebuild pacing (chunk size x chunks per epoch bounds rebuild
    bandwidth), the shed fast-fail latency, and an optional admission-
    control cap: with ``max_inflight=N`` a device sheds any I/O beyond N
    in flight, turning overload into bounded fast-fails instead of
    unbounded queueing.

Fleet reports from a faulted topology gain ``result["faults"]`` (shed
I/Os, rebuild writes/reads/bytes, rebuild GB/s over the degraded window,
and the during-rebuild vs steady latency split), per-tenant
``["faults"]`` splits, and per-group rebuild/shed counters.

Macro groups (mean-field aggregates)
------------------------------------
A group declared with ``mode="macro"`` is not expanded into per-device
simulators.  Instead ``repro.cluster.macro`` advances the whole group per
epoch window as **one vectorized process**: a queueing approximation
whose service-time distribution, effective concurrency, and rate are
*calibrated* by running each tenant's workload once on a single discrete
device (same ``derive_seed`` identity the discrete path uses, so
calibration is layout-independent).  Group size becomes a constant-cost
parameter -- the registered ``fleet-macro-100k`` scenario runs 100 000+
devices in well under a minute (``python -m repro.experiments fleet
fleet-macro-100k --quick``).

What carries over exactly, what is approximate:

* I/O and byte totals are **exact** (closed-loop tenants; trace tenants
  track within a couple percent), replica fan-out bytes are exact, and
  runs stay bit-identical across shard layouts, run-ahead windows, and
  repeated runs.  Macro groups exchange replica traffic with discrete
  groups in both directions, and fault schedules (shed, spare promotion,
  paced rebuild storms) apply at the same epoch barriers.
* Latency quantiles and throughput are **approximate**: every metrics
  payload derived from a macro group carries ``approximate: True``
  (tenant, group, fleet, and sweep-headline levels; exact results carry
  no flag).  The measured error envelope -- low single-digit percent on
  p50/p95/p99 and throughput for the calibrated families -- is recorded
  by ``benchmarks/test_bench_macro.py`` into ``BENCH_macro.json`` (plus
  a readable ``BENCH_macro_table.md``) and regression-gated against the
  committed baselines by ``benchmarks/compare_bench.py``;
  ``tests/test_macro_validation.py`` enforces the declared tolerance
  bands per family.

Calibration runs cache in-process and, when ``$REPRO_MACRO_CACHE`` is
set, on disk -- keyed by the model fingerprint like the sweep cache, so
editing any model source invalidates them.  Any topology can be re-run
with groups flipped to macro (or back) from the CLI::

    python -m repro.experiments fleet fleet-smoke --macro web,cache
    python -m repro.experiments fleet fleet-smoke --macro db=discrete

The override is part of the sweep cache key: macro and discrete runs of
the same scenario never collide.

Shard transports
----------------
The coordinator never talks to worker processes directly: it posts
advance grants to a :class:`~repro.cluster.ShardTransport` and waits for
the responses.  Three implementations ship (``repro.cluster.transport``):

``local`` (:class:`~repro.cluster.InProcessTransport`)
    Every shard as a plain in-process object.  The serial reference path;
    what ``shards=1`` or ``processes=False`` resolve to.

``executor`` (:class:`~repro.cluster.ExecutorTransport`)
    The faithful multi-process baseline: one persistent single-worker
    ``ProcessPoolExecutor`` per shard, one pickled task round-trip per
    grant.  Default process transport on 1-core hosts, where there is no
    parallelism to lose.

``shm`` (:class:`~repro.cluster.SharedMemoryTransport`)
    ``multiprocessing.shared_memory`` rings per coordinator<->shard pair
    plus a lock-free barrier word per shard: workers spin-then-sleep on
    their command word (``spin_budget`` hot spins, then escalating
    sleeps), messages travel as fixed 64-byte struct-encoded slots, and
    batches that outgrow the ring spill to a pipe side channel --
    correctness never depends on buffer size.  Default process transport
    on multi-core hosts.

``transport="auto"`` (the default) picks between them by host shape;
every choice is bit-identical, so the knob only moves wall clock.
``BENCH_fleet.json`` records each transport's scaling per shard count.

FleetRunConfig: every execution knob in one place
-------------------------------------------------
:class:`~repro.cluster.FleetRunConfig` collapses the scattered execution
knobs into one dataclass accepted uniformly by ``FleetCoordinator``,
``run_fleet``, ``SweepRunner(fleet_config=...)``, the ``fleet`` / ``run``
/ ``serve`` verbs, and config documents (as a ``run:`` block)::

    from repro.cluster import FleetRunConfig, run_fleet

    config = FleetRunConfig(shards=4, transport="shm", run_ahead=32)
    payload = run_fleet(topology, config)           # or config.merged(...)

Fields: ``shards``, ``run_ahead``, ``epoch_us``, ``transport`` (one of
``auto | local | executor | shm``), ``spin_budget``, ``processes``
(deprecated tri-state alias for ``transport``), ``max_epochs``.  None of
them may change simulation results -- bit-identity across every
combination is gated by the determinism tests; only ``epoch_us`` is
physics (it rescales the synchronization grid) and therefore the only
field that enters the sweep cache key.

The pre-transport spellings -- ``FleetCoordinator(shards=...,
processes=..., run_ahead=...)``, ``SweepRunner(fleet_shards=...)``,
``CellSpec.fleet_shards``, and the bare ``--shards`` / ``--run-ahead``
CLI flags -- survive as thin deprecated aliases that merge into a
``FleetRunConfig``.  They will be removed two releases after the
transport layer landed (see ROADMAP "Shard transport"); new code should
pass a ``FleetRunConfig`` (or a document ``run:`` block).

Run-ahead windows and coupling components
-----------------------------------------
The coordinator synchronizes shards on the ``epoch_us`` barrier, but it
only needs a barrier *per epoch* inside a **coupling component**: the
union-find closure of shards joined by a cross-shard replication edge or
a fault group/spare pair.  The device-affinity partitioner keeps edge
clusters together whenever the shard count allows; each multi-shard
component locksteps its members per epoch while every singleton
component self-delivers its own replica traffic and receives a
**run-ahead window** of ``run_ahead`` epochs (default 16) per task
instead of one -- both gears run concurrently in the same coordinator
loop (``runtime["components"]`` / ``runtime["lockstep_shards"]`` report
the split).  On long trace-driven fleets this cuts coordination tasks
per simulated second by roughly the window size (see
``BENCH_fleet.json``'s ``coordination`` section); metrics stay
bit-identical for every ``run_ahead`` value, ``run_ahead=1`` restores the
per-epoch barrier, and ``runtime["coordinator_rounds"]`` /
``runtime["coordination_tasks"]`` report what a run actually spent.

CLI
---
Registered fleet scenarios (see ``python -m repro.experiments list``, tag
``fleet``) run through the same machinery::

    python -m repro.experiments fleet fleet-smoke                 # serial
    python -m repro.experiments fleet fleet-smoke --shards 4      # sharded
    python -m repro.experiments fleet fleet-smoke --shards 4 --transport shm
    python -m repro.experiments fleet datacenter-diurnal --quick
    python -m repro.experiments fleet fleet-smoke --shards 4 --out report.json
    python -m repro.experiments fleet fleet-smoke --run-ahead 1   # per-epoch

The fault-scenario family exercises the schedule machinery end to end::

    # A device failure mid-run, spare promotion, a concurrent drain, and a
    # sweep over the rebuild pacing knob (rebuild_chunks_per_epoch):
    python -m repro.experiments fleet failover-storm --quick
    # Over-provisioning x working-set sweep under a rebuild storm:
    python -m repro.experiments run gc-cliff --quick

    # Inject an ad-hoc schedule into any fleet scenario (inline JSON or
    # @file); the schedule becomes part of the sweep cache key:
    python -m repro.experiments fleet fleet-smoke --faults \
        '{"events": [{"kind": "fail", "group": "db", "at_us": 1500.0,
                      "device": 0, "repair_after_us": 8000.0}],
          "policy": {"shed_penalty_us": 150.0}}'

``--shards 1`` *is* the serial path; any ``--shards N``, ``--transport``
and ``--run-ahead`` combination produces the same fleet metrics (only the
``runtime`` section -- wall clock, events/sec, coordination, partition --
differs).  When a scenario document carries its own ``run:`` block,
``--transport`` / ``--spin-budget`` override it, while the deprecated
``--shards`` / ``--run-ahead`` / ``--epoch-us`` aliases *error* on a
contradiction (path-addressed, exit 2) rather than silently winning --
edit the document or drop the flag.  Deterministic fleet metrics cache
under ``$REPRO_SWEEP_CACHE`` (default ``.sweep-cache``) exactly like
``run`` sweeps: every execution knob except ``epoch_us`` (the one field
that changes physics) is excluded from the cache key, ``--force``
re-runs, ``--no-cache`` disables.  ``run <scenario> --shards N`` nests
the same sharding inside the sweep pool for scenarios whose cells carry
fleets.

Config documents (no Python required)
-------------------------------------
Everything above can be declared in a YAML/JSON document instead of
Python -- ``examples/fleet_config.yaml`` is a fully-commented schema
walkthrough (topology, device-profile presets, trace tenants, fault
schedules, sweep grids).  Documents are validated with path-addressed
errors (``fleet.groups[2].count: expected positive int``) and run through
the exact same cell machinery, so a document fleet and its Python twin
produce bit-identical metrics and share sweep-cache entries::

    python -m repro.experiments validate examples/fleet_config.yaml
    python -m repro.experiments fleet examples/fleet_config.yaml --quick
    # Register permanently: every document in the directories on
    # $REPRO_SCENARIO_PATH appears in `list` and runs by name.
    REPRO_SCENARIO_PATH=examples python -m repro.experiments list

``kind: fleet`` documents accept a ``run:`` block mirroring
:class:`~repro.cluster.FleetRunConfig` -- only the non-default fields,
so the empty block is the default config::

    run:
      shards: 4
      transport: shm      # auto | local | executor | shm
      run_ahead: 32

(YAML needs the optional ``config`` extra, ``pip install repro[config]``;
JSON documents work without it.)

The experiment service (repro.serve)
------------------------------------
``serve`` starts a persistent process that accepts scenario/fleet
submissions over a unix socket or localhost TCP, schedules them on a
shared sweep runner with the same result cache as the batch CLI, and
streams per-cell metrics as line-delimited JSON.  Submissions beyond
``--max-pending`` are rejected immediately with a reason (admission
control), and ``--job-workers N`` runs N jobs concurrently::

    python -m repro.experiments serve --socket /tmp/repro.sock &
    # Submit a registered scenario or a document file; events stream back:
    python -m repro.experiments submit fleet-smoke --quick \
        --socket /tmp/repro.sock
    python -m repro.experiments submit examples/fleet_config.yaml \
        --socket /tmp/repro.sock --out result.json

Because the server and the batch CLI share one cache contract, a
document submitted to ``serve`` and the same document run via ``fleet``
hit the same cache keys -- whichever runs second is a pure cache hit.
Programmatic access goes through :class:`repro.serve.ServeClient`::

    from repro.serve import ServeClient

    with ServeClient(socket_path="/tmp/repro.sock") as client:
        terminal, events = client.run(scenario="fleet-smoke", quick=True)
        # events: "accepted", "started", one "cell" per finished cell,
        # then the terminal "done" carrying every cell's metrics.
"""

from repro.cluster import (
    FleetCoordinator,
    FleetRunConfig,
    edge,
    fleet,
    group,
    run_fleet_serial,
    tenant,
)
from repro.host.io import KiB, MiB


def build_topology():
    """A small mixed fleet: a web tier, a replicated database, bulk ingest."""
    return fleet(
        "example-fleet",
        groups=[
            group("web", "SSD", 8, capacity_bytes=32 * MiB),
            group("db", "SSD", 4, capacity_bytes=32 * MiB),
            group("db-mirror", "SSD", 4, capacity_bytes=32 * MiB),
            group("bulk", "ESSD-2", 4, capacity_bytes=64 * MiB),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4 * KiB,
                   queue_depth=2, io_count=50),
            tenant("oltp", "db", pattern="randwrite", io_size=16 * KiB,
                   queue_depth=4, io_count=50),
            tenant("ingest", "bulk", trace="bursty", duration_us=50_000.0,
                   mean_load_gbps=0.3, io_size=64 * KiB),
        ],
        edges=[edge("db", "db-mirror", replication_factor=2)],
        epoch_us=1000.0,
        seed=42,
    )


def main() -> None:
    topology = build_topology()
    print(f"fleet {topology.name!r}: {topology.total_devices} devices, "
          f"{len(topology.tenants)} tenants, {len(topology.edges)} edges")

    serial = run_fleet_serial(topology)
    config = FleetRunConfig(shards=4)  # transport="auto" picks by host
    sharded = FleetCoordinator(config=config).run(topology)

    for label, result in (("serial", serial), ("4 shards", sharded)):
        runtime = result["runtime"]
        print(f"\n[{label}] {runtime['epochs']} epochs "
              f"({runtime['transport']} transport), "
              f"{runtime['wall_s']:.2f}s, {runtime['events_per_sec']:.0f} ev/s")
        for name, metrics in sorted(result["tenants"].items()):
            print(f"  {name:10s} {metrics['ios_completed']:5d} ios  "
                  f"mean {metrics['mean_us']:7.1f}us  "
                  f"p99.9 {metrics['p999_us']:7.1f}us  "
                  f"{metrics['throughput_gbps']:.3f} GB/s")
        mirror = result["groups"]["db-mirror"]
        print(f"  db-mirror absorbed {mirror['replica_writes']} replica "
              f"writes ({mirror['replica_bytes'] >> 10} KiB)")

    identical = all(
        serial[section] == sharded[section]
        for section in ("fleet", "tenants", "groups"))
    print(f"\nserial == sharded metrics: {identical}")

    # The same topology with the web tier as a mean-field aggregate: one
    # calibrated process instead of 8 simulators, metrics flagged
    # approximate, replica traffic to the discrete groups unchanged.
    macro = run_fleet_serial(topology.with_macro("web"))
    frontend = macro["tenants"]["frontend"]
    print(f"\n[macro web] frontend {frontend['ios_completed']} ios  "
          f"mean {frontend['mean_us']:.1f}us  "
          f"approximate={frontend['approximate']}")


if __name__ == "__main__":
    main()
