"""Shared fixtures for the test suite.

Device fixtures use deliberately tiny capacities so that every test stays in
the millisecond-to-second range; the full-scale behaviour is exercised by the
benchmark harness instead.
"""

import pytest

from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.host.io import MiB
from repro.sim import Simulator
from repro.ssd import SsdDevice, samsung_970pro_profile


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def small_ssd(sim):
    return SsdDevice(sim, samsung_970pro_profile(128 * MiB))


@pytest.fixture
def small_essd1(sim):
    return EssdDevice(sim, aws_io2_profile(256 * MiB))


@pytest.fixture
def small_essd2(sim):
    return EssdDevice(sim, alibaba_pl3_profile(256 * MiB))


def drive(sim, generator):
    """Run a single process to completion and return its value."""
    process = sim.process(generator)
    sim.run(until=process)
    return process.value
