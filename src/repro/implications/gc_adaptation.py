"""Implication 2: reconsider GC-mitigation techniques on ESSDs.

Host-side GC mitigation (log-structured writeout, hot/cold separation, idle
trimming, redundancy-based request steering) costs CPU, memory, and extra
I/O.  On a local SSD that price buys protection from a real throughput cliff;
on an ESSD the cliff is delayed or absent, so the same machinery may be pure
overhead.  The advisor weighs the measured cliff position (from the contract
checker or Figure-3-style experiment) against the workload's write pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WorkloadWriteProfile:
    """How hard a workload writes, expressed relative to device capacity."""

    #: Capacity multiples written per day (e.g. 0.3 = 30% of the volume daily).
    daily_write_capacity_factor: float
    #: Fraction of writes that overwrite existing data (creates invalid space).
    overwrite_fraction: float = 0.8
    #: Fractional throughput overhead the GC-mitigation layer costs
    #: (extra CPU + metadata I/O), e.g. 0.08 = 8%.
    mitigation_overhead: float = 0.08

    def __post_init__(self) -> None:
        if self.daily_write_capacity_factor < 0:
            raise ValueError("daily_write_capacity_factor must be >= 0")
        if not 0 <= self.overwrite_fraction <= 1:
            raise ValueError("overwrite_fraction must be in [0, 1]")
        if not 0 <= self.mitigation_overhead < 1:
            raise ValueError("mitigation_overhead must be in [0, 1)")


@dataclass(frozen=True)
class GcAdaptationAdvice:
    """The advisor's verdict for one device/workload pair."""

    keep_mitigation: bool
    rationale: str
    #: Days until the device's observed slowdown threshold would be reached
    #: (``None`` = never observed).
    days_to_cliff: Optional[float]
    #: Estimated relative throughput change from dropping the mitigation
    #: layer (positive = dropping it helps).
    estimated_gain_from_dropping: float


class GcAdaptationAdvisor:
    """Decides whether local-SSD GC mitigation still pays off on a device."""

    def __init__(self, cliff_capacity_factor: Optional[float],
                 post_cliff_throughput_fraction: float = 0.35):
        """
        Parameters
        ----------
        cliff_capacity_factor:
            Cumulative write volume (in multiples of device capacity) at which
            the device's throughput was observed to drop, or ``None`` if no
            drop was observed within the characterization window.
        post_cliff_throughput_fraction:
            Throughput retained after the drop, relative to the peak.
        """
        if cliff_capacity_factor is not None and cliff_capacity_factor <= 0:
            raise ValueError("cliff_capacity_factor must be positive when given")
        if not 0 < post_cliff_throughput_fraction <= 1:
            raise ValueError("post_cliff_throughput_fraction must be in (0, 1]")
        self.cliff_capacity_factor = cliff_capacity_factor
        self.post_cliff_throughput_fraction = post_cliff_throughput_fraction

    def days_until_cliff(self, workload: WorkloadWriteProfile) -> Optional[float]:
        """How long the workload takes to write up to the observed cliff."""
        if self.cliff_capacity_factor is None:
            return None
        if workload.daily_write_capacity_factor == 0:
            return float("inf")
        effective_daily = workload.daily_write_capacity_factor * workload.overwrite_fraction
        if effective_daily == 0:
            return float("inf")
        return self.cliff_capacity_factor / effective_daily

    def advise(self, workload: WorkloadWriteProfile,
               planning_horizon_days: float = 30.0) -> GcAdaptationAdvice:
        """Weigh mitigation overhead against the risk of hitting the cliff."""
        days = self.days_until_cliff(workload)
        overhead = workload.mitigation_overhead
        if days is None or days > planning_horizon_days * 4:
            # No cliff in sight: the mitigation layer is pure overhead.
            return GcAdaptationAdvice(
                keep_mitigation=False,
                rationale=("no GC-induced slowdown observed within the planning "
                           "horizon; the mitigation layer's overhead "
                           f"({overhead:.0%}) buys nothing"),
                days_to_cliff=days,
                estimated_gain_from_dropping=overhead,
            )
        if days <= planning_horizon_days:
            # The cliff is reachable: expected cost of dropping mitigation is
            # the post-cliff slowdown weighted by the exposed fraction of the
            # horizon.
            exposed_fraction = max(0.0, 1.0 - days / planning_horizon_days)
            expected_loss = exposed_fraction * (1.0 - self.post_cliff_throughput_fraction)
            keep = expected_loss > overhead
            return GcAdaptationAdvice(
                keep_mitigation=keep,
                rationale=(f"slowdown expected after ~{days:.1f} days; expected loss "
                           f"from dropping mitigation {expected_loss:.0%} vs its "
                           f"overhead {overhead:.0%}"),
                days_to_cliff=days,
                estimated_gain_from_dropping=overhead - expected_loss,
            )
        # Cliff beyond the horizon but not absurdly far: keep it only if cheap.
        keep = overhead < 0.02
        return GcAdaptationAdvice(
            keep_mitigation=keep,
            rationale=(f"slowdown only after ~{days:.1f} days (beyond the "
                       f"{planning_horizon_days:.0f}-day horizon); keep mitigation "
                       "only if its overhead is negligible"),
            days_to_cliff=days,
            estimated_gain_from_dropping=overhead,
        )
