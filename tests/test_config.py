"""Unit tests for the config layer (repro.config).

Covers the document converters (lossless round-trips, path-addressed
validation errors), the profiles sugar, the loader (YAML/JSON parsing,
directory scan), the ``$REPRO_SCENARIO_PATH`` registration hook, and the
``validate`` CLI verb.
"""

import json

import pytest

from repro.cluster import FleetTopology, edge, fault, fleet, group, tenant
from repro.config import (
    ConfigError,
    cell_from_document,
    cell_to_document,
    document_kind,
    load_document,
    parse_document_text,
    scan_scenario_dirs,
    scenario_for_document,
    scenario_from_document,
    scenario_to_document,
    topology_from_document,
    topology_to_document,
    yaml_available,
)
from repro.experiments.cli import main
from repro.experiments.scenarios import (
    get_scenario,
    load_user_scenarios,
    scenario,
)
from repro.experiments.sweep import CellSpec

MINI_CAPACITY = 1 << 24


def demo_topology() -> FleetTopology:
    return fleet(
        "demo",
        groups=[group("web", "SSD", 3, device_params={"op_ratio": 0.2}),
                group("backup", "ESSD-2", 2, mode="macro"),
                group("scratch", "LOOP", 1, capacity_bytes=MINI_CAPACITY,
                      preload=False)],
        tenants=[tenant("t0", "web", pattern="randwrite", io_size=4096,
                        queue_depth=4, io_count=40)],
        edges=[edge("web", "backup", 2)],
        faults=[fault("fail", "web", 5000.0, device=1,
                      repair_after_us=2000.0)],
        epoch_us=500.0,
        seed=23,
    )


# ---------------------------------------------------------------------------
# Topology documents
# ---------------------------------------------------------------------------

class TestTopologyDocuments:
    def test_round_trip_is_identity(self):
        topology = demo_topology()
        doc = topology_to_document(topology)
        assert topology_from_document(doc) == topology

    def test_document_is_json_serialisable(self):
        doc = topology_to_document(demo_topology())
        rebuilt = topology_from_document(json.loads(json.dumps(doc)))
        assert rebuilt.canonical() == demo_topology().canonical()

    def test_defaults_are_omitted(self):
        doc = topology_to_document(fleet(
            "plain", groups=[group("g", "LOOP", 1)]))
        assert "epoch_us" not in doc
        assert "seed" not in doc
        assert "tenants" not in doc
        assert "mode" not in doc["groups"][0]

    def test_method_delegation(self):
        topology = demo_topology()
        doc = topology.to_document()
        assert FleetTopology.from_document(doc) == topology

    def test_bad_count_is_path_addressed(self):
        doc = topology_to_document(demo_topology())
        doc["groups"][2]["count"] = 0
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert str(excinfo.value) == \
            "fleet.groups[2].count: expected positive int"

    def test_unknown_device_lists_known(self):
        doc = {"name": "f", "groups": [
            {"name": "g", "device": "FLOPPY", "count": 1}]}
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert excinfo.value.path == "fleet.groups[0].device"
        assert "SSD" in str(excinfo.value)

    def test_unknown_profile_field(self):
        doc = {"name": "f", "groups": [
            {"name": "g", "device": "SSD", "count": 1,
             "device_params": {"warp_factor": 9}}]}
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert excinfo.value.path == \
            "fleet.groups[0].device_params.warp_factor"

    def test_loop_device_params_unvalidated(self):
        doc = {"name": "f", "groups": [
            {"name": "g", "device": "LOOP", "count": 1,
             "device_params": {"latency_us": 3.0}}]}
        topology = topology_from_document(doc)
        assert dict(topology.groups[0].device_params) == {"latency_us": 3.0}

    def test_unknown_key_rejected(self):
        doc = {"name": "f", "grupos": [],
               "groups": [{"name": "g", "device": "LOOP", "count": 1}]}
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert excinfo.value.path == "fleet.grupos"

    def test_cross_field_errors_carry_path(self):
        doc = {"name": "f",
               "groups": [{"name": "g", "device": "LOOP", "count": 1}],
               "tenants": [{"name": "t", "group": "missing",
                            "workload": {"pattern": "randread"}}]}
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert excinfo.value.path == "fleet"
        assert "missing" in excinfo.value.message

    def test_bad_fault_kind(self):
        doc = {"name": "f",
               "groups": [{"name": "g", "device": "LOOP", "count": 1}],
               "faults": [{"kind": "explode", "group": "g", "at_us": 10.0}]}
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert excinfo.value.path == "fleet.faults[0]"

    def test_profiles_expand_into_device_params(self):
        doc = {"name": "f",
               "profiles": {"SSD-hot": {"device": "SSD",
                                        "params": {"op_ratio": 0.28}}},
               "groups": [{"name": "g", "device": "SSD-hot", "count": 2,
                           "device_params": {"host_overhead_us": 1.0}}]}
        topology = topology_from_document(doc)
        assert topology.groups[0].device == "SSD"
        assert dict(topology.groups[0].device_params) == {
            "op_ratio": 0.28, "host_overhead_us": 1.0}

    def test_profile_params_validated_against_target(self):
        doc = {"name": "f",
               "profiles": {"P": {"device": "SSD",
                                  "params": {"bogus": 1}}},
               "groups": [{"name": "g", "device": "P", "count": 1}]}
        with pytest.raises(ConfigError) as excinfo:
            topology_from_document(doc)
        assert excinfo.value.path == "fleet.profiles.P.params.bogus"


# ---------------------------------------------------------------------------
# Scenario / cell documents
# ---------------------------------------------------------------------------

class TestScenarioDocuments:
    def test_builtin_round_trip(self):
        spec = get_scenario("latency-grid")
        assert scenario_from_document(scenario_to_document(spec)) == spec

    def test_fleet_scenario_round_trip_preserves_cells(self):
        spec = get_scenario("fleet-smoke")
        rebuilt = scenario_from_document(scenario_to_document(spec))
        assert rebuilt == spec
        assert rebuilt.cells() == spec.cells()

    def test_cell_builder_scenarios_have_no_document_form(self):
        spec = get_scenario("figure4")
        with pytest.raises(ConfigError):
            scenario_to_document(spec)

    def test_unknown_base_key(self):
        doc = {"kind": "scenario", "name": "s", "devices": ["LOOP"],
               "base": {"io_siez": 4096}}
        with pytest.raises(ConfigError) as excinfo:
            scenario_from_document(doc)
        assert excinfo.value.path == "scenario.base.io_siez"

    def test_unknown_stream_field(self):
        doc = {"kind": "scenario", "name": "s", "devices": ["LOOP"],
               "streams": {"victim": {"queue_deth": 2}}}
        with pytest.raises(ConfigError) as excinfo:
            scenario_from_document(doc)
        assert excinfo.value.path == "scenario.streams.victim.queue_deth"

    def test_empty_grid_axis(self):
        doc = {"kind": "scenario", "name": "s", "devices": ["LOOP"],
               "grid": {"io_size": []}}
        with pytest.raises(ConfigError) as excinfo:
            scenario_from_document(doc)
        assert excinfo.value.path == "scenario.grid.io_size"

    def test_fleet_document_wraps_into_scenario(self):
        doc = topology_to_document(demo_topology())
        doc["description"] = "demo fleet"
        spec = scenario_for_document(doc)
        assert spec.name == "demo"
        assert spec.devices == ("fleet",)
        assert spec.description == "demo fleet"
        assert "fleet" in spec.tags
        [cell] = spec.cells()
        assert FleetTopology.from_json(cell.fleet) == demo_topology()

    def test_document_kind_inference(self):
        assert document_kind({"groups": []}) == "fleet"
        assert document_kind({"devices": ["LOOP"]}) == "scenario"
        assert document_kind({"device": "LOOP"}) == "cell"
        assert document_kind({"kind": "topology", "groups": []}) == "fleet"
        with pytest.raises(ConfigError):
            document_kind({"whatever": 1})

    def test_cell_round_trip_preserves_cache_key(self):
        cell = CellSpec(
            device="LOOP", pattern="randrw", io_size=8192, queue_depth=4,
            write_ratio=0.3, io_count=64, ramp_ios=4, think_time_us=5.0,
            pattern_params=(("theta", 1.1),), seed=91, preload=False,
            streams=(("noisy", (("pattern", "randwrite"),)),),
            device_params=(("latency_us", 2.0),),
            labels=(("device", "LOOP"), ("io_size", 8192)),
        )
        doc = cell_to_document(cell)
        rebuilt = cell_from_document(json.loads(json.dumps(doc)))
        assert rebuilt == cell
        assert rebuilt.cache_key() == cell.cache_key()

    def test_fleet_cell_round_trip(self):
        cell = CellSpec(device="fleet", fleet=demo_topology().canonical(),
                        labels=(("device", "fleet"),))
        rebuilt = CellSpec.from_document(cell.to_document())
        assert rebuilt == cell

    def test_cell_document_validates_types(self):
        with pytest.raises(ConfigError) as excinfo:
            cell_from_document({"device": "LOOP", "io_size": "big"})
        assert excinfo.value.path == "cell.io_size"

    def test_cell_document_requires_device(self):
        with pytest.raises(ConfigError) as excinfo:
            cell_from_document({"pattern": "randread"})
        assert "device" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Loader and $REPRO_SCENARIO_PATH
# ---------------------------------------------------------------------------

class TestLoader:
    def test_yaml_is_available_in_this_environment(self):
        # CI installs the config extra; the suite exercises the YAML path.
        assert yaml_available()

    def test_parse_yaml_text(self):
        doc = parse_document_text("name: f\ngroups:\n  - {name: g, "
                                  "device: LOOP, count: 1}\n")
        assert topology_from_document(doc).groups[0].device == "LOOP"

    def test_json_only_fallback_without_pyyaml(self, monkeypatch):
        # Without the config extra the loader is JSON-only: JSON documents
        # still parse, and real YAML fails with an error naming the extra.
        import repro.config.loader as loader

        monkeypatch.setattr(loader, "yaml_available", lambda: False)
        doc = loader.parse_document_text(
            '{"name": "f", "groups": '
            '[{"name": "g", "device": "LOOP", "count": 1}]}')
        assert topology_from_document(doc).groups[0].count == 1
        with pytest.raises(ConfigError, match=r"pip install repro\[config\]"):
            loader.parse_document_text("name: f\ngroups: []\n")

    def test_parse_json_text(self):
        assert parse_document_text('{"a": 1}') == {"a": 1}

    def test_parse_error_names_source(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_document_text("{unbalanced", source="bad.yaml")
        assert excinfo.value.path == "bad.yaml"

    def test_load_document_missing_file(self, tmp_path):
        with pytest.raises(ConfigError) as excinfo:
            load_document(tmp_path / "nope.yaml")
        assert "cannot read file" in excinfo.value.message

    def test_scan_collects_warnings_instead_of_failing(self, tmp_path):
        (tmp_path / "good.json").write_text(json.dumps(
            topology_to_document(demo_topology())))
        (tmp_path / "bad.yaml").write_text("name: x\ngroups:\n  - {name: g, "
                                           "device: LOOP, count: 0}\n")
        (tmp_path / "ignored.txt").write_text("not a document")
        specs, warnings = scan_scenario_dirs([tmp_path])
        assert [spec.name for spec in specs] == ["demo"]
        assert len(warnings) == 1
        assert "bad.yaml" in warnings[0][0]
        assert "count" in warnings[0][1]

    def test_scan_missing_directory_is_a_warning(self, tmp_path):
        specs, warnings = scan_scenario_dirs([tmp_path / "absent"])
        assert specs == []
        assert warnings == [(str(tmp_path / "absent"), "not a directory")]

    def test_scenario_path_registers_user_fleets(self, tmp_path,
                                                 monkeypatch):
        (tmp_path / "user.json").write_text(json.dumps(
            topology_to_document(demo_topology())))
        monkeypatch.setenv("REPRO_SCENARIO_PATH", str(tmp_path))
        warnings = load_user_scenarios(force=True)
        assert warnings == []
        spec = get_scenario("demo")
        assert spec.devices == ("fleet",)

    def test_scenario_path_rescans_when_env_changes(self, tmp_path,
                                                    monkeypatch):
        first = tmp_path / "a"
        second = tmp_path / "b"
        first.mkdir()
        second.mkdir()
        (first / "one.json").write_text(json.dumps(
            scenario_to_document(scenario(
                "user-one", "first", devices=("LOOP",),
                base={"io_count": 10}))))
        (second / "two.json").write_text(json.dumps(
            scenario_to_document(scenario(
                "user-two", "second", devices=("LOOP",),
                base={"io_count": 10}))))
        monkeypatch.setenv("REPRO_SCENARIO_PATH", str(first))
        load_user_scenarios()
        get_scenario("user-one")
        monkeypatch.setenv("REPRO_SCENARIO_PATH", str(second))
        load_user_scenarios()
        get_scenario("user-two")


# ---------------------------------------------------------------------------
# The validate CLI verb
# ---------------------------------------------------------------------------

class TestValidateVerb:
    def test_valid_document_reports_ok(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(topology_to_document(demo_topology())))
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "demo" in out

    def test_invalid_document_exits_2_with_path(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        doc = topology_to_document(demo_topology())
        doc["groups"][0]["count"] = -3
        path.write_text(json.dumps(doc))
        assert main(["validate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "groups[0].count: expected positive int" in err
        assert "Traceback" not in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "absent.yaml")]) == 2
        assert "cannot read file" in capsys.readouterr().err

    def test_cell_document_validates(self, tmp_path, capsys):
        path = tmp_path / "cell.json"
        path.write_text(json.dumps({"kind": "cell", "device": "LOOP",
                                    "io_count": 5}))
        assert main(["validate", str(path)]) == 0
        assert "cell" in capsys.readouterr().out
