"""Built-in device catalog: the paper's three devices plus the loopback.

Importing :mod:`repro.devices` imports this module, which registers every
built-in factory.  Capacities default to the profiles' own defaults; the
experiment layers pass explicit (scaled) capacities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.devices.loopback import LoopbackDevice
from repro.devices.registry import register_device
from repro.ebs import EssdDevice, alibaba_pl3_profile, aws_io2_profile
from repro.ssd import SsdDevice, samsung_970pro_profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@register_device("SSD")
def _build_ssd(sim: "Simulator", capacity_bytes: Optional[int] = None,
               name: Optional[str] = None, **kwargs) -> SsdDevice:
    profile = samsung_970pro_profile(capacity_bytes) if capacity_bytes \
        else samsung_970pro_profile()
    return SsdDevice(sim, profile, name=name or "SSD", **kwargs)


@register_device("ESSD-1")
def _build_essd1(sim: "Simulator", capacity_bytes: Optional[int] = None,
                 name: Optional[str] = None, **kwargs) -> EssdDevice:
    profile = aws_io2_profile(capacity_bytes) if capacity_bytes \
        else aws_io2_profile()
    return EssdDevice(sim, profile, name=name, **kwargs)


@register_device("ESSD-2")
def _build_essd2(sim: "Simulator", capacity_bytes: Optional[int] = None,
                 name: Optional[str] = None, **kwargs) -> EssdDevice:
    profile = alibaba_pl3_profile(capacity_bytes) if capacity_bytes \
        else alibaba_pl3_profile()
    return EssdDevice(sim, profile, name=name, **kwargs)


@register_device("LOOP")
def _build_loopback(sim: "Simulator", capacity_bytes: Optional[int] = None,
                    name: Optional[str] = None, **kwargs) -> LoopbackDevice:
    return LoopbackDevice(sim, capacity_bytes or (1 << 30),
                          name=name or "loopback", **kwargs)
