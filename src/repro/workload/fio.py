"""FIO-style job specification and closed-loop execution.

A :class:`FioJob` describes what FIO would be told on the command line:
pattern, block size, queue depth, and a stop condition (I/O count, bytes, or
runtime).  :func:`run_job` executes the job against any object satisfying
the :class:`repro.devices.Device` protocol with ``queue_depth`` closed-loop
workers (the behaviour of FIO's asynchronous engines) and returns a
:class:`JobResult` with latency and throughput measurements.
:func:`run_streams` runs several (device, job) streams concurrently in one
simulation -- the building block for noisy-neighbor and mixed-fleet cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.host.io import IOKind, IORequest, KiB
from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.throughput import ThroughputTimeline
from repro.workload.patterns import AccessPattern, make_pattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devices.protocol import Device
    from repro.sim import Simulator


@dataclass(frozen=True)
class FioJob:
    """Declarative description of one workload job.

    Exactly one of ``io_count``, ``total_bytes``, ``runtime_us`` must be set
    as the stop condition (the first reached stops the job if several are
    given).
    """

    name: str = "job"
    pattern: str = "randread"
    io_size: int = 4 * KiB
    queue_depth: int = 1
    #: Write fraction for the ``randrw`` pattern (0.0 - 1.0).
    write_ratio: Optional[float] = None
    #: Stop after this many I/Os.
    io_count: Optional[int] = None
    #: Stop after this many bytes have been transferred.
    total_bytes: Optional[int] = None
    #: Stop after this much simulated time (us).
    runtime_us: Optional[float] = None
    #: Restrict the job to the first ``region_bytes`` of the device
    #: (``None`` = whole device).
    region_bytes: Optional[int] = None
    region_offset: int = 0
    #: Warm-up I/Os whose latency is not recorded.
    ramp_ios: int = 0
    #: Think time inserted between consecutive I/Os of one worker (us).
    think_time_us: float = 0.0
    #: Pattern-specific knobs forwarded to :func:`make_pattern` (e.g.
    #: ``(("theta", 1.2),)`` for Zipfian or ``(("duty_cycle", 0.5),)`` for
    #: bursty patterns).  Stored as a sorted tuple of pairs so the job stays
    #: hashable and its JSON form is canonical.
    pattern_params: tuple = ()
    seed: int = 1

    def __post_init__(self) -> None:
        if self.io_size <= 0:
            raise ValueError("io_size must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.io_count is None and self.total_bytes is None and self.runtime_us is None:
            raise ValueError("job needs a stop condition "
                             "(io_count, total_bytes, or runtime_us)")
        for name, value in (("io_count", self.io_count),
                            ("total_bytes", self.total_bytes),
                            ("runtime_us", self.runtime_us)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when given")
        if self.ramp_ios < 0 or self.think_time_us < 0:
            raise ValueError("ramp_ios and think_time_us must be non-negative")
        if isinstance(self.pattern_params, dict):
            # Accept a plain dict for convenience; normalise to sorted pairs.
            object.__setattr__(self, "pattern_params",
                               tuple(sorted(self.pattern_params.items())))

    def scaled(self, **changes) -> "FioJob":
        """Copy of the job with some fields changed."""
        return replace(self, **changes)


@dataclass
class JobResult:
    """Measurements collected while running one job."""

    job: FioJob
    device_name: str
    ios_completed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    started_us: float = 0.0
    finished_us: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    read_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    write_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    timeline: ThroughputTimeline = field(default_factory=ThroughputTimeline)

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def duration_us(self) -> float:
        return self.finished_us - self.started_us

    @property
    def throughput_gbps(self) -> float:
        """Average throughput in GB/s over the whole job."""
        if self.duration_us <= 0:
            return 0.0
        return self.total_bytes / self.duration_us / 1000.0

    @property
    def write_throughput_gbps(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.bytes_written / self.duration_us / 1000.0

    @property
    def read_throughput_gbps(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.bytes_read / self.duration_us / 1000.0

    @property
    def iops(self) -> float:
        """Average I/O operations per second."""
        if self.duration_us <= 0:
            return 0.0
        return self.ios_completed / self.duration_us * 1e6

    def latency_summary(self) -> LatencySummary:
        return self.latency.summary()


def _build_pattern(job: FioJob, device: "Device") -> AccessPattern:
    region = job.region_bytes if job.region_bytes is not None \
        else device.capacity_bytes - job.region_offset
    return make_pattern(job.pattern, region, job.io_size,
                        write_ratio=job.write_ratio, seed=job.seed,
                        region_offset=job.region_offset,
                        **dict(job.pattern_params))


class _JobState:
    """Mutable per-job state shared by all of a job's workers."""

    __slots__ = ("issued", "stop", "ramp_remaining")

    def __init__(self, ramp_ios: int):
        self.issued = 0
        self.stop = False
        self.ramp_remaining = ramp_ios


def run_job(sim: "Simulator", device: "Device", job: FioJob,
            run: bool = True,
            on_complete: Optional[Callable[["IORequest", float], None]] = None,
            ) -> JobResult:
    """Execute ``job`` against ``device``.

    With ``run=True`` (default) the simulator is advanced until the job
    finishes and the populated :class:`JobResult` is returned.  With
    ``run=False`` the job's processes are only scheduled (so several jobs can
    run concurrently) and the caller advances the simulator itself.

    ``on_complete(request, now_us)`` is invoked for every completed I/O
    (ramp I/Os included) -- the hook the fleet layer uses to mirror writes
    across replication edges.
    """
    result = JobResult(job=job, device_name=device.name, started_us=sim.now)
    pattern = _build_pattern(job, device)
    state = _JobState(job.ramp_ios)
    deadline = sim.now + job.runtime_us if job.runtime_us is not None else None

    # Per-I/O constants, hoisted out of the worker loop.  FIO byte-budget
    # semantics: an I/O is only issued if it fits entirely within the
    # remaining budget, so ``total_bytes`` transfers floor(total / io_size)
    # I/Os -- folded with ``io_count`` into one issue ceiling.
    io_size = job.io_size
    tag = job.name
    issue_limit: Optional[int] = job.io_count
    if job.total_bytes is not None:
        byte_limit = job.total_bytes // io_size
        if issue_limit is None or byte_limit < issue_limit:
            issue_limit = byte_limit
    think_time = job.think_time_us
    # Only patterns that override the hook (bursty on/off phases) are asked
    # for think time; the base implementation is a constant 0.0, so skipping
    # the call is free of side effects (no RNG draws, no state).
    pattern_thinks = type(pattern).next_think_time_us \
        is not AccessPattern.next_think_time_us

    def should_stop() -> bool:
        return (state.stop
                or (issue_limit is not None and state.issued >= issue_limit)
                or (deadline is not None and sim.now >= deadline))

    def worker():
        """Flattened fast-path worker: hoisted per-I/O constants, bound
        methods, one latency computation, no unconditional think-time hook
        call.  Issues the same requests in the same order as
        :func:`_worker_legacy`."""
        pattern_next = pattern.next
        submit = device.submit
        timeout = sim.timeout
        record_latency = result.latency.record
        record_read = result.read_latency.record
        record_write = result.write_latency.record
        record_timeline = result.timeline.record
        read_kind = IOKind.READ
        # Inline of should_stop() (one closure call per I/O otherwise).
        while not (state.stop
                   or (issue_limit is not None and state.issued >= issue_limit)
                   or (deadline is not None and sim.now >= deadline)):
            if pattern_thinks:
                pause = pattern.next_think_time_us()
                if pause > 0:
                    yield timeout(pause)
                    if should_stop():
                        break
            state.issued += 1
            kind, offset = pattern_next()
            request = yield submit(IORequest(kind, offset, io_size, tag=tag))
            if on_complete is not None:
                on_complete(request, sim.now)
            if state.ramp_remaining > 0:
                state.ramp_remaining -= 1
            else:
                result.ios_completed += 1
                latency = request.complete_time - request.submit_time
                record_latency(latency)
                if kind is read_kind:
                    result.bytes_read += request.size
                    record_read(latency)
                else:
                    result.bytes_written += request.size
                    record_write(latency)
                record_timeline(sim.now, request.size)
            if think_time > 0:
                yield timeout(think_time)
        result.finished_us = sim.now

    def _worker_legacy():
        """Pre-refactor worker loop, frame for frame (the ``fast_path=False``
        baseline of the roundtrip microbenchmark): per-iteration stop-field
        checks, the unconditional think-time hook, double-dispatch
        ``pattern.next()``, and per-record ``request.latency`` property
        calls.  Behaviour is identical to :func:`worker`."""
        while not _should_stop_legacy():
            pause = pattern.next_think_time_us()
            if pause > 0:
                yield sim.timeout(pause)
                if _should_stop_legacy():
                    break
            state.issued += 1
            kind, offset = AccessPattern.next(pattern)
            request = yield device.submit(
                IORequest(kind, offset, job.io_size, tag=job.name))
            if on_complete is not None:
                on_complete(request, sim.now)
            if state.ramp_remaining > 0:
                state.ramp_remaining -= 1
            else:
                result.ios_completed += 1
                result.latency.record(request.latency)
                if kind is IOKind.READ:
                    result.bytes_read += request.size
                    result.read_latency.record(request.latency)
                else:
                    result.bytes_written += request.size
                    result.write_latency.record(request.latency)
                result.timeline.record(sim.now, request.size)
            if job.think_time_us > 0:
                yield sim.timeout(job.think_time_us)
        result.finished_us = sim.now

    def _should_stop_legacy() -> bool:
        if state.stop:
            return True
        if job.io_count is not None and state.issued >= job.io_count:
            return True
        if job.total_bytes is not None and \
                (state.issued + 1) * job.io_size > job.total_bytes:
            return True
        if deadline is not None and sim.now >= deadline:
            return True
        return False

    make_worker = worker if sim.fast_path else _worker_legacy
    workers = [sim.process(make_worker()) for _ in range(job.queue_depth)]

    if job.runtime_us is not None:
        def watchdog():
            yield sim.timeout(job.runtime_us)
            state.stop = True
        sim.process(watchdog())

    if run:
        completion = sim.all_of(workers)
        sim.run(until=completion)
        result.finished_us = max(result.finished_us, sim.now)
    return result


def run_streams(sim: "Simulator",
                streams: Sequence[tuple["Device", FioJob]]) -> list[JobResult]:
    """Run several (device, job) streams concurrently and wait for all.

    The streams share one simulation, so jobs naming the same device contend
    for it (noisy neighbor) and jobs on different devices form a mixed fleet
    measured under one clock.
    """
    results = [run_job(sim, device, job, run=False) for device, job in streams]
    sim.run()
    for result in results:
        if result.finished_us <= result.started_us:
            result.finished_us = sim.now
    return results


def run_jobs(sim: "Simulator", device: "Device", jobs: list[FioJob]) -> list[JobResult]:
    """Run several jobs concurrently against one device and wait for all."""
    return run_streams(sim, [(device, job) for job in jobs])
