"""Elastic block storage (EBS) and the elastic SSD (ESSD) device model.

The package models the storage-compute disaggregated architecture of cloud
block storage: a virtual block device in the user VM, a datacenter network,
and a storage cluster of nodes across which the volume's chunks are
distributed and replicated.  Provider-side QoS (throughput/IOPS budgets) and
flow limiting complete the picture.

Two calibrated profiles correspond to the paper's devices:
:data:`AWS_IO2_PROFILE` (ESSD-1) and :data:`ALIBABA_PL3_PROFILE` (ESSD-2).
"""

from repro.ebs.config import (
    ALIBABA_PL3_PROFILE,
    AWS_IO2_PROFILE,
    EssdProfile,
    NetworkProfile,
    NodeProfile,
    QosProfile,
    alibaba_pl3_profile,
    aws_io2_profile,
)
from repro.ebs.essd import EssdDevice

__all__ = [
    "EssdDevice",
    "EssdProfile",
    "NetworkProfile",
    "NodeProfile",
    "QosProfile",
    "aws_io2_profile",
    "alibaba_pl3_profile",
    "AWS_IO2_PROFILE",
    "ALIBABA_PL3_PROFILE",
]
