"""The flash translation layer: ties mapping, allocation, GC, and flash together.

The FTL exposes two internal generator entry points used by the device model
and its background workers:

* :meth:`Ftl.write_slots` -- place a list of logical blocks onto flash via a
  write frontier (host or GC stream), splitting into multi-plane program
  operations.
* :meth:`Ftl.read_slots` -- read a list of logical blocks, grouping them into
  the minimum set of flash page reads and issuing those in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.flash.chip import FlashArray
from repro.ssd.allocator import BlockAllocator, WriteStream
from repro.ssd.config import SsdConfig
from repro.ssd.gc import GarbageCollector
from repro.ssd.mapping import UNMAPPED, PageMapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@dataclass
class FtlStats:
    """Write-amplification accounting."""

    host_slots_written: int = 0
    gc_slots_written: int = 0
    host_flash_reads: int = 0
    prefetch_flash_reads: int = 0
    unmapped_reads: int = 0

    @property
    def write_amplification(self) -> float:
        """(host + GC) flash writes divided by host writes."""
        if self.host_slots_written == 0:
            return 1.0
        return (self.host_slots_written + self.gc_slots_written) / self.host_slots_written


class Ftl:
    """Page-mapping flash translation layer."""

    def __init__(self, sim: "Simulator", config: SsdConfig, flash: FlashArray):
        self.sim = sim
        self.config = config
        self.flash = flash
        self.slots_per_page = config.slots_per_page
        self.allocator = BlockAllocator(config.geometry, config.slots_per_page)
        total_slots = self.allocator.total_blocks * self.allocator.slots_per_block
        self.mapping = PageMapping(config.logical_blocks, total_slots,
                                   self.allocator.slots_per_block)
        self.stats = FtlStats()
        self._space_waiters: list = []
        # Effective GC watermarks: clamp the configured values to what the
        # actual spare-space budget per die can sustain, so that GC can
        # always reach its high watermark and stop (no idle churn).
        data_blocks_per_die = -(-config.logical_blocks
                                // (self.allocator.slots_per_block * self.allocator.total_dies))
        spare_per_die = max(1, self.allocator.blocks_per_die - data_blocks_per_die)
        self.gc_host_reserve = min(config.gc_host_reserve_blocks, max(1, spare_per_die // 4))
        self.gc_low_watermark = min(config.gc_low_watermark_blocks,
                                    max(self.gc_host_reserve + 1, spare_per_die // 2))
        self.gc_high_watermark = min(config.gc_high_watermark_blocks,
                                     max(self.gc_low_watermark + 1, spare_per_die - 2))
        self.gc = GarbageCollector(self)

    # -- space management ----------------------------------------------------------
    def notify_space_available(self) -> None:
        """Wake processes stalled on an out-of-space condition (called by GC)."""
        waiters, self._space_waiters = self._space_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(None)

    def _wait_for_space(self):
        event = self.sim.event()
        self._space_waiters.append(event)
        return event

    # -- write path ------------------------------------------------------------------
    def write_slots(self, lbns: Sequence[int], stream: WriteStream,
                    validate: Optional[Callable[[int], bool]] = None,
                    preferred_die: Optional[int] = None):
        """Generator: persist ``lbns`` to flash through the given write stream.

        ``preferred_die`` biases placement (GC relocates onto the die it is
        cleaning so that it never depends on another die's spare space).
        Returns the number of slots actually written (entries rejected by
        ``validate`` -- used by GC to skip blocks the host overwrote during
        relocation -- are not written).
        """
        allocator = self.allocator
        reserve = self.gc_host_reserve
        unit = allocator.program_unit_slots
        written = 0
        index = 0
        pending = list(lbns)
        while index < len(pending):
            die = None
            if preferred_die is not None and allocator.can_allocate(
                    preferred_die, stream, reserve):
                die = preferred_die
            if die is None:
                die = allocator.pick_die(stream, reserve)
            while die is None:
                # Out of space: make sure GC is running, then wait for it to
                # free a block.  Only the host stream can get here in
                # practice (GC ignores the reserve).
                self.gc.kick()
                yield self._wait_for_space()
                die = allocator.pick_die(stream, reserve)
            batch = pending[index:index + unit]
            slots = allocator.allocate_slots(die, len(batch), stream, reserve)
            batch = batch[:len(slots)]
            placed = 0
            for lbn, psn in zip(batch, slots):
                if validate is not None and not validate(lbn):
                    continue
                self.mapping.map(lbn, psn)
                placed += 1
            if allocator.free_blocks(die) < self.gc_low_watermark:
                self.gc.kick(die)
            # The program transfers the full multi-plane unit regardless of
            # how many slots were actually placed (padding).
            yield from self.flash.program_page(
                die, self.config.program_unit_bytes,
                planes=self.config.geometry.planes_per_die)
            written += placed
            index += len(slots)
        if stream is WriteStream.HOST:
            self.stats.host_slots_written += written
        else:
            self.stats.gc_slots_written += written
        return written

    # -- read path ------------------------------------------------------------------
    def read_slots(self, lbns: Iterable[int], for_prefetch: bool = False):
        """Generator: read the given logical blocks from flash.

        Reads are grouped by flash page and issued in parallel (subject to
        die/channel contention).  Unmapped blocks cost nothing (the device
        returns zeroes).  Returns the number of flash page reads issued.
        """
        groups: dict[tuple[int, int], int] = {}
        unmapped = 0
        for lbn in lbns:
            psn = self.mapping.lookup(lbn)
            if psn == UNMAPPED:
                unmapped += 1
                continue
            die = self.allocator.die_of_block(self.allocator.block_of_slot(psn))
            page = psn // self.slots_per_page
            groups[(die, page)] = groups.get((die, page), 0) + 1
        self.stats.unmapped_reads += unmapped
        if not groups:
            return 0
        page_size = self.config.geometry.page_size
        block_size = self.config.logical_block_size
        reads = []
        for (die, _page), count in groups.items():
            nbytes = min(page_size, count * block_size)
            reads.append(self.sim.process(self.flash.read_page(die, nbytes)))
        yield self.sim.all_of(reads)
        if for_prefetch:
            self.stats.prefetch_flash_reads += len(groups)
        else:
            self.stats.host_flash_reads += len(groups)
        return len(groups)

    # -- maintenance ------------------------------------------------------------------
    def trim(self, lbns: Iterable[int]) -> int:
        """Drop the mapping of the given logical blocks; returns count unmapped."""
        count = 0
        for lbn in lbns:
            if self.mapping.unmap(lbn) != UNMAPPED:
                count += 1
        return count

    def preload_range(self, start_lbn: int, count: int) -> None:
        """Instantly mark a logical range as written (test/experiment helper).

        This fills the mapping without consuming simulated time, so read
        experiments can run against a preconditioned device.  It must not be
        called while I/O is in flight.
        """
        if start_lbn < 0 or start_lbn + count > self.config.logical_blocks:
            raise ValueError("preload range outside the logical address space")
        allocator = self.allocator
        reserve = self.gc_host_reserve
        remaining = count
        lbn = start_lbn
        while remaining > 0:
            die = allocator.pick_die(WriteStream.HOST, reserve)
            if die is None:
                raise RuntimeError("preload ran out of flash space")
            slots = allocator.allocate_slots(
                die, min(remaining, allocator.program_unit_slots),
                WriteStream.HOST, reserve)
            for psn in slots:
                self.mapping.map(lbn, psn)
                lbn += 1
                remaining -= 1

    # -- introspection ------------------------------------------------------------------
    @property
    def free_block_fraction(self) -> float:
        """Fraction of all blocks currently free (a GC pressure indicator)."""
        return self.allocator.total_free_blocks() / self.allocator.total_blocks

    def occupancy(self) -> float:
        """Fraction of the logical space that is mapped."""
        return self.mapping.utilization
