"""Figure 5: throughput under mixed read/write workloads (throughput budget).

The paper sweeps the write ratio from 0% (pure random read) to 100% (pure
random write) and shows that each ESSD's total throughput sits flat at its
purchased budget while the local SSD's varies with the mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ebs import alibaba_pl3_profile, aws_io2_profile
from repro.experiments.common import DeviceKind, ExperimentScale, format_table
from repro.experiments.scenarios import register, scenario
from repro.experiments.sweep import CellSpec, SweepRunner
from repro.host.io import KiB
from repro.metrics.stats import coefficient_of_variation

DEFAULT_WRITE_RATIOS = (0, 25, 50, 75, 100)


@dataclass(frozen=True)
class MixedRatioPoint:
    """Total and write throughput at one write ratio."""

    device: DeviceKind
    write_ratio_percent: int
    total_gbps: float
    write_gbps: float
    read_gbps: float


@dataclass
class Figure5Result:
    """Throughput-versus-write-ratio series for each device."""

    points: list[MixedRatioPoint] = field(default_factory=list)
    budgets_gbps: dict[DeviceKind, float] = field(default_factory=dict)

    def series(self, device: DeviceKind) -> list[MixedRatioPoint]:
        return sorted((p for p in self.points if p.device is device),
                      key=lambda p: p.write_ratio_percent)

    def total_series(self, device: DeviceKind) -> list[float]:
        return [p.total_gbps for p in self.series(device)]

    def determinism_cv(self, device: DeviceKind) -> float:
        """Coefficient of variation of total throughput across write ratios."""
        return coefficient_of_variation(self.total_series(device))

    def within_budget(self, device: DeviceKind, tolerance: float = 0.08) -> bool:
        """Whether every measured point is at or below the purchased budget."""
        budget = self.budgets_gbps.get(device)
        if budget is None:
            return True
        return all(p.total_gbps <= budget * (1 + tolerance) for p in self.series(device))

    def render(self) -> str:
        headers = ["Device"] + [f"{ratio}% wr" for ratio in
                                sorted({p.write_ratio_percent for p in self.points})]
        rows = []
        for device in (DeviceKind.ESSD1, DeviceKind.ESSD2, DeviceKind.SSD):
            series = self.series(device)
            if not series:
                continue
            rows.append([device.value] + [f"{p.total_gbps:.2f}" for p in series])
        note = ", ".join(
            f"{device.value} CV={self.determinism_cv(device):.3f}"
            for device in (DeviceKind.ESSD1, DeviceKind.ESSD2, DeviceKind.SSD)
            if self.series(device))
        return ("Total throughput (GB/s) vs write ratio (Figure 5)\n"
                + format_table(headers, rows) + f"\nDeterminism: {note}")


def figure5_cells(scale: Optional[ExperimentScale] = None,
                  write_ratios: Sequence[int] = DEFAULT_WRITE_RATIOS,
                  io_size: int = 128 * KiB,
                  queue_depth: int = 32,
                  ios_per_point: int = 1200,
                  devices: Sequence[DeviceKind] = (DeviceKind.ESSD1, DeviceKind.ESSD2,
                                                   DeviceKind.SSD)) -> list[CellSpec]:
    """The Figure 5 ratio sweep: one cell per (device, write ratio)."""
    scale = scale or ExperimentScale.default()
    cells = []
    for device in devices:
        for ratio in write_ratios:
            if ratio == 0:
                pattern, write_ratio = "randread", None
            elif ratio == 100:
                pattern, write_ratio = "randwrite", None
            else:
                pattern, write_ratio = "randrw", ratio / 100.0
            cells.append(CellSpec(
                device=device.value,
                pattern=pattern,
                io_size=io_size,
                queue_depth=queue_depth,
                write_ratio=write_ratio,
                io_count=max(ios_per_point, queue_depth * 30),
                ramp_ios=queue_depth,
                seed=57,
                preload=True,
                ssd_capacity_bytes=scale.ssd_capacity_bytes,
                essd_capacity_bytes=scale.essd_capacity_bytes,
                labels=(("device", device.value), ("write_ratio_percent", ratio)),
            ))
    return cells


def run_figure5(scale: Optional[ExperimentScale] = None,
                write_ratios: Sequence[int] = DEFAULT_WRITE_RATIOS,
                io_size: int = 128 * KiB,
                queue_depth: int = 32,
                ios_per_point: int = 1200,
                devices: Sequence[DeviceKind] = (DeviceKind.ESSD1, DeviceKind.ESSD2,
                                                 DeviceKind.SSD),
                runner: Optional[SweepRunner] = None) -> Figure5Result:
    """Measure throughput across write ratios through the sweep runner."""
    scale = scale or ExperimentScale.default()
    cells = figure5_cells(scale, write_ratios, io_size, queue_depth,
                          ios_per_point, devices)
    sweep = (runner or SweepRunner()).run_cells("figure5", cells)
    result = Figure5Result()
    result.budgets_gbps = {
        DeviceKind.ESSD1: aws_io2_profile(scale.essd_capacity_bytes).max_throughput_gbps,
        DeviceKind.ESSD2: alibaba_pl3_profile(scale.essd_capacity_bytes).max_throughput_gbps,
    }
    for outcome in sweep.outcomes:
        labels = outcome.params
        result.points.append(MixedRatioPoint(
            device=DeviceKind(labels["device"]),
            write_ratio_percent=labels["write_ratio_percent"],
            total_gbps=outcome.metrics["throughput_gbps"],
            write_gbps=outcome.metrics["write_throughput_gbps"],
            read_gbps=outcome.metrics["read_throughput_gbps"],
        ))
    return result


register(scenario(
    "figure5",
    "Paper Figure 5: total throughput across read/write ratios",
    devices=("ESSD-1", "ESSD-2", "SSD"),
    tags=("paper", "throughput"),
    cell_builder=lambda: figure5_cells(
        ExperimentScale.small(), write_ratios=(0, 25, 50, 75, 100),
        queue_depth=16, ios_per_point=250),
))
